//! The paper's convergence protocol (§3.1.3-3.1.4).
//!
//! For a given estimator and dataset, start at `K = 250` and step by 250.
//! At each `K`, query every s-t pair `T` times; compute the average
//! variance `V_K` (Eq. 12) and average reliability `R_K` (Eq. 13); declare
//! convergence when the index of dispersion `rho_K = V_K / R_K` drops
//! below `0.001`. The paper's headline finding is that the convergent `K`
//! differs per estimator *and* per dataset, so no single fixed `K` is a
//! fair comparison point.

use crate::metrics::{average_reliability, average_variance, dispersion, KMetrics, PairRuns};
use crate::workload::Workload;
use rand::RngCore;
use relcomp_core::Estimator;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Convergence-sweep configuration (paper defaults, scaled-down repeats).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ConvergenceConfig {
    /// Initial sample count (paper: 250).
    pub k_start: usize,
    /// Step (paper: 250).
    pub k_step: usize,
    /// Hard cap on K (the paper observed convergence by 1750 everywhere;
    /// the cap guards against non-converging configurations).
    pub k_max: usize,
    /// Repetitions `T` per (pair, K) (paper: 100; our default: 30 — see
    /// DESIGN.md substitutions).
    pub repeats: usize,
    /// Dispersion threshold (paper: 0.001).
    pub rho_threshold: f64,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            k_start: 250,
            k_step: 250,
            k_max: 2000,
            repeats: 30,
            rho_threshold: 1e-3,
        }
    }
}

/// Measurements at one value of `K`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KPoint {
    /// Aggregate metrics.
    pub metrics: KMetrics,
    /// Per-pair mean reliabilities (needed for relative-error computation
    /// against a baseline).
    pub per_pair_means: Vec<f64>,
}

/// A full convergence sweep for one estimator over one workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConvergenceRun {
    /// Estimator display name.
    pub estimator: String,
    /// One point per K step, in increasing K order.
    pub history: Vec<KPoint>,
    /// Whether the dispersion threshold was met within `k_max`.
    pub converged: bool,
}

impl ConvergenceRun {
    /// The K at which the run stopped (converged or capped).
    pub fn final_k(&self) -> usize {
        self.history.last().map(|p| p.metrics.k).unwrap_or(0)
    }

    /// The last measured point.
    pub fn final_point(&self) -> &KPoint {
        self.history.last().expect("non-empty convergence history")
    }

    /// The point measured at exactly `k`, if the sweep touched it.
    pub fn point_at(&self, k: usize) -> Option<&KPoint> {
        self.history.iter().find(|p| p.metrics.k == k)
    }
}

/// Measure one (estimator, workload, K) cell: `repeats` runs per pair.
///
/// `estimator.refresh` is invoked before every run so that index-based
/// methods (BFS Sharing) stay independent across repetitions; refresh time
/// is *excluded* from the reported query time, matching the paper (which
/// reports index-update cost separately in Table 15).
pub fn measure_at_k(
    estimator: &mut dyn Estimator,
    workload: &Workload,
    k: usize,
    repeats: usize,
    rng: &mut dyn RngCore,
) -> KPoint {
    assert!(repeats >= 1, "need at least one repetition");
    assert!(!workload.is_empty(), "empty workload");
    let mut pair_runs: Vec<PairRuns> = Vec::with_capacity(workload.len());
    let mut total_secs = 0.0f64;
    let mut total_bytes = 0.0f64;
    let mut total_queries = 0usize;

    for &(s, t) in &workload.pairs {
        let mut runs = PairRuns {
            estimates: Vec::with_capacity(repeats),
        };
        for _ in 0..repeats {
            estimator.refresh(rng);
            let start = Instant::now();
            let est = estimator.estimate(s, t, k, rng);
            let elapsed = start.elapsed().as_secs_f64();
            debug_assert!(est.is_valid(), "invalid estimate from {}", estimator.name());
            runs.estimates.push(est.reliability);
            total_secs += elapsed;
            total_bytes += est.aux_bytes as f64;
            total_queries += 1;
        }
        pair_runs.push(runs);
    }

    let avg_variance = average_variance(&pair_runs);
    let avg_reliability = average_reliability(&pair_runs);
    KPoint {
        metrics: KMetrics {
            k,
            avg_variance,
            avg_reliability,
            rho: dispersion(avg_variance, avg_reliability),
            avg_query_secs: total_secs / total_queries as f64,
            avg_aux_bytes: total_bytes / total_queries as f64,
        },
        per_pair_means: pair_runs.iter().map(|p| p.mean()).collect(),
    }
}

/// Run the full K sweep until convergence or `k_max`.
pub fn run_convergence(
    estimator: &mut dyn Estimator,
    workload: &Workload,
    cfg: &ConvergenceConfig,
    rng: &mut dyn RngCore,
) -> ConvergenceRun {
    let mut history = Vec::new();
    let mut converged = false;
    let mut k = cfg.k_start;
    while k <= cfg.k_max {
        let point = measure_at_k(estimator, workload, k, cfg.repeats, rng);
        let rho = point.metrics.rho;
        history.push(point);
        if rho < cfg.rho_threshold {
            converged = true;
            break;
        }
        k += cfg.k_step;
    }
    ConvergenceRun {
        estimator: estimator.name().to_string(),
        history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_core::mc::McSampling;
    use relcomp_ugraph::{Dataset, NodeId};
    use std::sync::Arc;

    fn tiny_setup() -> (Arc<relcomp_ugraph::UncertainGraph>, Workload) {
        let g = Arc::new(Dataset::LastFm.generate_with_scale(0.08, 5));
        let w = Workload::generate(&g, 5, 2, 3);
        (g, w)
    }

    #[test]
    fn measure_at_k_reports_sane_metrics() {
        let (g, w) = tiny_setup();
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let point = measure_at_k(&mut mc, &w, 100, 5, &mut rng);
        assert_eq!(point.metrics.k, 100);
        assert_eq!(point.per_pair_means.len(), 5);
        assert!(point.metrics.avg_reliability >= 0.0);
        assert!(point.metrics.avg_query_secs > 0.0);
    }

    #[test]
    fn variance_decreases_with_k() {
        let (g, w) = tiny_setup();
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let lo = measure_at_k(&mut mc, &w, 50, 12, &mut rng);
        let hi = measure_at_k(&mut mc, &w, 1000, 12, &mut rng);
        assert!(
            hi.metrics.avg_variance < lo.metrics.avg_variance,
            "hi {} lo {}",
            hi.metrics.avg_variance,
            lo.metrics.avg_variance
        );
    }

    #[test]
    fn convergence_sweep_terminates() {
        let (g, w) = tiny_setup();
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cfg = ConvergenceConfig {
            k_start: 100,
            k_step: 100,
            k_max: 800,
            repeats: 8,
            rho_threshold: 1e-3,
        };
        let run = run_convergence(&mut mc, &w, &cfg, &mut rng);
        assert!(!run.history.is_empty());
        assert!(run.final_k() <= 800);
        assert_eq!(run.estimator, "MC");
        // Monotone K order in history.
        for w in run.history.windows(2) {
            assert!(w[0].metrics.k < w[1].metrics.k);
        }
    }

    #[test]
    fn s_equals_queries_converge_immediately() {
        // A workload with deterministic answers has zero variance: rho = 0.
        let (g, _) = tiny_setup();
        let w = Workload {
            pairs: vec![(NodeId(0), NodeId(0))],
            hops: 1,
            seed: 0,
        };
        let mut mc = McSampling::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let cfg = ConvergenceConfig {
            k_start: 50,
            k_step: 50,
            k_max: 200,
            repeats: 4,
            rho_threshold: 1e-3,
        };
        let run = run_convergence(&mut mc, &w, &cfg, &mut rng);
        assert!(run.converged);
        assert_eq!(run.final_k(), 50);
    }
}

impl ConvergenceRun {
    /// Serialize the full sweep as pretty JSON (for downstream plotting).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ConvergenceRun serializes")
    }

    /// Parse a run back from [`ConvergenceRun::to_json`] output.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let run = ConvergenceRun {
            estimator: "MC".into(),
            history: vec![KPoint {
                metrics: crate::metrics::KMetrics {
                    k: 250,
                    avg_variance: 1e-3,
                    avg_reliability: 0.4,
                    rho: 2.5e-3,
                    avg_query_secs: 0.01,
                    avg_aux_bytes: 1024.0,
                },
                per_pair_means: vec![0.4, 0.41],
            }],
            converged: false,
        };
        let text = run.to_json();
        let back = ConvergenceRun::from_json(&text).unwrap();
        assert_eq!(back.estimator, "MC");
        assert_eq!(back.history.len(), 1);
        assert_eq!(back.final_k(), 250);
        assert!(!back.converged);
    }
}
