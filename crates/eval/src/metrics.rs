//! Evaluation metrics (§3.1.4 of the paper, Eqs. 11-15).

use serde::{Deserialize, Serialize};

/// Per-(pair, K) repetition outcome: `T` reliability estimates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PairRuns {
    /// The `T` repeated estimates `R_j(s_i, t_i, K)`.
    pub estimates: Vec<f64>,
}

impl PairRuns {
    /// Mean estimate `R(s_i, t_i, K)`.
    pub fn mean(&self) -> f64 {
        if self.estimates.is_empty() {
            return 0.0;
        }
        self.estimates.iter().sum::<f64>() / self.estimates.len() as f64
    }

    /// Sample variance over the `T` repetitions (Eq. 11).
    pub fn variance(&self) -> f64 {
        let n = self.estimates.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        self.estimates
            .iter()
            .map(|r| (r - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64
    }
}

/// Aggregated metrics for one (estimator, dataset, K) cell.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KMetrics {
    /// Sample count `K` this cell was measured at.
    pub k: usize,
    /// Average variance `V_K` over pairs (Eq. 12).
    pub avg_variance: f64,
    /// Average reliability `R_K` over pairs (Eq. 13).
    pub avg_reliability: f64,
    /// Index of dispersion `rho_K = V_K / R_K` — the convergence criterion.
    pub rho: f64,
    /// Mean wall time per query (seconds).
    pub avg_query_secs: f64,
    /// Mean peak auxiliary bytes per query.
    pub avg_aux_bytes: f64,
}

/// Average variance over pairs (Eq. 12).
pub fn average_variance(pairs: &[PairRuns]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|p| p.variance()).sum::<f64>() / pairs.len() as f64
}

/// Average reliability over pairs (Eq. 13).
pub fn average_reliability(pairs: &[PairRuns]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|p| p.mean()).sum::<f64>() / pairs.len() as f64
}

/// Index of dispersion `rho_K` (§3.1.4). Zero reliability yields infinity
/// unless variance is also zero (a fully-determined estimate counts as
/// converged).
pub fn dispersion(avg_variance: f64, avg_reliability: f64) -> f64 {
    if avg_reliability <= 0.0 {
        if avg_variance <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        avg_variance / avg_reliability
    }
}

/// Relative error of per-pair means against a per-pair MC-at-convergence
/// baseline (Eq. 14), as a percentage. Pairs with zero baseline are
/// skipped (the paper's queries all have positive reliability).
pub fn relative_error_pct(per_pair_means: &[f64], baseline: &[f64]) -> f64 {
    assert_eq!(per_pair_means.len(), baseline.len(), "pair count mismatch");
    let mut total = 0.0;
    let mut counted = 0usize;
    for (&m, &b) in per_pair_means.iter().zip(baseline) {
        if b > 0.0 {
            total += (m - b).abs() / b;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        100.0 * total / counted as f64
    }
}

/// Pairwise deviation `D` of relative errors across estimators (Eq. 15).
/// `res` holds one relative error per estimator.
pub fn pairwise_deviation(res: &[f64]) -> f64 {
    let n = res.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..n {
            total += (res[i] - res[j]).abs();
        }
    }
    total / ((n * (n - 1)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_runs_mean_and_variance() {
        let p = PairRuns {
            estimates: vec![0.2, 0.4, 0.6],
        };
        assert!((p.mean() - 0.4).abs() < 1e-12);
        assert!((p.variance() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn degenerate_runs() {
        let p = PairRuns {
            estimates: vec![0.5],
        };
        assert_eq!(p.variance(), 0.0);
        let empty = PairRuns { estimates: vec![] };
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn averages_over_pairs() {
        let pairs = vec![
            PairRuns {
                estimates: vec![0.1, 0.1],
            },
            PairRuns {
                estimates: vec![0.3, 0.5],
            },
        ];
        assert!((average_reliability(&pairs) - 0.25).abs() < 1e-12);
        assert!(average_variance(&pairs) > 0.0);
    }

    #[test]
    fn dispersion_handles_zero_reliability() {
        assert_eq!(dispersion(0.0, 0.0), 0.0);
        assert!(dispersion(0.1, 0.0).is_infinite());
        assert!((dispersion(0.002, 0.4) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn relative_error_matches_hand_computation() {
        let means = [0.11, 0.18];
        let base = [0.10, 0.20];
        // (0.1 + 0.1) / 2 = 10%
        assert!((relative_error_pct(&means, &base) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn relative_error_skips_zero_baseline() {
        let means = [0.11, 0.5];
        let base = [0.10, 0.0];
        assert!((relative_error_pct(&means, &base) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pairwise_deviation_matches_eq15() {
        // Two estimators with REs 1.0 and 2.0:
        // sum |..| over ordered pairs = 2.0; / (2*1) = 1.0
        assert!((pairwise_deviation(&[1.0, 2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(pairwise_deviation(&[1.0]), 0.0);
    }
}
