//! The paper's practitioner guidance as an executable API: Table 17's
//! star-rating summary and Figure 18's estimator-selection decision tree.

use relcomp_core::EstimatorKind;
use serde::{Deserialize, Serialize};

/// Star rating (1-4) as in Table 17 of the paper.
pub type Stars = u8;

/// One row of Table 17's online-query-processing block.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QueryRating {
    /// Estimator variance (more stars = lower variance).
    pub variance: Stars,
    /// Accuracy at convergence.
    pub accuracy: Stars,
    /// Online running time.
    pub running_time: Stars,
    /// Online memory footprint (more stars = smaller).
    pub memory: Stars,
}

/// Table 17 (online block) exactly as the paper prints it.
pub fn paper_query_ratings(kind: EstimatorKind) -> Option<QueryRating> {
    let r = |variance, accuracy, running_time, memory| QueryRating {
        variance,
        accuracy,
        running_time,
        memory,
    };
    Some(match kind {
        EstimatorKind::Mc => r(1, 3, 2, 4),
        EstimatorKind::BfsSharing => r(1, 3, 1, 2),
        EstimatorKind::ProbTree => r(1, 3, 3, 3),
        EstimatorKind::LpPlus => r(1, 3, 3, 4),
        EstimatorKind::Rhh => r(4, 4, 4, 1),
        EstimatorKind::Rss => r(4, 4, 4, 1),
        _ => return None,
    })
}

/// Memory-budget constraint (root of the Fig. 18 tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryBudget {
    /// Tight memory: recursive estimators and the BFS-Sharing index are
    /// off the table.
    Smaller,
    /// Ample memory.
    Larger,
}

/// Variance requirement (second level of Fig. 18).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarianceNeed {
    /// The lowest achievable estimator variance.
    Lower,
    /// Slightly lower than plain MC is enough.
    SlightlyLower,
    /// Plain MC-level variance is acceptable.
    Higher,
}

/// Running-time requirement (third level of Fig. 18).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeedNeed {
    /// Query latency matters.
    Faster,
    /// Latency is not a concern.
    Slower,
}

/// Walk Figure 18's decision tree and return the recommended estimator(s)
/// for the given constraints. Empty only for contradictory demands
/// (e.g. tight memory + lowest variance — the recursive estimators are
/// the only variance reducers and they are memory-hungry).
pub fn recommend(
    memory: MemoryBudget,
    variance: VarianceNeed,
    speed: SpeedNeed,
) -> Vec<EstimatorKind> {
    match memory {
        MemoryBudget::Smaller => match variance {
            // Left subtree of Fig. 18: {MC, LP+, ProbTree}.
            VarianceNeed::Lower => Vec::new(),
            VarianceNeed::SlightlyLower => vec![EstimatorKind::ProbTree],
            VarianceNeed::Higher => match speed {
                SpeedNeed::Faster => vec![EstimatorKind::LpPlus],
                SpeedNeed::Slower => vec![EstimatorKind::Mc],
            },
        },
        MemoryBudget::Larger => match variance {
            // Right subtree: {BFS Sharing, RSS, RHH}.
            VarianceNeed::Lower => vec![EstimatorKind::Rss, EstimatorKind::Rhh],
            VarianceNeed::SlightlyLower => vec![EstimatorKind::ProbTree],
            VarianceNeed::Higher => match speed {
                SpeedNeed::Faster => vec![EstimatorKind::LpPlus, EstimatorKind::ProbTree],
                SpeedNeed::Slower => vec![EstimatorKind::BfsSharing, EstimatorKind::Mc],
            },
        },
    }
}

/// The paper's bottom-line recommendation (§4): ProbTree, for its balance
/// of accuracy, online running time, memory cost, and adaptability (its
/// estimating component can be swapped, §3.8).
pub fn overall_recommendation() -> EstimatorKind {
    EstimatorKind::ProbTree
}

/// Render Fig. 18 as indented text (for the `fig18_decision_tree` binary).
pub fn render_decision_tree() -> String {
    let mut out = String::new();
    out.push_str("Memory budget?\n");
    for (mem, label) in [
        (MemoryBudget::Smaller, "smaller"),
        (MemoryBudget::Larger, "larger"),
    ] {
        out.push_str(&format!("├─ {label}\n"));
        for (var, vlabel) in [
            (VarianceNeed::Lower, "lower variance"),
            (VarianceNeed::SlightlyLower, "slightly lower variance"),
            (VarianceNeed::Higher, "higher variance ok"),
        ] {
            for (spd, slabel) in [(SpeedNeed::Faster, "faster"), (SpeedNeed::Slower, "slower")] {
                let rec = recommend(mem, var, spd);
                if rec.is_empty() {
                    continue;
                }
                let names: Vec<&str> = rec.iter().map(|k| k.display_name()).collect();
                out.push_str(&format!(
                    "│   ├─ {vlabel}, {slabel}: {}\n",
                    names.join(", ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table17_rows_match_paper() {
        let rss = paper_query_ratings(EstimatorKind::Rss).unwrap();
        assert_eq!((rss.variance, rss.memory), (4, 1));
        let mc = paper_query_ratings(EstimatorKind::Mc).unwrap();
        assert_eq!((mc.variance, mc.memory), (1, 4));
        assert!(paper_query_ratings(EstimatorKind::LpOriginal).is_none());
    }

    #[test]
    fn lowest_variance_needs_memory() {
        assert!(recommend(
            MemoryBudget::Smaller,
            VarianceNeed::Lower,
            SpeedNeed::Faster
        )
        .is_empty());
        let r = recommend(MemoryBudget::Larger, VarianceNeed::Lower, SpeedNeed::Faster);
        assert_eq!(r, vec![EstimatorKind::Rss, EstimatorKind::Rhh]);
    }

    #[test]
    fn probtree_is_the_balanced_pick() {
        assert_eq!(overall_recommendation(), EstimatorKind::ProbTree);
        let r = recommend(
            MemoryBudget::Smaller,
            VarianceNeed::SlightlyLower,
            SpeedNeed::Faster,
        );
        assert_eq!(r, vec![EstimatorKind::ProbTree]);
    }

    #[test]
    fn tree_renders_all_paths() {
        let s = render_decision_tree();
        assert!(s.contains("RSS"));
        assert!(s.contains("LP+"));
        assert!(s.contains("BFS Sharing"));
    }
}
