//! # relcomp-eval — the paper's evaluation harness
//!
//! Everything Section 3 of *"An In-Depth Comparison of s-t Reliability
//! Algorithms over Uncertain Graphs"* (VLDB 2019) needs to be regenerated:
//! shared query workloads (§3.1.3), the dispersion-based convergence
//! protocol (§3.1.4), the metrics (Eqs. 11-15), experiment orchestration,
//! table rendering, and the practitioner guidance of §4 (Table 17 /
//! Fig. 18) as an executable API.
//!
//! One module per table/figure lives under [`experiments`]; the
//! `relcomp-bench` crate wraps each in a runnable binary.

#![warn(missing_docs)]

pub mod convergence;
pub mod experiments;
pub mod metrics;
pub mod recommend;
pub mod report;
pub mod runner;
pub mod workload;

pub use convergence::{run_convergence, ConvergenceConfig, ConvergenceRun};
pub use runner::{sweep, ExperimentEnv, RunProfile, SweepEntry};
pub use workload::Workload;
