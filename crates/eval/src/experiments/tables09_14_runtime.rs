//! Tables 9-14: online running time per dataset — total query time at
//! each estimator's convergence, at the fixed K = 1000, and the per-sample
//! cost.
//!
//! Findings to reproduce: RHH/RSS fastest at convergence (fewer samples +
//! simplified graphs); ProbTree/LP+ in the middle; BFS Sharing several
//! times slower than MC (no early termination, cascading updates); time
//! per sample roughly constant in K for everyone but BFS Sharing.

use crate::report::Table;
use crate::runner::{sweep, ExperimentEnv, RunProfile, SweepEntry};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;

/// Measured runtime rows for one dataset.
pub struct RuntimeTable {
    /// Dataset analog.
    pub dataset: Dataset,
    /// Rows: (estimator, K@conv, secs@conv, secs@1000, ms per sample).
    pub rows: Vec<(String, usize, f64, f64, f64)>,
}

/// Compute the runtime table from a pre-run sweep.
pub fn runtime_from_sweep(dataset: Dataset, entries: &[SweepEntry]) -> RuntimeTable {
    let rows = entries
        .iter()
        .map(|e| {
            let conv = e.run.final_point();
            let per_sample_ms = conv.metrics.avg_query_secs * 1e3 / conv.metrics.k as f64;
            (
                e.kind.display_name().to_string(),
                e.run.final_k(),
                conv.metrics.avg_query_secs,
                e.at_1000.metrics.avg_query_secs,
                per_sample_ms,
            )
        })
        .collect();
    RuntimeTable { dataset, rows }
}

/// Render in the paper's Tables 9-14 shape.
pub fn render(table: &RuntimeTable) -> String {
    let mut t = Table::new(
        format!("Tables 9-14 — running time, {}", table.dataset),
        &[
            "Estimator",
            "K@conv",
            "Time@conv (s)",
            "Time@1000 (s)",
            "Per sample (ms)",
        ],
    );
    for (name, k, conv_s, k1000_s, per_ms) in &table.rows {
        t.row(vec![
            name.clone(),
            k.to_string(),
            format!("{conv_s:.4}"),
            format!("{k1000_s:.4}"),
            format!("{per_ms:.4}"),
        ]);
    }
    t.render()
}

/// Regenerate Tables 9-14 for the given datasets.
pub fn run_datasets(profile: RunProfile, seed: u64, datasets: &[Dataset]) -> String {
    let mut out = String::new();
    for &dataset in datasets {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let cfg = profile.convergence();
        let entries: Vec<SweepEntry> = sweep(&env, &EstimatorKind::PAPER_SIX, &cfg);
        out.push_str(&render(&runtime_from_sweep(dataset, &entries)));
        out.push('\n');
    }
    out
}

/// Regenerate Tables 9-14 (all six datasets).
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_datasets(profile, seed, &Dataset::ALL)
}
