//! Extension experiment: top-k reliable-target search — BFS Sharing's
//! *original* query (Zhu et al., ICDM'15), which the paper adapts away
//! from. Here we run it natively: indexed top-k vs plain-MC top-k,
//! comparing ranking agreement and time. This is the regime where the
//! shared index pays off (one pass scores *every* target). A second
//! table exercises the served path: budget-driven adaptive sessions on
//! the parallel sharded sampler vs the same fixed budget, reporting how
//! many samples the boundary-convergence rule actually needs.

use crate::report::{fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::bfs_sharing::BfsSharingIndex;
use relcomp_core::topk::{top_k_targets_indexed, top_k_targets_mc};
use relcomp_core::{ParallelSampler, SampleBudget};
use relcomp_ugraph::Dataset;
use std::sync::Arc;
use std::time::Instant;

/// Regenerate the top-k comparison report.
pub fn run(profile: RunProfile, seed: u64) -> String {
    let k_targets = 10;
    let worlds = 1000;
    let mut table = Table::new(
        format!("Extension — top-{k_targets} reliable targets: indexed (BFS Sharing) vs MC"),
        &[
            "Dataset",
            "Overlap@10",
            "Indexed time / source",
            "MC time / source",
        ],
    );
    let eps = 0.1;
    let cap = 50_000;
    let mut adaptive_table = Table::new(
        format!(
            "Extension — adaptive top-{k_targets} sessions (parallel sharded MC, \
             eps = {eps} on the boundary score, cap = {cap})"
        ),
        &[
            "Dataset",
            "Fixed K",
            "Fixed time / source",
            "Adaptive K / source",
            "Adaptive time / source",
            "Converged",
            "Overlap@10 vs fixed",
        ],
    );
    for dataset in [Dataset::LastFm, Dataset::AsTopology] {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let mut rng = env.rng(0x70);
        let index = BfsSharingIndex::build(&env.graph, worlds, &mut rng);
        let sources: Vec<_> = env.workload.pairs.iter().map(|&(s, _)| s).take(5).collect();

        let mut overlap_total = 0usize;
        let mut indexed_secs = 0.0;
        let mut mc_secs = 0.0;
        for &s in &sources {
            let start = Instant::now();
            let indexed = top_k_targets_indexed(&env.graph, &index, s, k_targets, worlds);
            indexed_secs += start.elapsed().as_secs_f64();

            let start = Instant::now();
            let mc = top_k_targets_mc(&env.graph, s, k_targets, worlds, &mut rng);
            mc_secs += start.elapsed().as_secs_f64();

            let set: std::collections::HashSet<_> = indexed.iter().map(|ts| ts.node).collect();
            overlap_total += mc.iter().filter(|ts| set.contains(&ts.node)).count();
        }
        let denom = (sources.len() * k_targets) as f64;
        table.row(vec![
            dataset.to_string(),
            format!("{:.0}%", 100.0 * overlap_total as f64 / denom),
            fmt_secs(indexed_secs / sources.len() as f64),
            fmt_secs(mc_secs / sources.len() as f64),
        ]);

        // Adaptive sessions on the serving path (parallel sharded MC).
        let fixed_k = 10_000;
        let sampler = ParallelSampler::new(Arc::clone(&env.graph), 2);
        let budget = SampleBudget::adaptive(eps, cap);
        let mut fixed_secs = 0.0;
        let mut adaptive_secs = 0.0;
        let mut adaptive_samples = 0usize;
        let mut converged = 0usize;
        let mut agree = 0usize;
        let mut agree_denom = 0usize;
        for (i, &s) in sources.iter().enumerate() {
            let shard_seed = seed ^ (i as u64);
            let fixed = sampler.top_k_targets(s, k_targets, fixed_k, shard_seed);
            fixed_secs += fixed.elapsed.as_secs_f64();
            let adaptive = sampler.top_k_targets_with(s, k_targets, &budget, shard_seed);
            adaptive_secs += adaptive.elapsed.as_secs_f64();
            adaptive_samples += adaptive.samples;
            if adaptive.stop_reason == relcomp_core::StopReason::Converged {
                converged += 1;
            }
            let set: std::collections::HashSet<_> = fixed.scores.iter().map(|ts| ts.node).collect();
            agree += adaptive
                .scores
                .iter()
                .filter(|ts| set.contains(&ts.node))
                .count();
            // Rankings may legitimately hold fewer than k entries (fewer
            // reachable targets); denominate by what was actually ranked
            // so perfect agreement reads as 100%.
            agree_denom += adaptive.scores.len();
        }
        adaptive_table.row(vec![
            dataset.to_string(),
            fixed_k.to_string(),
            fmt_secs(fixed_secs / sources.len() as f64),
            format!("{:.0}", adaptive_samples as f64 / sources.len() as f64),
            fmt_secs(adaptive_secs / sources.len() as f64),
            format!("{converged}/{}", sources.len()),
            format!("{:.0}%", 100.0 * agree as f64 / agree_denom.max(1) as f64),
        ]);
    }
    format!("{}\n{}", table.render(), adaptive_table.render())
}
