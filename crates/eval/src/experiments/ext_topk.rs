//! Extension experiment: top-k reliable-target search — BFS Sharing's
//! *original* query (Zhu et al., ICDM'15), which the paper adapts away
//! from. Here we run it natively: indexed top-k vs plain-MC top-k,
//! comparing ranking agreement and time. This is the regime where the
//! shared index pays off (one pass scores *every* target).

use crate::report::{fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::bfs_sharing::BfsSharingIndex;
use relcomp_core::topk::{top_k_targets_indexed, top_k_targets_mc};
use relcomp_ugraph::Dataset;
use std::time::Instant;

/// Regenerate the top-k comparison report.
pub fn run(profile: RunProfile, seed: u64) -> String {
    let k_targets = 10;
    let worlds = 1000;
    let mut table = Table::new(
        format!("Extension — top-{k_targets} reliable targets: indexed (BFS Sharing) vs MC"),
        &[
            "Dataset",
            "Overlap@10",
            "Indexed time / source",
            "MC time / source",
        ],
    );
    for dataset in [Dataset::LastFm, Dataset::AsTopology] {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let mut rng = env.rng(0x70);
        let index = BfsSharingIndex::build(&env.graph, worlds, &mut rng);
        let sources: Vec<_> = env.workload.pairs.iter().map(|&(s, _)| s).take(5).collect();

        let mut overlap_total = 0usize;
        let mut indexed_secs = 0.0;
        let mut mc_secs = 0.0;
        for &s in &sources {
            let start = Instant::now();
            let indexed = top_k_targets_indexed(&env.graph, &index, s, k_targets, worlds);
            indexed_secs += start.elapsed().as_secs_f64();

            let start = Instant::now();
            let mc = top_k_targets_mc(&env.graph, s, k_targets, worlds, &mut rng);
            mc_secs += start.elapsed().as_secs_f64();

            let set: std::collections::HashSet<_> = indexed.iter().map(|ts| ts.node).collect();
            overlap_total += mc.iter().filter(|ts| set.contains(&ts.node)).count();
        }
        let denom = (sources.len() * k_targets) as f64;
        table.row(vec![
            dataset.to_string(),
            format!("{:.0}%", 100.0 * overlap_total as f64 / denom),
            fmt_secs(indexed_secs / sources.len() as f64),
            fmt_secs(mc_secs / sources.len() as f64),
        ]);
    }
    table.render()
}
