//! Figure 12: online memory usage per estimator, per dataset, at
//! convergence.
//!
//! Memory here is the analytic accounting of DESIGN.md: the shared input
//! graph plus each estimator's resident structures (index, workspaces) and
//! per-query peak auxiliaries. Ordering to reproduce:
//! MC < LP+ < ProbTree < BFS Sharing < RHH ≈ RSS.

use crate::convergence::measure_at_k;
use crate::report::{fmt_bytes, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;

/// One measured cell: total online bytes for (dataset, estimator).
#[derive(Clone, Debug)]
pub struct Cell {
    /// Dataset analog.
    pub dataset: Dataset,
    /// Estimator name.
    pub estimator: &'static str,
    /// graph + resident + per-query peak bytes.
    pub total_bytes: f64,
}

/// Regenerate Fig. 12 and return (report, cells).
pub fn run_with_data(profile: RunProfile, seed: u64, datasets: &[Dataset]) -> (String, Vec<Cell>) {
    let mut out = String::new();
    let mut cells = Vec::new();
    for &dataset in datasets {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let graph_bytes = env.graph.resident_bytes() as f64;
        let mut table = Table::new(
            format!("Figure 12 — online memory usage, {dataset}"),
            &[
                "Estimator",
                "Graph",
                "Resident (index/workspaces)",
                "Query peak",
                "Total",
            ],
        );
        // Memory is K-insensitive enough (paper §3.6) that a single
        // moderate-K measurement per estimator suffices.
        let k = 1000;
        for kind in EstimatorKind::PAPER_SIX {
            let mut est = env.estimator(kind);
            let mut rng = env.rng(kind as u64 * 31 + 12);
            let point = measure_at_k(est.as_mut(), &env.workload, k, 2, &mut rng);
            let resident = est.resident_bytes() as f64;
            let total = graph_bytes + resident.max(point.metrics.avg_aux_bytes);
            cells.push(Cell {
                dataset,
                estimator: kind.display_name(),
                total_bytes: total,
            });
            table.row(vec![
                kind.display_name().to_string(),
                fmt_bytes(graph_bytes),
                fmt_bytes(resident),
                fmt_bytes(point.metrics.avg_aux_bytes),
                fmt_bytes(total),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    (out, cells)
}

/// Regenerate Fig. 12 for all six datasets.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_with_data(profile, seed, &Dataset::ALL).0
}
