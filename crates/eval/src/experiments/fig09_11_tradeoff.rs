//! Figures 9/10/11: the trade-off between relative error, running time,
//! and memory usage as K grows (lastFM, AS Topology, BioMine analogs).
//!
//! Findings to reproduce: REs of all six methods converge below ~2%;
//! running time grows ~linearly in K; memory is largely K-insensitive
//! except BFS Sharing (larger index prefix) and the recursive methods
//! (deeper recursion).

use crate::metrics::relative_error_pct;
use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::runner::{sweep, ExperimentEnv, RunProfile};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;

/// Regenerate one of Figs. 9-11 for `dataset`.
pub fn run_dataset(profile: RunProfile, seed: u64, dataset: Dataset) -> String {
    let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
    let cfg = profile.convergence();
    let entries = sweep(&env, &EstimatorKind::PAPER_SIX, &cfg);

    // Baseline: MC per-pair means at MC's convergence (Eq. 14).
    let baseline = entries
        .iter()
        .find(|e| e.kind == EstimatorKind::Mc)
        .expect("MC in suite")
        .run
        .final_point()
        .per_pair_means
        .clone();

    let mut out = String::new();
    for (metric_idx, metric_name) in [
        "Relative Error (%)",
        "Running Time / query",
        "Peak aux memory / query",
    ]
    .iter()
    .enumerate()
    {
        let mut table = Table::new(
            format!("{metric_name} vs K — {dataset}"),
            &["Estimator", "Series (K: value)"],
        );
        for e in &entries {
            let series: Vec<String> = e
                .run
                .history
                .iter()
                .map(|p| {
                    let v = match metric_idx {
                        0 => format!("{:.2}", relative_error_pct(&p.per_pair_means, &baseline)),
                        1 => fmt_secs(p.metrics.avg_query_secs),
                        _ => fmt_bytes(p.metrics.avg_aux_bytes),
                    };
                    format!("{}:{v}", p.metrics.k)
                })
                .collect();
            table.row(vec![e.kind.display_name().to_string(), series.join("  ")]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Regenerate Figs. 9, 10 and 11 (lastFM, AS Topology, BioMine).
pub fn run(profile: RunProfile, seed: u64) -> String {
    let mut out = String::new();
    for (fig, dataset) in [
        (9, Dataset::LastFm),
        (10, Dataset::AsTopology),
        (11, Dataset::BioMine),
    ] {
        out.push_str(&format!("---- Figure {fig} ----\n"));
        out.push_str(&run_dataset(profile, seed, dataset));
    }
    out
}
