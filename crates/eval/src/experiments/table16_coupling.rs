//! Table 16: coupling ProbTree with efficient estimators (§3.8).
//!
//! ProbTree's query-graph extraction composes with any estimator; the
//! paper shows LP+/RHH/RSS each get 10-30% faster when run on the
//! extracted graph instead of the original.

use crate::convergence::run_convergence;
use crate::report::{fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;

/// Regenerate Table 16 and return (report, (dataset, estimator, secs)).
pub fn run_with_data(
    profile: RunProfile,
    seed: u64,
) -> (String, Vec<(Dataset, &'static str, f64)>) {
    let pairs = [
        (EstimatorKind::LpPlus, EstimatorKind::ProbTreeLpPlus),
        (EstimatorKind::Rhh, EstimatorKind::ProbTreeRhh),
        (EstimatorKind::Rss, EstimatorKind::ProbTreeRss),
    ];
    let datasets = [Dataset::LastFm, Dataset::AsTopology, Dataset::BioMine];
    let mut table = Table::new(
        "Table 16 — ProbTree coupled with efficient estimators (time at convergence / query)",
        &["Method", "lastFM", "AS Topology", "BioMine"],
    );
    let mut data = Vec::new();
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (plain, coupled) in pairs {
        for kind in [plain, coupled] {
            rows.push((kind.display_name().to_string(), Vec::new()));
        }
    }
    for &dataset in &datasets {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let cfg = profile.convergence();
        let mut row_idx = 0;
        for (plain, coupled) in pairs {
            for kind in [plain, coupled] {
                let mut est = env.estimator(kind);
                let mut rng = env.rng(16 + kind as u64);
                let run = run_convergence(est.as_mut(), &env.workload, &cfg, &mut rng);
                let secs = run.final_point().metrics.avg_query_secs;
                data.push((dataset, kind.display_name(), secs));
                rows[row_idx].1.push(secs);
                row_idx += 1;
            }
        }
    }
    for (name, secs) in rows {
        table.row(
            std::iter::once(name)
                .chain(secs.iter().map(|s| fmt_secs(*s)))
                .collect(),
        );
    }
    (table.render(), data)
}

/// Regenerate Table 16.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_with_data(profile, seed).0
}
