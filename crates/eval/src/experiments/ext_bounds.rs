//! Extension experiment: quality of the polynomial-time reliability
//! bounds (the "Theory" branch of Fig. 2, not evaluated in the paper).
//!
//! For each dataset, compare the `[lower, upper]` enclosure of
//! `relcomp_core::bounds` against an MC estimate at convergence over the
//! shared workload: enclosure validity rate, mean width, and the speedup
//! of bounds versus sampling.

use crate::convergence::run_convergence;
use crate::report::{fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::bounds::reliability_bounds;
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;
use std::time::Instant;

/// Regenerate the bounds-quality report.
pub fn run(profile: RunProfile, seed: u64) -> String {
    let mut table = Table::new(
        "Extension — polynomial-time bounds vs MC at convergence",
        &[
            "Dataset",
            "Enclosed (%)",
            "Mean width",
            "Mean MC R",
            "Bounds time / query",
            "MC time / query",
        ],
    );
    for dataset in [Dataset::LastFm, Dataset::NetHept, Dataset::AsTopology] {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let cfg = profile.convergence();
        let mut mc = env.estimator(EstimatorKind::Mc);
        let mut rng = env.rng(0xb0);
        let run = run_convergence(mc.as_mut(), &env.workload, &cfg, &mut rng);
        let mc_means = &run.final_point().per_pair_means;

        let start = Instant::now();
        let bounds: Vec<_> = env
            .workload
            .pairs
            .iter()
            .map(|&(s, t)| reliability_bounds(&env.graph, s, t, 8))
            .collect();
        let bounds_secs = start.elapsed().as_secs_f64() / env.workload.len() as f64;

        // Allow MC sampling noise at the boundary: 3 sigma of the
        // final-K binomial SD, with the SD floored at the bound itself so
        // a zero-hit MC mean on a near-zero-reliability pair (observed
        // r = 0 => observed sd = 0) is not misread as a violation.
        let k = run.final_k() as f64;
        let enclosed = bounds
            .iter()
            .zip(mc_means)
            .filter(|(b, &r)| {
                let sd = (r.max(b.lower) * (1.0 - r.max(b.lower)).max(0.0) / k).sqrt();
                r >= b.lower - 3.0 * sd - 1e-9 && r <= b.upper + 3.0 * sd + 1e-9
            })
            .count();
        let mean_width = bounds.iter().map(|b| b.width()).sum::<f64>() / bounds.len() as f64;
        let mean_r = mc_means.iter().sum::<f64>() / mc_means.len() as f64;

        table.row(vec![
            dataset.to_string(),
            format!("{:.0}", 100.0 * enclosed as f64 / bounds.len() as f64),
            format!("{mean_width:.4}"),
            format!("{mean_r:.4}"),
            fmt_secs(bounds_secs),
            fmt_secs(run.final_point().metrics.avg_query_secs),
        ]);
    }
    table.render()
}
