//! Figure 17: sensitivity of RSS to the stratum count `r` (BioMine
//! analog, K in {500, 1000}).
//!
//! Findings to reproduce: variance decreases with larger r, most visibly
//! when K is too small for convergence (K = 500); beyond r ≈ 50 the gain
//! flattens; running time is insensitive to r.

use crate::convergence::measure_at_k;
use crate::report::{fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::recursive::RecursiveStratified;
use relcomp_ugraph::Dataset;
use std::sync::Arc;

/// Regenerate Fig. 17 for the given stratum counts.
pub fn run_strata(profile: RunProfile, seed: u64, strata: &[usize]) -> String {
    let env = ExperimentEnv::prepare(Dataset::BioMine, profile, 2, seed);
    let repeats = profile.repeats().max(8);

    let mut var_table = Table::new(
        "Figure 17(a) — RSS variance (x1e-4) vs #stratum r",
        &["r", "K=500", "K=1000"],
    );
    let mut time_table = Table::new(
        "Figure 17(b) — RSS time / query vs #stratum r",
        &["r", "K=500", "K=1000"],
    );

    for &r in strata {
        let mut var_row = vec![r.to_string()];
        let mut time_row = vec![r.to_string()];
        for k in [500, 1000] {
            let mut rss = RecursiveStratified::with_params(Arc::clone(&env.graph), 5, r);
            let mut rng = env.rng(170 + r as u64 + k as u64);
            let point = measure_at_k(&mut rss, &env.workload, k, repeats, &mut rng);
            var_row.push(format!("{:.2}", point.metrics.avg_variance * 1e4));
            time_row.push(fmt_secs(point.metrics.avg_query_secs));
        }
        var_table.row(var_row);
        time_table.row(time_row);
    }
    format!("{}\n{}", var_table.render(), time_table.render())
}

/// Regenerate Fig. 17 with the paper's r values {5, 10, 20, 50, 80, 100}.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_strata(profile, seed, &[5, 10, 20, 50, 80, 100])
}
