//! Table 17 and Figure 18: the paper's summary star ratings and the
//! estimator-selection decision tree.

use crate::recommend::{paper_query_ratings, render_decision_tree};
use crate::report::Table;
use crate::runner::RunProfile;
use relcomp_core::EstimatorKind;

/// Render Table 17's online block plus Fig. 18's decision tree.
pub fn run(_profile: RunProfile, _seed: u64) -> String {
    let mut table = Table::new(
        "Table 17 — summary and recommendation (stars: 4 = best)",
        &["Method", "Variance", "Accuracy", "Running Time", "Memory"],
    );
    for kind in EstimatorKind::PAPER_SIX {
        let r = paper_query_ratings(kind).expect("paper six rated");
        let stars = |n: u8| "*".repeat(n as usize);
        table.row(vec![
            kind.display_name().to_string(),
            stars(r.variance),
            stars(r.accuracy),
            stars(r.running_time),
            stars(r.memory),
        ]);
    }
    format!(
        "{}\n== Figure 18 — decision tree for estimator selection ==\n{}\nOverall recommendation: ProbTree (balanced accuracy, time, memory; swappable estimating component).\n",
        table.render(),
        render_decision_tree()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ratings_and_tree() {
        let out = run(RunProfile::Quick, 0);
        assert!(out.contains("Table 17"));
        assert!(out.contains("RSS"));
        assert!(out.contains("decision tree"));
        assert!(out.contains("ProbTree"));
    }
}
