//! Figure 13(a-c): offline index cost for the two index-based methods —
//! build time, index size, and load time.
//!
//! Load time is measured as a disk round-trip of the index payload
//! (write-then-read of `size_bytes`), matching what "loading the index
//! into main memory" costs. Findings to reproduce: BFS Sharing builds
//! faster (just `L` coin flips per edge) but its index is larger than
//! ProbTree's and therefore slower to load; ProbTree's index is
//! K-independent.

use crate::report::{fmt_bytes, fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::bfs_sharing::BfsSharing;
use relcomp_core::probtree::ProbTree;
use relcomp_ugraph::Dataset;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Instant;

/// One dataset's index-cost row.
#[derive(Clone, Debug)]
pub struct IndexCosts {
    /// Dataset analog.
    pub dataset: Dataset,
    /// (build secs, size bytes, load secs) for BFS Sharing.
    pub bfs_sharing: (f64, usize, f64),
    /// (build secs, size bytes, load secs) for ProbTree.
    pub probtree: (f64, usize, f64),
}

fn disk_round_trip(bytes: usize, tag: &str) -> f64 {
    let dir = std::env::temp_dir().join("relcomp_fig13");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}.idx"));
    let payload = vec![0xA5u8; bytes];
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(&payload))
        .expect("write index payload");
    let start = Instant::now();
    let mut buf = Vec::with_capacity(bytes);
    std::fs::File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .expect("read index payload");
    let elapsed = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    assert_eq!(buf.len(), bytes);
    elapsed
}

/// Regenerate Fig. 13 and return (report, per-dataset costs).
pub fn run_with_data(
    profile: RunProfile,
    seed: u64,
    datasets: &[Dataset],
) -> (String, Vec<IndexCosts>) {
    let mut table = Table::new(
        "Figure 13 — offline index cost (BFS Sharing vs ProbTree)",
        &[
            "Dataset",
            "BFSS build",
            "BFSS size",
            "BFSS load",
            "PT build",
            "PT size",
            "PT load",
        ],
    );
    let mut costs = Vec::new();
    for &dataset in datasets {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let mut rng = env.rng(13);

        let bs = BfsSharing::new(
            Arc::clone(&env.graph),
            env.params.bfs_sharing_worlds,
            &mut rng,
        );
        let bs_build = bs.index_build_time().as_secs_f64();
        let bs_size = bs.index().size_bytes();
        let bs_load = disk_round_trip(bs_size, &format!("bfss_{}", dataset.short_name()));

        let pt = ProbTree::new(Arc::clone(&env.graph));
        let pt_build = pt.index_build_time().as_secs_f64();
        let pt_size = pt.index().size_bytes();
        let pt_load = disk_round_trip(pt_size, &format!("pt_{}", dataset.short_name()));

        table.row(vec![
            dataset.to_string(),
            fmt_secs(bs_build),
            fmt_bytes(bs_size as f64),
            fmt_secs(bs_load),
            fmt_secs(pt_build),
            fmt_bytes(pt_size as f64),
            fmt_secs(pt_load),
        ]);
        costs.push(IndexCosts {
            dataset,
            bfs_sharing: (bs_build, bs_size, bs_load),
            probtree: (pt_build, pt_size, pt_load),
        });
    }
    (table.render(), costs)
}

/// Regenerate Fig. 13 for all six datasets.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_with_data(profile, seed, &Dataset::ALL).0
}
