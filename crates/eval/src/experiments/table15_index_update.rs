//! Table 15: BFS Sharing's hidden per-query cost — the index must be
//! re-sampled between successive queries to keep them independent. The
//! paper measures the additional time per query over 1000 successive
//! queries; we measure the same refresh over a configurable count.

use crate::report::{fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;
use std::time::Instant;

/// Regenerate Table 15 and return (report, per-dataset refresh secs).
pub fn run_with_data(profile: RunProfile, seed: u64) -> (String, Vec<(Dataset, f64)>) {
    let queries = match profile {
        RunProfile::Quick => 20,
        RunProfile::Paper => 1000,
    };
    let mut table = Table::new(
        format!(
            "Table 15 — BFS Sharing index update cost per query ({queries} successive queries)"
        ),
        &["Dataset", "Refresh time / query"],
    );
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let mut est = env.estimator(EstimatorKind::BfsSharing);
        let mut rng = env.rng(15);
        let (s, t) = env.workload.pairs[0];
        let start = Instant::now();
        for _ in 0..queries {
            est.refresh(&mut rng);
            let _ = est.estimate(s, t, 1000, &mut rng);
        }
        let with_refresh = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in 0..queries {
            let _ = est.estimate(s, t, 1000, &mut rng);
        }
        let without_refresh = start.elapsed().as_secs_f64();
        let per_query = (with_refresh - without_refresh).max(0.0) / queries as f64;
        rows.push((dataset, per_query));
        table.row(vec![dataset.to_string(), fmt_secs(per_query)]);
    }
    (table.render(), rows)
}

/// Regenerate Table 15.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_with_data(profile, seed).0
}
