//! Table 15: index maintenance cost under change.
//!
//! The paper tabulates BFS Sharing's hidden per-query cost — the index
//! must be re-sampled between successive queries to keep them
//! independent (1000 successive queries; we use a configurable count).
//!
//! We extend the table with the cost the paper only discusses in §3.8:
//! keeping an index alive under **edge-probability updates**. For
//! ProbTree we measure the incremental maintenance path (re-aggregate
//! only the decomposition bags a batch touched, propagating upward)
//! against the full index rebuild an update would otherwise force, and
//! report the speedup.

use crate::report::{fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use relcomp_core::probtree::ProbTreeIndex;
use relcomp_core::EstimatorKind;
use relcomp_ugraph::{Dataset, EdgeId, EdgeUpdate, UncertainGraph};
use std::sync::Arc;
use std::time::Instant;

/// One dataset's maintenance costs.
#[derive(Clone, Copy, Debug)]
pub struct Table15Row {
    /// Which dataset analog.
    pub dataset: Dataset,
    /// BFS Sharing per-query refresh cost (the paper's Table 15).
    pub bfs_refresh_per_query: f64,
    /// ProbTree incremental maintenance per update batch.
    pub probtree_incremental: f64,
    /// ProbTree full index rebuild (what a batch costs without the
    /// incremental path).
    pub probtree_rebuild: f64,
}

impl Table15Row {
    /// Incremental-over-rebuild speedup (∞-safe: 0 when unmeasured).
    pub fn speedup(&self) -> f64 {
        if self.probtree_incremental > 0.0 {
            self.probtree_rebuild / self.probtree_incremental
        } else {
            0.0
        }
    }
}

/// Draw `batch` random edge-probability updates for `graph`.
fn random_batch(graph: &UncertainGraph, batch: usize, rng: &mut ChaCha8Rng) -> Vec<EdgeUpdate> {
    (0..batch)
        .map(|_| {
            let e = EdgeId(rng.gen_range(0..graph.num_edges() as u32));
            let p = rng.gen_range(0.05..0.95);
            EdgeUpdate::new(e, p).expect("probability in range")
        })
        .collect()
}

/// Measure ProbTree maintenance on `graph`: mean seconds per update
/// batch for the incremental path vs a full rebuild, over `rounds`
/// batches of `batch` random edge updates. Public so the quick-profile
/// regression test and the `update_churn` bench share one protocol.
pub fn probtree_update_costs(
    graph: &Arc<UncertainGraph>,
    batch: usize,
    rounds: usize,
    seed: u64,
) -> (f64, f64) {
    assert!(graph.num_edges() > 0, "need edges to update");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut index = ProbTreeIndex::build(Arc::clone(graph));
    let mut current = Arc::clone(graph);
    let mut incremental = 0.0f64;
    let mut rebuild = 0.0f64;
    for _ in 0..rounds {
        let updates = random_batch(&current, batch, &mut rng);
        let snap = current.with_updated_probs(&updates);

        let start = Instant::now();
        index.apply_updates(&snap, &updates);
        incremental += start.elapsed().as_secs_f64();

        let start = Instant::now();
        let fresh = ProbTreeIndex::build(Arc::clone(&snap));
        rebuild += start.elapsed().as_secs_f64();
        drop(fresh);

        current = snap;
    }
    (incremental / rounds as f64, rebuild / rounds as f64)
}

/// Regenerate Table 15 and return (report, per-dataset rows).
pub fn run_with_data(profile: RunProfile, seed: u64) -> (String, Vec<Table15Row>) {
    let (queries, batch, rounds) = match profile {
        RunProfile::Quick => (20, 8, 5),
        RunProfile::Paper => (1000, 32, 50),
    };
    let mut table = Table::new(
        format!(
            "Table 15 — index maintenance: BFS Sharing refresh per query \
             ({queries} successive queries) and ProbTree incremental update \
             vs full rebuild ({rounds} batches of {batch} edge updates)"
        ),
        &[
            "Dataset",
            "BFS refresh / query",
            "ProbTree incr / batch",
            "ProbTree rebuild",
            "Speedup",
        ],
    );
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let mut est = env.estimator(EstimatorKind::BfsSharing);
        let mut rng = env.rng(15);
        let (s, t) = env.workload.pairs[0];
        let start = Instant::now();
        for _ in 0..queries {
            est.refresh(&mut rng);
            let _ = est.estimate(s, t, 1000, &mut rng);
        }
        let with_refresh = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for _ in 0..queries {
            let _ = est.estimate(s, t, 1000, &mut rng);
        }
        let without_refresh = start.elapsed().as_secs_f64();
        let per_query = (with_refresh - without_refresh).max(0.0) / queries as f64;

        let (incremental, rebuild) =
            probtree_update_costs(&env.graph, batch, rounds, seed ^ 0x15_15);

        let row = Table15Row {
            dataset,
            bfs_refresh_per_query: per_query,
            probtree_incremental: incremental,
            probtree_rebuild: rebuild,
        };
        table.row(vec![
            dataset.to_string(),
            fmt_secs(per_query),
            fmt_secs(incremental),
            fmt_secs(rebuild),
            format!("{:.0}x", row.speedup()),
        ]);
        rows.push(row);
    }
    (table.render(), rows)
}

/// Regenerate Table 15.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_with_data(profile, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The incremental path must beat a full rebuild on the quick
    /// profile — the whole point of maintaining the index in place.
    #[test]
    fn probtree_incremental_beats_rebuild_on_quick_profile() {
        let scale = Dataset::LastFm.spec().default_scale * RunProfile::Quick.scale_factor();
        let graph = Arc::new(Dataset::LastFm.generate_with_scale(scale, 42));
        let (incremental, rebuild) = probtree_update_costs(&graph, 8, 3, 42);
        assert!(
            incremental < rebuild,
            "incremental {incremental}s must beat rebuild {rebuild}s \
             ({} nodes, {} edges)",
            graph.num_nodes(),
            graph.num_edges()
        );
    }

    /// Maintenance must preserve answers: an incrementally maintained
    /// index extracts the same query graph as a fresh build.
    #[test]
    fn maintained_index_stays_equivalent() {
        let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.02, 7));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let updates = random_batch(&graph, 6, &mut rng);
        let snap = graph.with_updated_probs(&updates);
        let mut maintained = ProbTreeIndex::build(Arc::clone(&graph));
        maintained.apply_updates(&snap, &updates);
        let fresh = ProbTreeIndex::build(snap);
        let (s, t) = (relcomp_ugraph::NodeId(0), relcomp_ugraph::NodeId(3));
        let a = maintained.extract_query_graph(s, t);
        let b = fresh.extract_query_graph(s, t);
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for ((ea, ua, va, pa), (eb, ub, vb, pb)) in a.graph.edges().zip(b.graph.edges()) {
            assert_eq!((ea, ua, va), (eb, ub, vb));
            assert_eq!(pa.value().to_bits(), pb.value().to_bits());
        }
    }
}
