//! Figure 5: the Lazy Propagation correction.
//!
//! Reliability estimated by MC, original LP, and corrected LP+ at
//! convergence on the DBLP and BioMine analogs. The paper's finding: LP
//! estimates *much higher* reliability than MC (overestimation bias from
//! the mis-keyed geometric re-arm), while LP+ tracks MC closely.

use crate::convergence::run_convergence;
use crate::report::Table;
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;

/// One measured cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Dataset analog.
    pub dataset: Dataset,
    /// Estimator name.
    pub estimator: &'static str,
    /// Average reliability at convergence.
    pub reliability: f64,
}

/// Regenerate Fig. 5 and return (report, cells).
pub fn run_with_data(profile: RunProfile, seed: u64) -> (String, Vec<Cell>) {
    let kinds = [
        EstimatorKind::Mc,
        EstimatorKind::LpPlus,
        EstimatorKind::LpOriginal,
    ];
    let mut table = Table::new(
        "Figure 5 — reliability at convergence: MC vs LP+ vs LP",
        &["Dataset", "MC", "LP+", "LP", "LP inflation vs MC"],
    );
    let mut cells = Vec::new();
    for dataset in [Dataset::Dblp02, Dataset::BioMine] {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let cfg = profile.convergence();
        let mut by_kind = Vec::new();
        for &kind in &kinds {
            let mut est = env.estimator(kind);
            let mut rng = env.rng(kind as u64 + 5);
            let run = run_convergence(est.as_mut(), &env.workload, &cfg, &mut rng);
            let r = run.final_point().metrics.avg_reliability;
            cells.push(Cell {
                dataset,
                estimator: kind.display_name(),
                reliability: r,
            });
            by_kind.push(r);
        }
        table.row(vec![
            dataset.to_string(),
            format!("{:.4}", by_kind[0]),
            format!("{:.4}", by_kind[1]),
            format!("{:.4}", by_kind[2]),
            format!(
                "{:+.1}%",
                100.0 * (by_kind[2] - by_kind[0]) / by_kind[0].max(1e-9)
            ),
        ]);
    }
    (table.render(), cells)
}

/// Regenerate Fig. 5.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_with_data(profile, seed).0
}
