//! Figure 7(a-f): estimator variance and convergence.
//!
//! For each dataset, the dispersion ratio `rho_K = V_K / R_K` per
//! estimator as K grows, plus the K at which each estimator converges.
//! Paper findings to reproduce: the four MC-based estimators share nearly
//! identical variance curves; RHH/RSS sit clearly below and converge with
//! roughly 500 fewer samples; ProbTree converges slightly earlier than the
//! other MC-based methods.

use crate::report::{sparkline, Table};
use crate::runner::{sweep, ExperimentEnv, RunProfile};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;

/// Regenerate Fig. 7 for the given datasets (defaults to all six).
pub fn run_datasets(profile: RunProfile, seed: u64, datasets: &[Dataset]) -> String {
    let mut out = String::new();
    for &dataset in datasets {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let cfg = profile.convergence();
        let entries = sweep(&env, &EstimatorKind::PAPER_SIX, &cfg);

        let mut table = Table::new(
            format!("Figure 7 — rho_K (x1e-3) vs K, {dataset}"),
            &["Estimator", "Series (K: rho)", "Trend", "K @ convergence"],
        );
        for e in &entries {
            let series: Vec<String> = e
                .run
                .history
                .iter()
                .map(|p| format!("{}:{:.2}", p.metrics.k, p.metrics.rho * 1e3))
                .collect();
            let trend: Vec<f64> = e.run.history.iter().map(|p| p.metrics.rho).collect();
            table.row(vec![
                e.kind.display_name().to_string(),
                series.join("  "),
                sparkline(&trend),
                if e.run.converged {
                    e.run.final_k().to_string()
                } else {
                    format!(">{}", e.run.final_k())
                },
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Regenerate Fig. 7(a-f) for all six datasets.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_datasets(profile, seed, &Dataset::ALL)
}
