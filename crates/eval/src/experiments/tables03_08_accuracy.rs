//! Tables 3-8: relative error per dataset, at each estimator's own
//! convergence and at the fixed K = 1000, plus the pairwise deviation of
//! relative errors (Eq. 15).
//!
//! Findings to reproduce: at convergence all six estimators land below
//! ~2% RE with no common winner; comparing everyone at K = 1000 is unfair
//! to whichever methods have not converged there (larger pairwise
//! deviation on datasets whose convergent K exceeds 1000).

use crate::metrics::{pairwise_deviation, relative_error_pct};
use crate::report::Table;
use crate::runner::{sweep, ExperimentEnv, RunProfile, SweepEntry};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;

/// Measured accuracy rows for one dataset.
pub struct AccuracyTable {
    /// Dataset analog.
    pub dataset: Dataset,
    /// Rows: (estimator, K@conv, R@conv, RE@conv %, R@1000, RE@1000 %).
    pub rows: Vec<(String, usize, f64, f64, f64, f64)>,
    /// Pairwise deviation of REs at convergence.
    pub deviation_conv: f64,
    /// Pairwise deviation of REs at K = 1000.
    pub deviation_1000: f64,
}

/// Compute the accuracy table for one dataset from a pre-run sweep.
pub fn accuracy_from_sweep(dataset: Dataset, entries: &[SweepEntry]) -> AccuracyTable {
    let baseline = entries
        .iter()
        .find(|e| e.kind == EstimatorKind::Mc)
        .expect("MC present")
        .run
        .final_point()
        .per_pair_means
        .clone();

    let mut rows = Vec::new();
    let mut res_conv = Vec::new();
    let mut res_1000 = Vec::new();
    for e in entries {
        let conv = e.run.final_point();
        let re_conv = relative_error_pct(&conv.per_pair_means, &baseline);
        let re_1000 = relative_error_pct(&e.at_1000.per_pair_means, &baseline);
        res_conv.push(re_conv);
        res_1000.push(re_1000);
        rows.push((
            e.kind.display_name().to_string(),
            e.run.final_k(),
            conv.metrics.avg_reliability,
            re_conv,
            e.at_1000.metrics.avg_reliability,
            re_1000,
        ));
    }
    AccuracyTable {
        dataset,
        rows,
        deviation_conv: pairwise_deviation(&res_conv),
        deviation_1000: pairwise_deviation(&res_1000),
    }
}

/// Render one dataset's table in the paper's Tables 3-8 shape.
pub fn render(table: &AccuracyTable) -> String {
    let mut t = Table::new(
        format!("Tables 3-8 — relative error, {}", table.dataset),
        &[
            "Estimator",
            "K@conv",
            "R_K@conv",
            "RE@conv (%)",
            "R_K@1000",
            "RE@1000 (%)",
        ],
    );
    for (name, k, r_conv, re_conv, r_1000, re_1000) in &table.rows {
        t.row(vec![
            name.clone(),
            k.to_string(),
            format!("{r_conv:.4}"),
            format!("{re_conv:.2}"),
            format!("{r_1000:.4}"),
            format!("{re_1000:.2}"),
        ]);
    }
    t.row(vec![
        "Pairwise Deviation".into(),
        String::new(),
        String::new(),
        format!("{:.2}", table.deviation_conv),
        String::new(),
        format!("{:.2}", table.deviation_1000),
    ]);
    t.render()
}

/// Regenerate Tables 3-8 for the given datasets.
pub fn run_datasets(profile: RunProfile, seed: u64, datasets: &[Dataset]) -> String {
    let mut out = String::new();
    for &dataset in datasets {
        let env = ExperimentEnv::prepare(dataset, profile, 2, seed);
        let cfg = profile.convergence();
        let entries = sweep(&env, &EstimatorKind::PAPER_SIX, &cfg);
        out.push_str(&render(&accuracy_from_sweep(dataset, &entries)));
        out.push('\n');
    }
    out
}

/// Regenerate Tables 3-8 (all six datasets).
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_datasets(profile, seed, &Dataset::ALL)
}
