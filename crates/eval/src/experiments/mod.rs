//! One module per table/figure of the paper's evaluation (Section 3).
//!
//! Each experiment exposes a `run(profile, seed) -> String` entry point
//! that regenerates the corresponding rows/series and returns a rendered
//! report; the `relcomp-bench` crate wraps each in a binary. See
//! DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured records.

pub mod ext_bounds;
pub mod ext_topk;
pub mod fig05_lp_correction;
pub mod fig07_variance;
pub mod fig08_quality;
pub mod fig09_11_tradeoff;
pub mod fig12_memory;
pub mod fig13_indexing;
pub mod fig14_15_distance;
pub mod fig16_threshold;
pub mod fig17_stratum;
pub mod table02_datasets;
pub mod table15_index_update;
pub mod table16_coupling;
pub mod table17_summary;
pub mod tables03_08_accuracy;
pub mod tables09_14_runtime;
