//! Figure 8: estimate quality at variance convergence.
//!
//! Rebuilt on the core estimation sessions: instead of the harness's
//! fixed-K sweep with a private variance re-implementation, every
//! estimator now answers each workload pair through one *adaptive*
//! session ([`SampleBudget::adaptive`]) whose stopping rule is the
//! session tracker's relative CI half-width — the production stopping
//! rule, not an offline re-derivation. Finding to reproduce: the
//! reliability at convergence is already very close to the large-K MC
//! reference, and the samples needed to get there differ per estimator.

use crate::report::Table;
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::{EstimatorKind, SampleBudget, StopReason};
use relcomp_ugraph::Dataset;

/// Relative half-width target the sessions stop at (5% at 95%
/// confidence — comparable to the paper's dispersion threshold in the
/// regime its workloads occupy).
const EPS: f64 = 0.05;

/// Regenerate Fig. 8 and return (report, |final - reference| per
/// estimator).
pub fn run_with_data(profile: RunProfile, seed: u64) -> (String, Vec<(String, f64)>) {
    let env = ExperimentEnv::prepare(Dataset::BioMine, profile, 2, seed);
    run_on(&env, profile, 10_000)
}

/// The session-driven sweep over one prepared environment (`reference_k`
/// is the large-K MC reference budget; tests shrink it).
fn run_on(
    env: &ExperimentEnv,
    profile: RunProfile,
    reference_k: usize,
) -> (String, Vec<(String, f64)>) {
    let cfg = profile.convergence();

    // Large-K MC reference (paper: K = 10 000), mean over pairs.
    let reference = {
        let mut mc = env.estimator(EstimatorKind::Mc);
        let mut rng = env.rng(0x8888);
        let sum: f64 = env
            .workload
            .pairs
            .iter()
            .map(|&(s, t)| mc.estimate(s, t, reference_k, &mut rng).reliability)
            .sum();
        sum / env.workload.len() as f64
    };

    // The session budget: stream batches of the paper's K step until the
    // tracker converges or the sweep cap is hit.
    let budget = SampleBudget::adaptive(EPS, cfg.k_max).with_batch(cfg.k_step);

    let mut table = Table::new(
        format!(
            "Figure 8 — adaptive-session quality at eps = {EPS}, BioMine analog \
             (MC@10000 = {reference:.4})"
        ),
        &[
            "Estimator",
            "R @ stop",
            "avg samples",
            "avg half-width",
            "converged",
            "|Δ| vs reference",
        ],
    );
    let mut deltas = Vec::new();
    for &kind in &EstimatorKind::PAPER_SIX {
        let mut est = env.estimator(kind);
        let mut rng = env.rng(0x0808 ^ kind as u64);
        let mut sum_r = 0.0;
        let mut sum_samples = 0usize;
        let mut sum_hw = 0.0;
        let mut hw_count = 0usize;
        let mut converged = 0usize;
        for &(s, t) in &env.workload.pairs {
            est.refresh(&mut rng);
            let e = est.estimate_with(s, t, &budget, &mut rng);
            sum_r += e.reliability;
            sum_samples += e.samples;
            if let Some(hw) = e.half_width {
                sum_hw += hw;
                hw_count += 1;
            }
            if e.stop_reason == StopReason::Converged {
                converged += 1;
            }
        }
        let pairs = env.workload.len();
        let avg_r = sum_r / pairs as f64;
        let delta = (avg_r - reference).abs();
        deltas.push((kind.display_name().to_string(), delta));
        table.row(vec![
            kind.display_name().to_string(),
            format!("{avg_r:.4}"),
            format!("{:.0}", sum_samples as f64 / pairs as f64),
            if hw_count == 0 {
                "-".to_string()
            } else {
                format!("{:.4}", sum_hw / hw_count as f64)
            },
            format!("{converged}/{pairs}"),
            format!("{delta:.4}"),
        ]);
    }
    (table.render(), deltas)
}

/// Regenerate Fig. 8.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_with_data(profile, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_track_the_large_k_reference() {
        // Small analog + truncated workload: the assertion is about the
        // session machinery tracking the reference, not BioMine's scale.
        let mut env = ExperimentEnv::prepare(Dataset::LastFm, RunProfile::Quick, 2, 7);
        env.workload.pairs.truncate(4);
        let (report, deltas) = run_on(&env, RunProfile::Quick, 4000);
        assert!(report.contains("Figure 8"));
        assert_eq!(deltas.len(), 6);
        // Every estimator's adaptive-session mean must sit near the
        // large-K MC reference (the paper's Fig. 8 finding).
        for (name, delta) in &deltas {
            assert!(*delta < 0.06, "{name} drifted {delta} from the reference");
        }
    }
}
