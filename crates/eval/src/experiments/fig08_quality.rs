//! Figure 8: estimate quality at variance convergence.
//!
//! Average reliability per estimator as K grows, against the MC estimate
//! at a very large K (the paper uses K = 10 000) on the BioMine analog.
//! Finding to reproduce: the reliability at variance convergence is
//! already very close to the large-K reference.

use crate::convergence::measure_at_k;
use crate::report::Table;
use crate::runner::{sweep, ExperimentEnv, RunProfile};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;

/// Regenerate Fig. 8 and return (report, |final - reference| per
/// estimator).
pub fn run_with_data(profile: RunProfile, seed: u64) -> (String, Vec<(String, f64)>) {
    let env = ExperimentEnv::prepare(Dataset::BioMine, profile, 2, seed);
    let cfg = profile.convergence();

    // Large-K MC reference (paper: K = 10 000; few repeats suffice — the
    // reference is a mean over pairs).
    let mut mc = env.estimator(EstimatorKind::Mc);
    let mut rng = env.rng(0x8888);
    let reference = measure_at_k(mc.as_mut(), &env.workload, 10_000, 3, &mut rng)
        .metrics
        .avg_reliability;

    let entries = sweep(&env, &EstimatorKind::PAPER_SIX, &cfg);
    let mut table = Table::new(
        format!("Figure 8 — avg reliability vs K, BioMine analog (MC@10000 = {reference:.4})"),
        &[
            "Estimator",
            "Series (K: R_K)",
            "R @ convergence",
            "|Δ| vs reference",
        ],
    );
    let mut deltas = Vec::new();
    for e in &entries {
        let series: Vec<String> = e
            .run
            .history
            .iter()
            .map(|p| format!("{}:{:.4}", p.metrics.k, p.metrics.avg_reliability))
            .collect();
        let final_r = e.run.final_point().metrics.avg_reliability;
        let delta = (final_r - reference).abs();
        deltas.push((e.kind.display_name().to_string(), delta));
        table.row(vec![
            e.kind.display_name().to_string(),
            series.join("  "),
            format!("{final_r:.4}"),
            format!("{delta:.4}"),
        ]);
    }
    (table.render(), deltas)
}

/// Regenerate Fig. 8.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_with_data(profile, seed).0
}
