//! Figures 14-15: sensitivity to the s-t hop distance `h` (BioMine
//! analog), for `h` in {2, 4, 6, 8}.
//!
//! Fig. 14(a): samples for convergence stay roughly flat up to h = 6 and
//! climb sharply beyond; 14(b): relative error is insensitive to h.
//! Fig. 15: time to convergence grows with h for BFS-depth-bound methods
//! (MC, LP+, RHH), stays flat for BFS Sharing (it always evaluates the
//! whole reachable set) and grows only modestly for ProbTree and RSS.

use crate::metrics::relative_error_pct;
use crate::report::{fmt_secs, Table};
use crate::runner::{sweep, ExperimentEnv, RunProfile};
use relcomp_core::{EstimatorKind, ParallelSampler, SampleBudget, StopReason};
use relcomp_ugraph::Dataset;
use std::sync::Arc;

/// Regenerate Figs. 14-15 for the given hop distances.
pub fn run_hops(profile: RunProfile, seed: u64, hops: &[usize]) -> String {
    let mut k_table = Table::new(
        "Figure 14(a) — #samples (K) for convergence vs s-t distance, BioMine analog",
        &hop_header(hops),
    );
    let mut re_table = Table::new(
        "Figure 14(b) — relative error (%) at convergence vs s-t distance",
        &hop_header(hops),
    );
    let mut time_table = Table::new(
        "Figure 15 — time to convergence / query vs s-t distance",
        &hop_header(hops),
    );

    let mut k_rows: Vec<Vec<String>> = Vec::new();
    let mut re_rows: Vec<Vec<String>> = Vec::new();
    let mut time_rows: Vec<Vec<String>> = Vec::new();
    for kind in EstimatorKind::PAPER_SIX {
        k_rows.push(vec![kind.display_name().to_string()]);
        re_rows.push(vec![kind.display_name().to_string()]);
        time_rows.push(vec![kind.display_name().to_string()]);
    }

    for &h in hops {
        let env = ExperimentEnv::prepare(Dataset::BioMine, profile, h, seed);
        if env.workload.is_empty() {
            for rows in [&mut k_rows, &mut re_rows, &mut time_rows] {
                for row in rows.iter_mut() {
                    row.push("n/a".into());
                }
            }
            continue;
        }
        let cfg = profile.convergence();
        let entries = sweep(&env, &EstimatorKind::PAPER_SIX, &cfg);
        let baseline = entries
            .iter()
            .find(|e| e.kind == EstimatorKind::Mc)
            .expect("MC present")
            .run
            .final_point()
            .per_pair_means
            .clone();
        for (i, e) in entries.iter().enumerate() {
            let conv = e.run.final_point();
            k_rows[i].push(e.run.final_k().to_string());
            re_rows[i].push(format!(
                "{:.2}",
                relative_error_pct(&conv.per_pair_means, &baseline)
            ));
            time_rows[i].push(fmt_secs(conv.metrics.avg_query_secs));
        }
    }

    for row in k_rows {
        k_table.row(row);
    }
    for row in re_rows {
        re_table.row(row);
    }
    for row in time_rows {
        time_table.row(row);
    }
    format!(
        "{}\n{}\n{}\n{}",
        k_table.render(),
        re_table.render(),
        time_table.render(),
        run_adaptive_rd(profile, seed, hops).render()
    )
}

/// Extension table: the *original* distance-constrained query `R_d(s, t)`
/// (Jin et al., PVLDB'11) as a served workload — adaptive sessions on the
/// parallel sharded sampler, with the workload's hop distance doubling as
/// the constraint `d`. Reports how many samples the eps target needs per
/// distance and the stop-reason mix.
fn run_adaptive_rd(profile: RunProfile, seed: u64, hops: &[usize]) -> Table {
    let eps = 0.05;
    let cap = 50_000;
    let mut table = Table::new(
        format!(
            "Extension — adaptive R_d(s, t) sessions (parallel sharded MC, \
             eps = {eps}, cap = {cap}), BioMine analog"
        ),
        &[
            "d",
            "Pairs",
            "Avg K / pair",
            "Min K",
            "Converged",
            "Avg time / pair",
        ],
    );
    let budget = SampleBudget::adaptive(eps, cap);
    for &h in hops {
        let env = ExperimentEnv::prepare(Dataset::BioMine, profile, h, seed);
        if env.workload.is_empty() {
            table.row(vec![
                h.to_string(),
                "0".into(),
                "n/a".into(),
                "n/a".into(),
                "n/a".into(),
                "n/a".into(),
            ]);
            continue;
        }
        let sampler = ParallelSampler::new(Arc::clone(&env.graph), 2);
        let pairs: Vec<_> = env.workload.pairs.iter().copied().take(8).collect();
        let mut samples_sum = 0usize;
        let mut samples_min = usize::MAX;
        let mut converged = 0usize;
        let mut secs = 0.0;
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let est = sampler.estimate_distance_constrained_with(
                s,
                t,
                h,
                &budget,
                seed ^ ((i as u64) << 8),
            );
            samples_sum += est.samples;
            samples_min = samples_min.min(est.samples);
            if est.stop_reason == StopReason::Converged {
                converged += 1;
            }
            secs += est.elapsed.as_secs_f64();
        }
        table.row(vec![
            h.to_string(),
            pairs.len().to_string(),
            format!("{:.0}", samples_sum as f64 / pairs.len() as f64),
            samples_min.to_string(),
            format!("{converged}/{}", pairs.len()),
            fmt_secs(secs / pairs.len() as f64),
        ]);
    }
    table
}

fn hop_header(hops: &[usize]) -> Vec<&'static str> {
    // Table headers are &str; leak the tiny strings (binaries are
    // short-lived).
    let mut v: Vec<&'static str> = vec!["Estimator"];
    for &h in hops {
        v.push(Box::leak(format!("h={h}").into_boxed_str()));
    }
    v
}

/// Regenerate Figs. 14-15 with the paper's distances {2, 4, 6, 8}.
pub fn run(profile: RunProfile, seed: u64) -> String {
    let hops: &[usize] = match profile {
        RunProfile::Quick => &[2, 4],
        RunProfile::Paper => &[2, 4, 6, 8],
    };
    run_hops(profile, seed, hops)
}
