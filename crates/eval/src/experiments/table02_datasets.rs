//! Table 2: properties of the six dataset analogs.

use crate::report::Table;
use crate::runner::RunProfile;
use relcomp_ugraph::Dataset;

/// Regenerate Table 2 for the given profile scale.
pub fn run(profile: RunProfile, seed: u64) -> String {
    let mut table = Table::new(
        format!("Table 2 — dataset analog properties ({profile:?} profile)"),
        &[
            "Dataset",
            "#Nodes",
            "#Edges",
            "Prob mean±SD",
            "Quartiles {q1, med, q3}",
        ],
    );
    for dataset in Dataset::ALL {
        let scale = (dataset.spec().default_scale * profile.scale_factor()).clamp(1e-6, 1.0);
        let graph = dataset.generate_with_scale(scale, seed);
        let props = dataset.properties(&graph);
        table.row(vec![
            props.name,
            props.num_nodes.to_string(),
            props.num_edges.to_string(),
            format!("{:.2} ± {:.2}", props.prob.mean, props.prob.sd),
            format!(
                "{{{:.3}, {:.3}, {:.3}}}",
                props.prob.q1, props.prob.median, props.prob.q3
            ),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_six_rows() {
        let out = run(RunProfile::Quick, 42);
        for name in [
            "LastFM",
            "NetHEPT",
            "AS Topology",
            "DBLP 0.2",
            "DBLP 0.05",
            "BioMine",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }
}
