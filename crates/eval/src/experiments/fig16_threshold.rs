//! Figure 16: sensitivity of the recursive methods to the sample-size
//! threshold (BioMine analog, K = 1000).
//!
//! Findings to reproduce: a large threshold (→100) collapses both RHH and
//! RSS to MC-level variance; below ~5 neither variance nor time improves
//! further; RSS is more robust to large thresholds than RHH.

use crate::convergence::measure_at_k;
use crate::report::{fmt_secs, Table};
use crate::runner::{ExperimentEnv, RunProfile};
use relcomp_core::recursive::{RecursiveSampling, RecursiveStratified};
use relcomp_core::EstimatorKind;
use relcomp_ugraph::Dataset;
use std::sync::Arc;

/// Regenerate Fig. 16 for the given thresholds at K = 1000.
pub fn run_thresholds(profile: RunProfile, seed: u64, thresholds: &[usize]) -> String {
    let env = ExperimentEnv::prepare(Dataset::BioMine, profile, 2, seed);
    let k = 1000;
    let repeats = profile.repeats().max(8);

    // MC reference lines (dashed lines in the paper's plot).
    let mut mc = env.estimator(EstimatorKind::Mc);
    let mut rng = env.rng(160);
    let mc_point = measure_at_k(mc.as_mut(), &env.workload, k, repeats, &mut rng);

    let mut var_table = Table::new(
        format!(
            "Figure 16(a) — variance (x1e-4) vs threshold, K=1000 (MC reference {:.2})",
            mc_point.metrics.avg_variance * 1e4
        ),
        &["Threshold", "RHH", "RSS"],
    );
    let mut time_table = Table::new(
        format!(
            "Figure 16(b) — time / query vs threshold, K=1000 (MC reference {})",
            fmt_secs(mc_point.metrics.avg_query_secs)
        ),
        &["Threshold", "RHH", "RSS"],
    );

    for &th in thresholds {
        let mut rhh = RecursiveSampling::with_threshold(Arc::clone(&env.graph), th);
        let mut rss =
            RecursiveStratified::with_params(Arc::clone(&env.graph), th, env.params.rss_r);
        let mut rng = env.rng(161 + th as u64);
        let rhh_point = measure_at_k(&mut rhh, &env.workload, k, repeats, &mut rng);
        let rss_point = measure_at_k(&mut rss, &env.workload, k, repeats, &mut rng);
        var_table.row(vec![
            th.to_string(),
            format!("{:.2}", rhh_point.metrics.avg_variance * 1e4),
            format!("{:.2}", rss_point.metrics.avg_variance * 1e4),
        ]);
        time_table.row(vec![
            th.to_string(),
            fmt_secs(rhh_point.metrics.avg_query_secs),
            fmt_secs(rss_point.metrics.avg_query_secs),
        ]);
    }
    format!("{}\n{}", var_table.render(), time_table.render())
}

/// Regenerate Fig. 16 with the paper's thresholds {2, 5, 10, 20, 50, 100}.
pub fn run(profile: RunProfile, seed: u64) -> String {
    run_thresholds(profile, seed, &[2, 5, 10, 20, 50, 100])
}
