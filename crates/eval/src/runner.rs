//! Experiment orchestration: shared environments and estimator sweeps.

use crate::convergence::{
    measure_at_k, run_convergence, ConvergenceConfig, ConvergenceRun, KPoint,
};
use crate::workload::Workload;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::{build_estimator, Estimator, EstimatorKind, SuiteParams};
use relcomp_ugraph::{Dataset, UncertainGraph};
use std::sync::Arc;

/// How heavy an experiment run should be.
///
/// `Quick` keeps every binary in the seconds-to-minutes range on a laptop;
/// `Paper` uses the paper's workload sizes (100 pairs, T = 100) and the
/// datasets' default scales. Both use the same protocol — only sizes
/// differ (see DESIGN.md substitutions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunProfile {
    /// Reduced pairs/repeats/scale for fast regeneration.
    Quick,
    /// The paper's workload sizes.
    Paper,
}

impl RunProfile {
    /// Parse from a CLI argument (`quick` / `paper`).
    pub fn parse(arg: &str) -> Option<RunProfile> {
        match arg {
            "quick" => Some(RunProfile::Quick),
            "paper" | "full" => Some(RunProfile::Paper),
            _ => None,
        }
    }

    /// Number of s-t pairs per workload.
    pub fn pairs(self) -> usize {
        match self {
            RunProfile::Quick => 15,
            RunProfile::Paper => 100,
        }
    }

    /// Repetitions `T` per (pair, K).
    pub fn repeats(self) -> usize {
        match self {
            RunProfile::Quick => 6,
            RunProfile::Paper => 100,
        }
    }

    /// Multiplier applied to each dataset's default generation scale.
    pub fn scale_factor(self) -> f64 {
        match self {
            RunProfile::Quick => 0.35,
            RunProfile::Paper => 1.0,
        }
    }

    /// Convergence configuration for this profile.
    pub fn convergence(self) -> ConvergenceConfig {
        ConvergenceConfig {
            repeats: self.repeats(),
            ..ConvergenceConfig::default()
        }
    }
}

/// A prepared experiment environment: one dataset analog plus its shared
/// workload. All estimators in an experiment run over exactly this state.
pub struct ExperimentEnv {
    /// Which dataset analog.
    pub dataset: Dataset,
    /// The generated graph.
    pub graph: Arc<UncertainGraph>,
    /// The shared s-t workload.
    pub workload: Workload,
    /// Estimator parameters (paper defaults unless an ablation overrides).
    pub params: SuiteParams,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentEnv {
    /// Generate the dataset at `profile` scale and draw the shared
    /// workload at hop distance `hops`.
    pub fn prepare(dataset: Dataset, profile: RunProfile, hops: usize, seed: u64) -> Self {
        let scale = (dataset.spec().default_scale * profile.scale_factor()).clamp(1e-6, 1.0);
        let graph = Arc::new(dataset.generate_with_scale(scale, seed));
        let workload = Workload::generate(&graph, profile.pairs(), hops, seed ^ 0x5eed);
        // The BFS-Sharing index must cover the largest K the convergence
        // sweep can request.
        let params = SuiteParams {
            bfs_sharing_worlds: profile.convergence().k_max,
            ..SuiteParams::default()
        };
        ExperimentEnv {
            dataset,
            graph,
            workload,
            params,
            seed,
        }
    }

    /// A deterministic RNG derived from the environment seed and a salt.
    pub fn rng(&self, salt: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ salt.rotate_left(17))
    }

    /// Instantiate an estimator over this environment's graph.
    pub fn estimator(&self, kind: EstimatorKind) -> Box<dyn Estimator> {
        let mut rng = self.rng(kind_salt(kind));
        build_estimator(kind, Arc::clone(&self.graph), self.params, &mut rng)
    }
}

fn kind_salt(kind: EstimatorKind) -> u64 {
    // Stable per-kind salt so index construction is reproducible.
    kind.display_name()
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        })
}

/// Result of sweeping one estimator: the convergence run plus a
/// measurement at the paper's fixed comparison point `K = 1000`.
pub struct SweepEntry {
    /// Which estimator.
    pub kind: EstimatorKind,
    /// The convergence sweep.
    pub run: ConvergenceRun,
    /// Metrics at exactly `K = 1000` (reused from the sweep when the sweep
    /// touched 1000, measured separately otherwise).
    pub at_1000: KPoint,
}

/// Sweep a set of estimators over one environment: convergence protocol
/// plus the fixed `K = 1000` measurement the paper also reports.
pub fn sweep(
    env: &ExperimentEnv,
    kinds: &[EstimatorKind],
    cfg: &ConvergenceConfig,
) -> Vec<SweepEntry> {
    kinds
        .iter()
        .map(|&kind| {
            let mut est = env.estimator(kind);
            let mut rng = env.rng(kind_salt(kind) ^ 0x9e37_79b9);
            let run = run_convergence(est.as_mut(), &env.workload, cfg, &mut rng);
            let at_1000 = match run.point_at(1000) {
                Some(p) => p.clone(),
                None => measure_at_k(est.as_mut(), &env.workload, 1000, cfg.repeats, &mut rng),
            };
            SweepEntry { kind, run, at_1000 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing_and_sizes() {
        assert_eq!(RunProfile::parse("quick"), Some(RunProfile::Quick));
        assert_eq!(RunProfile::parse("paper"), Some(RunProfile::Paper));
        assert_eq!(RunProfile::parse("nope"), None);
        assert!(RunProfile::Quick.pairs() < RunProfile::Paper.pairs());
    }

    #[test]
    fn env_preparation_is_reproducible() {
        let a = ExperimentEnv::prepare(Dataset::LastFm, RunProfile::Quick, 2, 3);
        let b = ExperimentEnv::prepare(Dataset::LastFm, RunProfile::Quick, 2, 3);
        assert_eq!(a.workload.pairs, b.workload.pairs);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn sweep_produces_entries_with_k1000() {
        let mut env = ExperimentEnv::prepare(Dataset::LastFm, RunProfile::Quick, 2, 5);
        // Shrink the workload for test speed.
        env.workload.pairs.truncate(3);
        let cfg = ConvergenceConfig {
            k_start: 250,
            k_step: 250,
            k_max: 500,
            repeats: 4,
            rho_threshold: 1e-3,
        };
        let entries = sweep(&env, &[EstimatorKind::Mc, EstimatorKind::Rss], &cfg);
        assert_eq!(entries.len(), 2);
        for e in &entries {
            assert_eq!(e.at_1000.metrics.k, 1000);
            assert!(!e.run.history.is_empty());
        }
    }
}

/// Parallel variant of [`sweep`]: one worker thread per estimator
/// (std scoped threads). Use for *accuracy/variance* experiments
/// only — concurrent workers contend for cores, so per-query wall times
/// are noisier than the sequential [`sweep`]'s (which the timing tables
/// use).
pub fn sweep_parallel(
    env: &ExperimentEnv,
    kinds: &[EstimatorKind],
    cfg: &ConvergenceConfig,
) -> Vec<SweepEntry> {
    let mut out: Vec<Option<SweepEntry>> = Vec::new();
    out.resize_with(kinds.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &kind) in kinds.iter().enumerate() {
            let env_ref = &*env;
            handles.push((
                i,
                scope.spawn(move || {
                    let mut est = env_ref.estimator(kind);
                    let mut rng = env_ref.rng(kind_salt(kind) ^ 0x9e37_79b9);
                    let run = run_convergence(est.as_mut(), &env_ref.workload, cfg, &mut rng);
                    let at_1000 = match run.point_at(1000) {
                        Some(p) => p.clone(),
                        None => measure_at_k(
                            est.as_mut(),
                            &env_ref.workload,
                            1000,
                            cfg.repeats,
                            &mut rng,
                        ),
                    };
                    SweepEntry { kind, run, at_1000 }
                }),
            ));
        }
        for (i, handle) in handles {
            out[i] = Some(handle.join().expect("sweep worker panicked"));
        }
    });
    out.into_iter()
        .map(|e| e.expect("all workers joined"))
        .collect()
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_sweep_matches_sequential_estimates() {
        let mut env = ExperimentEnv::prepare(Dataset::LastFm, RunProfile::Quick, 2, 5);
        env.workload.pairs.truncate(3);
        let cfg = ConvergenceConfig {
            k_start: 250,
            k_step: 250,
            k_max: 500,
            repeats: 4,
            rho_threshold: 1e-3,
        };
        let kinds = [EstimatorKind::Mc, EstimatorKind::Rss];
        let seq = sweep(&env, &kinds, &cfg);
        let par = sweep_parallel(&env, &kinds, &cfg);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.kind, b.kind);
            // Same derived RNG seeds => identical estimates.
            assert_eq!(
                a.run.final_point().per_pair_means,
                b.run.final_point().per_pair_means
            );
        }
    }
}
