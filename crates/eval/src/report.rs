//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints tables shaped like the paper's, built
//! through this tiny fixed-width formatter (kept dependency-free on
//! purpose — output must be diffable and greppable).

/// A column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format seconds compactly (ms below one second).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Format a byte count with binary units.
pub fn fmt_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.2} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["Estimator", "K", "RE (%)"]);
        t.row(vec!["MC".into(), "1000".into(), "0.00".into()]);
        t.row(vec!["BFS Sharing".into(), "1000".into(), "0.97".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("BFS Sharing"));
        // Both data lines have the same length (alignment).
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.0123), "12.300 ms");
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_bytes(1536.0), "1.50 KiB");
        assert_eq!(fmt_bytes(10.0), "10.00 B");
    }
}

/// Unicode sparkline of a numeric series (▁▂▃▄▅▆▇█), linearly scaled
/// between the series min and max. Empty input yields an empty string;
/// a constant series renders mid-height blocks.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return "?".repeat(values.len());
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '?';
            }
            if span <= 0.0 {
                return BLOCKS[3];
            }
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            BLOCKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod sparkline_tests {
    use super::sparkline;

    #[test]
    fn ramps_up() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s, "▁▅█");
    }

    #[test]
    fn constant_series_is_flat() {
        assert_eq!(sparkline(&[2.0, 2.0]), "▄▄");
    }

    #[test]
    fn empty_and_nonfinite() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[f64::NAN, 1.0, 2.0]), "?▁█");
    }
}
