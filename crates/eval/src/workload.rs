//! Query-workload generation (§3.1.3 of the paper).
//!
//! For each dataset the paper draws 100 distinct s-t pairs: a source node
//! uniformly at random, then a target chosen uniformly among nodes exactly
//! `h` hops away (default `h = 2`; Figs. 14-15 sweep `h` up to 8). The same
//! pairs are used for *every* estimator over that dataset — that shared
//! workload is one of the paper's central methodological fixes.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use relcomp_ugraph::traversal::hop_distances;
use relcomp_ugraph::{NodeId, UncertainGraph};

/// A reproducible set of s-t query pairs at a fixed hop distance.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The s-t pairs.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Hop distance every pair satisfies.
    pub hops: usize,
    /// Seed the workload was drawn with.
    pub seed: u64,
}

impl Workload {
    /// Draw up to `num_pairs` distinct pairs with shortest-path distance
    /// exactly `hops` (over the certain topology). Sources without any
    /// node at that distance are re-drawn; gives up (returning fewer
    /// pairs) after a generous retry budget on very sparse graphs.
    pub fn generate(graph: &UncertainGraph, num_pairs: usize, hops: usize, seed: u64) -> Workload {
        assert!(hops >= 1, "hop distance must be >= 1");
        assert!(graph.num_nodes() > 1, "graph too small for a workload");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(num_pairs);
        let mut seen = std::collections::HashSet::with_capacity(num_pairs * 2);
        let budget = num_pairs * 200;
        let mut attempts = 0;
        while pairs.len() < num_pairs && attempts < budget {
            attempts += 1;
            let s = NodeId(rng.gen_range(0..graph.num_nodes() as u32));
            let dist = hop_distances(graph, s, hops);
            let candidates: Vec<NodeId> = dist
                .iter()
                .enumerate()
                .filter(|(_, d)| **d == Some(hops as u32))
                .map(|(i, _)| NodeId::from_index(i))
                .collect();
            let Some(&t) = candidates.choose(&mut rng) else {
                continue;
            };
            if seen.insert((s, t)) {
                pairs.push((s, t));
            }
        }
        Workload { pairs, hops, seed }
    }

    /// Number of pairs in the workload.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_ugraph::Dataset;

    #[test]
    fn pairs_are_at_requested_distance() {
        let g = Dataset::LastFm.generate_with_scale(0.1, 3);
        let w = Workload::generate(&g, 20, 2, 7);
        assert_eq!(w.len(), 20);
        for &(s, t) in &w.pairs {
            let d = hop_distances(&g, s, 4);
            assert_eq!(d[t.index()], Some(2), "pair {s}->{t}");
        }
    }

    #[test]
    fn workload_is_reproducible() {
        let g = Dataset::LastFm.generate_with_scale(0.1, 3);
        let a = Workload::generate(&g, 10, 2, 42);
        let b = Workload::generate(&g, 10, 2, 42);
        assert_eq!(a.pairs, b.pairs);
        let c = Workload::generate(&g, 10, 2, 43);
        assert_ne!(a.pairs, c.pairs);
    }

    #[test]
    fn pairs_are_distinct() {
        let g = Dataset::LastFm.generate_with_scale(0.1, 3);
        let w = Workload::generate(&g, 30, 2, 9);
        let mut dedup = w.pairs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), w.pairs.len());
    }

    #[test]
    fn larger_hops_supported() {
        let g = Dataset::LastFm.generate_with_scale(0.1, 3);
        let w = Workload::generate(&g, 5, 4, 11);
        for &(s, t) in &w.pairs {
            let d = hop_distances(&g, s, 6);
            assert_eq!(d[t.index()], Some(4));
        }
    }
}
