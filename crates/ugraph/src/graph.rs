//! Compressed-sparse-row storage for uncertain directed graphs.
//!
//! An [`UncertainGraph`] is the paper's triple `G = (V, E, P)`: `n` nodes,
//! `m` directed edges, and an existence probability per edge. Storage is a
//! forward CSR (out-edges, used by every BFS-based estimator) plus a reverse
//! CSR (in-edges, needed by BFS-Sharing's cascading updates, Alg. 2 line 16,
//! and by the ProbTree decomposition).
//!
//! Edge ids are assigned in forward-CSR order, so `EdgeId` doubles as a
//! direct index into any per-edge side array an estimator wants to keep
//! (bit vectors, strata overlays, geometric counters, ...).
//!
//! Every array is held in an [`EdgeStorage`] — heap (`Arc<[T]>`) or a
//! borrowed view into an `mmap`ed v2 file — which makes **epoch
//! snapshots** cheap: [`UncertainGraph::with_updated_probs`] produces a
//! new graph that shares the (immutable) topology arrays with its parent
//! and copy-on-writes only the probability array, onto the heap. A
//! long-lived service can therefore keep several epochs of the same
//! graph alive at once for the cost of one topology plus one `probs`
//! array per epoch — and the topology may be reclaimable page cache
//! rather than process heap.

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use crate::probability::Probability;
use crate::storage::EdgeStorage;
use crate::update::EdgeUpdate;
use std::sync::Arc;

/// Borrowed CSR arrays in v2 file order:
/// `(out_offsets, out_targets, sources, probs, in_offsets, in_edges)`.
pub(crate) type CsrParts<'a> = (
    &'a [u32],
    &'a [NodeId],
    &'a [NodeId],
    &'a [Probability],
    &'a [u32],
    &'a [EdgeId],
);

/// A directed uncertain graph in CSR form. Immutable once built; construct
/// via [`GraphBuilder`](crate::builder::GraphBuilder) and derive new
/// epochs via [`UncertainGraph::with_updated_probs`] /
/// [`UncertainGraph::with_edits`].
#[derive(Clone, Debug)]
pub struct UncertainGraph {
    /// Forward CSR offsets, length `n + 1`.
    out_offsets: EdgeStorage<u32>,
    /// Forward CSR targets, length `m`; slot `i` is edge `EdgeId(i)`.
    out_targets: EdgeStorage<NodeId>,
    /// Edge source per edge id (inverse of the forward CSR), length `m`.
    sources: EdgeStorage<NodeId>,
    /// Edge probability per edge id, length `m`. The only array that
    /// differs between probability-update epochs.
    probs: EdgeStorage<Probability>,
    /// Reverse CSR offsets, length `n + 1`.
    in_offsets: EdgeStorage<u32>,
    /// Reverse CSR edge ids, length `m` (look up source via `sources`).
    in_edges: EdgeStorage<EdgeId>,
}

impl UncertainGraph {
    /// Assemble a graph from already-validated parts. Internal; callers go
    /// through [`GraphBuilder`](crate::builder::GraphBuilder).
    pub(crate) fn from_sorted_edges(
        num_nodes: usize,
        edges: &[(NodeId, NodeId, Probability)],
    ) -> Self {
        debug_assert!(edges
            .windows(2)
            .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)));
        let n = num_nodes;
        let m = edges.len();

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }

        let mut out_targets = Vec::with_capacity(m);
        let mut sources = Vec::with_capacity(m);
        let mut probs = Vec::with_capacity(m);
        for &(u, v, p) in edges {
            out_targets.push(v);
            sources.push(u);
            probs.push(p);
        }

        // Reverse CSR via counting sort on targets.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v, _) in edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_edges = vec![EdgeId(0); m];
        for (eid, &(_, v, _)) in edges.iter().enumerate() {
            let slot = cursor[v.index()] as usize;
            in_edges[slot] = EdgeId::from_index(eid);
            cursor[v.index()] += 1;
        }

        UncertainGraph {
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            sources: sources.into(),
            probs: probs.into(),
            in_offsets: in_offsets.into(),
            in_edges: in_edges.into(),
        }
    }

    /// Assemble a graph directly from pre-built CSR arrays (heap or
    /// mmap-backed). Used by the v2 binary loader and the streaming
    /// generators; `pub(crate)` because the arrays must already satisfy
    /// every CSR invariant (validated by the loader before this call).
    pub(crate) fn from_parts(
        out_offsets: EdgeStorage<u32>,
        out_targets: EdgeStorage<NodeId>,
        sources: EdgeStorage<NodeId>,
        probs: EdgeStorage<Probability>,
        in_offsets: EdgeStorage<u32>,
        in_edges: EdgeStorage<EdgeId>,
    ) -> Self {
        debug_assert!(!out_offsets.is_empty());
        debug_assert_eq!(out_offsets.len(), in_offsets.len());
        debug_assert_eq!(out_targets.len(), probs.len());
        debug_assert_eq!(out_targets.len(), sources.len());
        debug_assert_eq!(out_targets.len(), in_edges.len());
        UncertainGraph {
            out_offsets,
            out_targets,
            sources,
            probs,
            in_offsets,
            in_edges,
        }
    }

    /// Raw CSR arrays in file order, for the v2 binary writer:
    /// `(out_offsets, out_targets, sources, probs, in_offsets, in_edges)`.
    pub(crate) fn csr_parts(&self) -> CsrParts<'_> {
        (
            &self.out_offsets,
            &self.out_targets,
            &self.sources,
            &self.probs,
            &self.in_offsets,
            &self.in_edges,
        )
    }

    /// True if any CSR array is a borrowed view into a memory-mapped v2
    /// file rather than heap memory.
    pub fn is_mapped(&self) -> bool {
        self.out_offsets.is_mapped()
            || self.out_targets.is_mapped()
            || self.sources.is_mapped()
            || self.probs.is_mapped()
            || self.in_offsets.is_mapped()
            || self.in_edges.is_mapped()
    }

    /// Snapshot this graph with a batch of edge-probability updates
    /// applied: the new epoch's graph shares every topology array with
    /// `self` (Arc-cloned) and copy-on-writes only the `probs` array.
    ///
    /// Later updates in the batch win on duplicate edge ids. An empty
    /// batch shares even the probability array (a pure alias).
    ///
    /// # Panics
    /// Panics if an update names an edge id out of range — resolve
    /// endpoint pairs through [`UncertainGraph::find_edge`] first.
    pub fn with_updated_probs(&self, updates: &[EdgeUpdate]) -> Arc<UncertainGraph> {
        if updates.is_empty() {
            return Arc::new(self.clone());
        }
        let mut probs = self.probs.to_vec();
        for u in updates {
            assert!(
                u.edge.index() < probs.len(),
                "edge {} out of range (graph has {} edges)",
                u.edge,
                probs.len()
            );
            probs[u.edge.index()] = u.prob;
        }
        Arc::new(UncertainGraph {
            out_offsets: self.out_offsets.clone(),
            out_targets: self.out_targets.clone(),
            sources: self.sources.clone(),
            probs: probs.into(),
            in_offsets: self.in_offsets.clone(),
            in_edges: self.in_edges.clone(),
        })
    }

    /// Rebuild path for topology changes: a new graph with `deletes`
    /// removed and `inserts` added, re-sorted into fresh CSR arrays.
    /// Edge ids are **reassigned**; indexes built over `self` must be
    /// rebuilt (incremental maintenance only covers probability updates).
    pub fn with_edits(
        &self,
        inserts: &[(NodeId, NodeId, Probability)],
        deletes: &[EdgeId],
    ) -> Result<UncertainGraph, GraphError> {
        let dropped: std::collections::HashSet<usize> = deletes.iter().map(|e| e.index()).collect();
        let mut builder = crate::builder::GraphBuilder::new(self.num_nodes())
            .with_edge_capacity(self.num_edges().saturating_sub(dropped.len()) + inserts.len())
            .allow_self_loops(true);
        for (e, u, v, p) in self.edges() {
            if !dropped.contains(&e.index()) {
                builder.add_edge_prob(u, v, p)?;
            }
        }
        for &(u, v, p) in inserts {
            builder.add_edge_prob(u, v, p)?;
        }
        builder.try_build()
    }

    /// True if `other` shares this graph's topology arrays (same memory,
    /// i.e. derived via [`UncertainGraph::with_updated_probs`] or a
    /// clone — whether that memory is a heap allocation or a view into
    /// the same mapping). Incremental index maintenance requires this;
    /// graphs that went through the [`UncertainGraph::with_edits`]
    /// rebuild path — or were built independently — report `false` even
    /// if structurally equal, and force a full index rebuild.
    pub fn same_topology(&self, other: &UncertainGraph) -> bool {
        self.out_offsets.ptr_eq(&other.out_offsets) && self.out_targets.ptr_eq(&other.out_targets)
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// True if `node` is a valid id for this graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.num_nodes()
    }

    /// All node ids, `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// All edges as `(EdgeId, from, to, prob)` in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, Probability)> + '_ {
        (0..self.num_edges()).map(move |i| {
            (
                EdgeId::from_index(i),
                self.sources[i],
                self.out_targets[i],
                self.probs[i],
            )
        })
    }

    /// Out-edges of `v` as `(EdgeId, target)`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| (EdgeId::from_index(i), self.out_targets[i]))
    }

    /// In-edges of `v` as `(EdgeId, source)`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        self.in_edges[lo..hi]
            .iter()
            .map(move |&e| (e, self.sources[e.index()]))
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// Existence probability of edge `e`.
    #[inline]
    pub fn prob(&self, e: EdgeId) -> Probability {
        self.probs[e.index()]
    }

    /// Endpoints `(from, to)` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        (self.sources[e.index()], self.out_targets[e.index()])
    }

    /// Source endpoint of edge `e`.
    #[inline]
    pub fn source(&self, e: EdgeId) -> NodeId {
        self.sources[e.index()]
    }

    /// Target endpoint of edge `e`.
    #[inline]
    pub fn target(&self, e: EdgeId) -> NodeId {
        self.out_targets[e.index()]
    }

    /// Find the edge id of `u -> v`, if present (binary search within `u`'s
    /// CSR slice, which is sorted by target).
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        let slice = &self.out_targets[lo..hi];
        slice
            .binary_search(&v)
            .ok()
            .map(|off| EdgeId::from_index(lo + off))
    }

    /// Approximate resident bytes of the CSR itself — the baseline memory
    /// every estimator pays (Fig. 12 accounting).
    pub fn resident_bytes(&self) -> usize {
        self.out_offsets.len() * 4
            + self.out_targets.len() * 4
            + self.sources.len() * 4
            + self.probs.len() * 8
            + self.in_offsets.len() * 4
            + self.in_edges.len() * 4
    }

    /// Mean probability over all edges (0 if the graph has no edges).
    pub fn mean_probability(&self) -> f64 {
        if self.probs.is_empty() {
            return 0.0;
        }
        self.probs.iter().map(|p| p.value()).sum::<f64>() / self.probs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> UncertainGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.8).unwrap();
        b.build()
    }

    #[test]
    fn counts_nodes_and_edges() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn out_edges_are_grouped_by_source() {
        let g = diamond();
        let outs: Vec<_> = g.out_edges(NodeId(0)).map(|(_, t)| t).collect();
        assert_eq!(outs, vec![NodeId(1), NodeId(2)]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let g = diamond();
        let ins: Vec<_> = g.in_edges(NodeId(3)).map(|(_, s)| s).collect();
        assert_eq!(ins.len(), 2);
        assert!(ins.contains(&NodeId(1)));
        assert!(ins.contains(&NodeId(2)));
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn endpoints_and_probs_align_with_edge_ids() {
        let g = diamond();
        for (e, u, v, p) in g.edges() {
            assert_eq!(g.endpoints(e), (u, v));
            assert_eq!(g.prob(e), p);
            assert_eq!(g.source(e), u);
            assert_eq!(g.target(e), v);
        }
    }

    #[test]
    fn find_edge_hits_and_misses() {
        let g = diamond();
        assert!(g.find_edge(NodeId(0), NodeId(1)).is_some());
        assert!(g.find_edge(NodeId(1), NodeId(0)).is_none());
        assert!(g.find_edge(NodeId(3), NodeId(0)).is_none());
    }

    #[test]
    fn degree_sums_equal_edge_count() {
        let g = diamond();
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_sum, g.num_edges());
        assert_eq!(in_sum, g.num_edges());
    }

    #[test]
    fn resident_bytes_scales_with_size() {
        let g = diamond();
        assert!(g.resident_bytes() > 0);
    }

    #[test]
    fn mean_probability_is_average() {
        let g = diamond();
        assert!((g.mean_probability() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn with_updated_probs_shares_topology_and_swaps_probs() {
        let g = diamond();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let updated = g.with_updated_probs(&[EdgeUpdate::new(e, 0.123).unwrap()]);
        assert!(g.same_topology(&updated), "topology arrays must be shared");
        assert!((updated.prob(e).value() - 0.123).abs() < 1e-15);
        // The parent epoch is untouched.
        assert!((g.prob(e).value() - 0.5).abs() < 1e-15);
        // Every other edge keeps its probability.
        for (eid, _, _, p) in g.edges() {
            if eid != e {
                assert_eq!(updated.prob(eid), p);
            }
        }
    }

    #[test]
    fn with_updated_probs_empty_batch_is_pure_alias() {
        let g = diamond();
        let snap = g.with_updated_probs(&[]);
        assert!(g.same_topology(&snap));
        assert_eq!(snap.num_edges(), g.num_edges());
    }

    #[test]
    fn with_updated_probs_later_update_wins() {
        let g = diamond();
        let e = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        let snap = g.with_updated_probs(&[
            EdgeUpdate::new(e, 0.2).unwrap(),
            EdgeUpdate::new(e, 0.9).unwrap(),
        ]);
        assert!((snap.prob(e).value() - 0.9).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_updated_probs_rejects_bad_edge_id() {
        let g = diamond();
        let _ = g.with_updated_probs(&[EdgeUpdate::new(EdgeId(99), 0.5).unwrap()]);
    }

    #[test]
    fn with_edits_inserts_and_deletes() {
        let g = diamond();
        let drop = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let edited = g
            .with_edits(
                &[(NodeId(3), NodeId(0), Probability::new(0.25).unwrap())],
                &[drop],
            )
            .unwrap();
        assert_eq!(edited.num_edges(), 4);
        assert!(edited.find_edge(NodeId(0), NodeId(1)).is_none());
        let back = edited.find_edge(NodeId(3), NodeId(0)).unwrap();
        assert!((edited.prob(back).value() - 0.25).abs() < 1e-15);
        // Rebuilt CSR arrays are fresh: incremental maintenance must not
        // mistake this for a probability-only snapshot.
        assert!(!g.same_topology(&edited));
    }

    #[test]
    fn with_edits_rejects_duplicate_insert() {
        let g = diamond();
        assert!(g
            .with_edits(&[(NodeId(0), NodeId(1), Probability::ONE)], &[])
            .is_err());
    }
}
