//! # relcomp-ugraph — uncertain graph substrate
//!
//! Data structures and utilities for *uncertain graphs*: directed graphs
//! whose edges carry an independent existence probability in `(0, 1]`
//! (possible-world semantics). This crate is the substrate beneath the
//! s-t reliability estimators in `relcomp-core`, reproducing the setting of
//! *"An In-Depth Comparison of s-t Reliability Algorithms over Uncertain
//! Graphs"* (VLDB 2019).
//!
//! ## Quick tour
//!
//! ```
//! use relcomp_ugraph::{GraphBuilder, NodeId};
//!
//! // 0 -> 1 -> 2, each edge present with probability 0.5
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
//! let g = b.build();
//! assert_eq!(g.num_edges(), 2);
//!
//! // Exact reliability of the chain is 0.25: both edges must exist.
//! use relcomp_ugraph::possible_world::enumerate_worlds;
//! let r: f64 = enumerate_worlds(&g)
//!     .filter(|w| w.reaches(&g, NodeId(0), NodeId(2)))
//!     .map(|w| w.probability(&g))
//!     .sum();
//! assert!((r - 0.25).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![allow(rustdoc::private_intra_doc_links)]

pub mod analysis;
pub mod builder;
pub mod datasets;
pub mod error;
pub mod format;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod io;
pub mod mmap;
pub mod possible_world;
pub mod probability;
pub mod probmodel;
pub mod stats;
pub mod storage;
pub mod subgraph;
pub mod traversal;
pub mod update;

pub use builder::{DuplicatePolicy, GraphBuilder};
pub use datasets::{Dataset, DatasetProperties, DatasetSpec};
pub use error::GraphError;
pub use format::{load_graph_v2, load_graph_v2_heap, write_graph_v2};
pub use graph::UncertainGraph;
pub use ids::{EdgeId, NodeId};
pub use io::{detect_format, load_graph_auto, GraphFormat, LoadReport};
pub use probability::{Probability, ProbabilityError};
pub use storage::EdgeStorage;
pub use update::EdgeUpdate;
