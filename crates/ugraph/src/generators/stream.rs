//! Streaming million-node generation straight into the v2 binary format.
//!
//! The classic generators return an edge-pair `Vec` that a
//! `GraphBuilder` then re-sorts — two materializations of the whole edge
//! list before anything hits disk, which caps practical sizes well below
//! the million-node graphs the serve workloads need. This module instead
//! runs the topology generator **twice with the same seed** (ChaCha is
//! cheap and replay is exact): pass 1 only counts degrees, pass 2 places
//! each edge directly into its final CSR slot via per-node cursors. The
//! assembled column arrays go straight to
//! [`write_v2_parts`](crate::format::write_v2_parts) — at no point does
//! a `(u, v, p)` tuple list exist.
//!
//! Topologies are **bidirected**: each undirected pair becomes two
//! directed edges carrying the same probability, matching how the CLI
//! builds its dataset analogs.

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use crate::probability::Probability;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::Path;

/// Topology family to stream.
#[derive(Debug, Clone, Copy)]
pub enum StreamTopology {
    /// Barabási–Albert preferential attachment: ~`n * m_attach` pairs.
    BarabasiAlbert {
        /// Number of nodes.
        n: usize,
        /// Edges attached per new node.
        m_attach: usize,
    },
    /// Erdős–Rényi G(n, m): exactly `m_pairs` distinct pairs.
    ErdosRenyi {
        /// Number of nodes.
        n: usize,
        /// Number of undirected pairs.
        m_pairs: usize,
    },
}

impl StreamTopology {
    fn num_nodes(&self) -> usize {
        match *self {
            StreamTopology::BarabasiAlbert { n, .. } | StreamTopology::ErdosRenyi { n, .. } => n,
        }
    }
}

/// Full specification of a streamed graph: topology, seed, and the
/// uniform probability range assigned per undirected pair.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// Topology family and size.
    pub topology: StreamTopology,
    /// Seed for both generation passes (replayed exactly).
    pub seed: u64,
    /// Lower bound of the uniform edge-probability draw (> 0).
    pub prob_low: f64,
    /// Upper bound of the uniform edge-probability draw (≤ 1).
    pub prob_high: f64,
}

/// What a streamed generation produced.
#[derive(Debug, Clone, Copy)]
pub struct StreamStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of *directed* edges written (2× the undirected pairs).
    pub num_edges: usize,
    /// Size of the v2 file in bytes.
    pub file_bytes: u64,
}

/// Probability draws come from their own ChaCha stream so that pass 1
/// (which skips them) and pass 2 replay identical topology.
const PROB_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Run the topology generator once, emitting each undirected pair.
/// Deterministic for a given spec, so two invocations see the same pairs
/// in the same order.
fn for_each_pair(topology: StreamTopology, seed: u64, mut emit: impl FnMut(u32, u32)) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match topology {
        StreamTopology::BarabasiAlbert { n, m_attach } => {
            assert!(m_attach >= 1, "attachment degree must be >= 1");
            assert!(
                n > m_attach,
                "need n > m_attach (got n = {n}, m_attach = {m_attach})"
            );
            // Same repeated-endpoint scheme as `barabasi_albert`; the
            // endpoint pool is the generator's working set (2 × u32 per
            // pair), not an edge-list materialization.
            let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
            for u in 0..=m_attach as u32 {
                for v in (u + 1)..=m_attach as u32 {
                    emit(u, v);
                    endpoints.push(u);
                    endpoints.push(v);
                }
            }
            let mut targets: Vec<u32> = Vec::with_capacity(m_attach);
            for new in (m_attach + 1)..n {
                let new = new as u32;
                targets.clear();
                while targets.len() < m_attach {
                    let t = endpoints[rng.gen_range(0..endpoints.len())];
                    if !targets.contains(&t) {
                        targets.push(t);
                    }
                }
                for &t in &targets {
                    emit(t, new);
                    endpoints.push(t);
                    endpoints.push(new);
                }
            }
        }
        StreamTopology::ErdosRenyi { n, m_pairs } => {
            assert!(n >= 2 || m_pairs == 0, "need at least 2 nodes for any edge");
            let max_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
            assert!(
                m_pairs <= max_pairs,
                "requested {m_pairs} pairs but only {max_pairs} distinct pairs exist"
            );
            let mut seen = std::collections::HashSet::with_capacity(m_pairs * 2);
            let mut emitted = 0usize;
            while emitted < m_pairs {
                let u = rng.gen_range(0..n) as u32;
                let v = rng.gen_range(0..n) as u32;
                if u == v {
                    continue;
                }
                let key = if u < v { (u, v) } else { (v, u) };
                if seen.insert(key) {
                    emit(key.0, key.1);
                    emitted += 1;
                }
            }
        }
    }
}

/// Stream-generate a bidirected uncertain graph and write it to `path`
/// as a v2 binary file.
pub fn generate_v2_file(spec: &StreamSpec, path: &Path) -> Result<StreamStats, GraphError> {
    assert!(
        spec.prob_low > 0.0 && spec.prob_high <= 1.0 && spec.prob_low <= spec.prob_high,
        "probability range must satisfy 0 < low <= high <= 1"
    );
    let n = spec.topology.num_nodes();
    assert!(n < u32::MAX as usize, "node count exceeds 32-bit id space");

    // Pass 1: degree counting only.
    let mut deg = vec![0u32; n];
    let mut pairs = 0usize;
    for_each_pair(spec.topology, spec.seed, |u, v| {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
        pairs += 1;
    });
    let m = pairs * 2;
    assert!(m <= u32::MAX as usize, "edge count exceeds 32-bit id space");

    // Prefix sums -> forward CSR offsets.
    let mut out_offsets = vec![0u32; n + 1];
    for i in 0..n {
        out_offsets[i + 1] = out_offsets[i] + deg[i];
    }
    drop(deg);

    // Pass 2: replay the same pairs, placing both directions directly
    // into their CSR slots. One probability draw per undirected pair,
    // shared by both directions, from a dedicated stream.
    let mut cursor: Vec<u32> = out_offsets[..n].to_vec();
    let mut out_targets = vec![NodeId(0); m];
    let mut probs = vec![Probability::ONE; m];
    let mut prob_rng = ChaCha8Rng::seed_from_u64(spec.seed ^ PROB_STREAM_SALT);
    let (lo, hi) = (spec.prob_low, spec.prob_high);
    for_each_pair(spec.topology, spec.seed, |u, v| {
        let p = if lo == hi {
            lo
        } else {
            prob_rng.gen_range(lo..hi)
        };
        let p = Probability::clamped(p);
        let su = cursor[u as usize] as usize;
        cursor[u as usize] += 1;
        out_targets[su] = NodeId(v);
        probs[su] = p;
        let sv = cursor[v as usize] as usize;
        cursor[v as usize] += 1;
        out_targets[sv] = NodeId(u);
        probs[sv] = p;
    });

    // Per-node sort by target: `find_edge` binary-searches each CSR
    // slice. Pairs are distinct, so targets within a node are unique.
    let mut scratch: Vec<(NodeId, Probability)> = Vec::new();
    for u in 0..n {
        let lo = out_offsets[u] as usize;
        let hi = out_offsets[u + 1] as usize;
        if hi - lo < 2 {
            continue;
        }
        scratch.clear();
        scratch.extend(
            out_targets[lo..hi]
                .iter()
                .copied()
                .zip(probs[lo..hi].iter().copied()),
        );
        scratch.sort_unstable_by_key(|&(t, _)| t);
        for (i, &(t, p)) in scratch.iter().enumerate() {
            out_targets[lo + i] = t;
            probs[lo + i] = p;
        }
    }

    // Sources: a sequential expansion of the forward offsets.
    let mut sources = vec![NodeId(0); m];
    for u in 0..n {
        for s in &mut sources[out_offsets[u] as usize..out_offsets[u + 1] as usize] {
            *s = NodeId(u as u32);
        }
    }

    // Reverse CSR by counting sort on targets (edge ids stay ascending
    // within each target bucket, same as the builder produces).
    let mut in_offsets = vec![0u32; n + 1];
    for t in &out_targets {
        in_offsets[t.index() + 1] += 1;
    }
    for i in 0..n {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut in_cursor: Vec<u32> = in_offsets[..n].to_vec();
    let mut in_edges = vec![EdgeId(0); m];
    for (eid, t) in out_targets.iter().enumerate() {
        let slot = in_cursor[t.index()] as usize;
        in_cursor[t.index()] += 1;
        in_edges[slot] = EdgeId::from_index(eid);
    }
    drop(in_cursor);
    drop(cursor);

    crate::format::write_v2_parts(
        path,
        &out_offsets,
        &out_targets,
        &sources,
        &probs,
        &in_offsets,
        &in_edges,
    )?;
    let file_bytes = std::fs::metadata(path)?.len();
    Ok(StreamStats {
        num_nodes: n,
        num_edges: m,
        file_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{load_graph_auto, GraphFormat};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("relcomp_stream_{}_{tag}.ug2", std::process::id()))
    }

    #[test]
    fn streamed_ba_matches_classic_generator_structure() {
        let spec = StreamSpec {
            topology: StreamTopology::BarabasiAlbert {
                n: 300,
                m_attach: 3,
            },
            seed: 42,
            prob_low: 0.1,
            prob_high: 0.9,
        };
        let path = temp_path("ba");
        let stats = generate_v2_file(&spec, &path).unwrap();
        let (g, report) = load_graph_auto(&path).unwrap();
        assert_eq!(report.format, GraphFormat::BinaryV2);
        assert_eq!(g.num_nodes(), 300);
        assert_eq!(g.num_edges(), stats.num_edges);

        // Bidirected: every edge has its reverse at the same probability.
        for (e, u, v, p) in g.edges() {
            let back = g.find_edge(v, u).expect("reverse edge present");
            assert_eq!(g.prob(back).value().to_bits(), p.value().to_bits());
            let _ = e;
        }
        // Pair count matches the classic BA formula.
        let m_attach = 3;
        let expected_pairs = (300 - m_attach - 1) * m_attach + m_attach * (m_attach + 1) / 2;
        assert_eq!(g.num_edges(), expected_pairs * 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn streamed_er_has_exact_pair_count() {
        let spec = StreamSpec {
            topology: StreamTopology::ErdosRenyi {
                n: 200,
                m_pairs: 400,
            },
            seed: 7,
            prob_low: 0.5,
            prob_high: 0.5,
        };
        let path = temp_path("er");
        let stats = generate_v2_file(&spec, &path).unwrap();
        assert_eq!(stats.num_edges, 800);
        let (g, _) = load_graph_auto(&path).unwrap();
        assert_eq!(g.num_edges(), 800);
        for (_, _, _, p) in g.edges() {
            assert_eq!(p.value(), 0.5);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn streaming_is_deterministic_per_seed() {
        let spec = StreamSpec {
            topology: StreamTopology::BarabasiAlbert {
                n: 120,
                m_attach: 2,
            },
            seed: 9,
            prob_low: 0.2,
            prob_high: 0.8,
        };
        let (p1, p2) = (temp_path("det1"), temp_path("det2"));
        generate_v2_file(&spec, &p1).unwrap();
        generate_v2_file(&spec, &p2).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(p1).ok();
        std::fs::remove_file(p2).ok();
    }

    #[test]
    fn csr_slices_are_sorted_for_find_edge() {
        let spec = StreamSpec {
            topology: StreamTopology::ErdosRenyi {
                n: 80,
                m_pairs: 250,
            },
            seed: 3,
            prob_low: 0.3,
            prob_high: 0.7,
        };
        let path = temp_path("sorted");
        generate_v2_file(&spec, &path).unwrap();
        let (g, _) = load_graph_auto(&path).unwrap();
        for v in g.nodes() {
            let targets: Vec<_> = g.out_edges(v).map(|(_, t)| t).collect();
            assert!(targets.windows(2).all(|w| w[0] < w[1]), "node {v} unsorted");
        }
        std::fs::remove_file(path).ok();
    }
}
