//! Barabási–Albert preferential attachment (power-law degree) topology.
//!
//! Social, co-authorship, AS, and biological networks — i.e. all six of the
//! paper's datasets — have heavy-tailed degree distributions, which is the
//! property that drives BFS frontier growth and hence estimator cost. BA is
//! the standard generator with that property.

use super::{canonicalize, UndirectedEdges};
use crate::ids::NodeId;
use rand::Rng;

/// Grow a BA graph: start from a small clique of `m_attach + 1` nodes, then
/// attach each new node to `m_attach` existing nodes chosen proportionally
/// to degree (implemented with the standard repeated-endpoint trick).
///
/// Final edge count is roughly `n * m_attach`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m_attach: usize, rng: &mut R) -> UndirectedEdges {
    assert!(m_attach >= 1, "attachment degree must be >= 1");
    assert!(
        n > m_attach,
        "need n > m_attach (got n = {n}, m_attach = {m_attach})"
    );

    let mut pairs: UndirectedEdges = Vec::with_capacity(n * m_attach);
    // `endpoints` holds one entry per edge endpoint; sampling uniformly from
    // it is sampling proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);

    // Seed clique over nodes 0..=m_attach.
    for u in 0..=m_attach as u32 {
        for v in (u + 1)..=m_attach as u32 {
            pairs.push((NodeId(u), NodeId(v)));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for new in (m_attach + 1)..n {
        let new = new as u32;
        // Insertion-ordered Vec (m_attach is small) keeps generation
        // deterministic for a fixed RNG, unlike HashSet iteration.
        let mut targets: Vec<u32> = Vec::with_capacity(m_attach);
        while targets.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            pairs.push((NodeId(t), NodeId(new)));
            endpoints.push(t);
            endpoints.push(new);
        }
    }
    canonicalize(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn edge_count_close_to_n_times_m() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let n = 500;
        let m_attach = 3;
        let edges = barabasi_albert(n, m_attach, &mut rng);
        let expected = (n - m_attach - 1) * m_attach + m_attach * (m_attach + 1) / 2;
        assert_eq!(edges.len(), expected);
    }

    #[test]
    fn produces_heavy_tail() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let n = 2000;
        let edges = barabasi_albert(n, 2, &mut rng);
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<usize>() as f64 / n as f64;
        // A power-law hub should dwarf the mean degree.
        assert!(max as f64 > 8.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn all_nodes_covered() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let n = 100;
        let edges = barabasi_albert(n, 2, &mut rng);
        let mut touched = vec![false; n];
        for &(u, v) in &edges {
            touched[u.index()] = true;
            touched[v.index()] = true;
        }
        assert!(touched.iter().all(|&t| t));
    }

    #[test]
    #[should_panic(expected = "n > m_attach")]
    fn rejects_degenerate_sizes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let _ = barabasi_albert(3, 3, &mut rng);
    }
}
