//! Synthetic graph topologies.
//!
//! The paper evaluates on six downloaded real-world networks. Offline we
//! substitute *synthetic analogs*: generators here produce the topology
//! (edge pairs), and [`probmodel`](crate::probmodel) assigns the paper's
//! edge-probability models on top. See DESIGN.md §2 for the substitution
//! rationale.
//!
//! All generators are deterministic given the caller's RNG, so experiments
//! are reproducible end-to-end from a single seed.

mod ba;
mod er;
mod grid;
pub mod stream;
mod ws;

pub use ba::barabasi_albert;
pub use er::erdos_renyi;
pub use grid::grid_lattice;
pub use stream::{generate_v2_file, StreamSpec, StreamStats, StreamTopology};
pub use ws::watts_strogatz;

use crate::ids::NodeId;

/// An undirected topology as a list of distinct unordered pairs
/// `(u, v)` with `u != v`. Build a directed uncertain graph from it with a
/// probability model (see [`crate::probmodel`]).
pub type UndirectedEdges = Vec<(NodeId, NodeId)>;

/// Deduplicate and canonicalize an undirected pair list (u < v, sorted).
pub(crate) fn canonicalize(mut pairs: UndirectedEdges) -> UndirectedEdges {
    for pair in pairs.iter_mut() {
        if pair.0 > pair.1 {
            std::mem::swap(&mut pair.0, &mut pair.1);
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_dedups_and_orients() {
        let pairs = vec![
            (NodeId(2), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(0), NodeId(3)),
        ];
        let canon = canonicalize(pairs);
        assert_eq!(canon, vec![(NodeId(0), NodeId(3)), (NodeId(1), NodeId(2))]);
    }
}
