//! Erdős–Rényi G(n, m) topology.

use super::{canonicalize, UndirectedEdges};
use crate::ids::NodeId;
use rand::Rng;

/// Sample an undirected G(n, m) graph: `m` distinct unordered pairs chosen
/// uniformly at random. Used as a neutral baseline topology in tests and
/// ablations.
///
/// # Panics
/// Panics if `m` exceeds the number of distinct pairs `n(n-1)/2`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> UndirectedEdges {
    assert!(n >= 2 || m == 0, "need at least 2 nodes for any edge");
    let max_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_pairs,
        "requested {m} edges but only {max_pairs} distinct pairs exist"
    );

    // Rejection sampling is fine for the sparse graphs we generate
    // (m << n^2 in every dataset analog).
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut pairs = Vec::with_capacity(m);
    while pairs.len() < m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            pairs.push((NodeId(key.0), NodeId(key.1)));
        }
    }
    canonicalize(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_exactly_m_distinct_edges() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let edges = erdos_renyi(50, 200, &mut rng);
        assert_eq!(edges.len(), 200);
        let mut dedup = edges.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 200);
        for &(u, v) in &edges {
            assert!(u < v);
            assert!(v.index() < 50);
        }
    }

    #[test]
    fn zero_edges_ok() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        assert!(erdos_renyi(10, 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "distinct pairs")]
    fn too_many_edges_panics() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let _ = erdos_renyi(3, 10, &mut rng);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let mut b = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        assert_eq!(erdos_renyi(30, 60, &mut a), erdos_renyi(30, 60, &mut b));
    }
}
