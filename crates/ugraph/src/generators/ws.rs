//! Watts–Strogatz small-world topology.
//!
//! Used for the AS-topology analog: AS graphs have high clustering with a
//! few long-range links, which WS captures (ring lattice + rewiring).

use super::{canonicalize, UndirectedEdges};
use crate::ids::NodeId;
use rand::Rng;

/// Ring lattice over `n` nodes where each node connects to its `k/2`
/// neighbors on each side, with each edge rewired to a random endpoint
/// with probability `beta`.
///
/// # Panics
/// Panics unless `k` is even, `k >= 2`, `n > k`, and `beta` in `[0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> UndirectedEdges {
    assert!(k >= 2 && k % 2 == 0, "k must be even and >= 2 (got {k})");
    assert!(n > k, "need n > k (got n = {n}, k = {k})");
    assert!((0.0..=1.0).contains(&beta), "beta out of range: {beta}");

    let mut seen = std::collections::HashSet::with_capacity(n * k);
    let mut pairs = Vec::with_capacity(n * k / 2);
    let canon = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };

    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            let (mut a, mut b) = canon(u as u32, v as u32);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a random node, avoiding
                // self-loops and duplicates (retry a few times, else keep).
                for _ in 0..16 {
                    let w = rng.gen_range(0..n) as u32;
                    if w as usize == u {
                        continue;
                    }
                    let cand = canon(u as u32, w);
                    if !seen.contains(&cand) {
                        (a, b) = cand;
                        break;
                    }
                }
            }
            if seen.insert((a, b)) {
                pairs.push((NodeId(a), NodeId(b)));
            }
        }
    }
    canonicalize(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let edges = watts_strogatz(10, 4, 0.0, &mut rng);
        assert_eq!(edges.len(), 10 * 4 / 2);
        // Every node has degree k.
        let mut deg = [0usize; 10];
        for &(u, v) in &edges {
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        assert!(deg.iter().all(|&d| d == 4));
    }

    #[test]
    fn rewiring_keeps_edge_budget_close() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let edges = watts_strogatz(200, 6, 0.3, &mut rng);
        let target = 200 * 6 / 2;
        assert!(
            edges.len() >= target * 9 / 10,
            "len {} vs {}",
            edges.len(),
            target
        );
        assert!(edges.len() <= target);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let edges = watts_strogatz(100, 4, 1.0, &mut rng);
        let mut dedup = edges.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), edges.len());
        assert!(edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let _ = watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
