//! 2-D grid lattice topology — a road-network stand-in (the paper cites
//! probabilistic path queries in road networks as a motivating use case).

use super::UndirectedEdges;
use crate::ids::NodeId;

/// `rows x cols` 4-connected grid. Node `(r, c)` has id `r * cols + c`.
pub fn grid_lattice(rows: usize, cols: usize) -> UndirectedEdges {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    let mut pairs = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                pairs.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                pairs.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_formula() {
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        let edges = grid_lattice(3, 4);
        assert_eq!(edges.len(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn single_cell_has_no_edges() {
        assert!(grid_lattice(1, 1).is_empty());
    }

    #[test]
    fn line_grid_is_a_path() {
        let edges = grid_lattice(1, 5);
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], (NodeId(0), NodeId(1)));
        assert_eq!(edges[3], (NodeId(3), NodeId(4)));
    }
}
