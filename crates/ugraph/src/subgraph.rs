//! Subgraph extraction: induced subgraphs and k-hop ego networks.
//!
//! Query-local processing (ProbTree's extracted query graphs, the paper's
//! observation that 2-hop queries touch a small neighborhood) motivates
//! first-class subgraph support: extract the region around the query and
//! run any estimator on it.

use crate::builder::GraphBuilder;
use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use crate::traversal::hop_distances;
use std::collections::HashMap;

/// A subgraph with its mapping back to the parent graph.
pub struct Subgraph {
    /// The extracted graph (dense relabeled node ids).
    pub graph: UncertainGraph,
    /// For each subgraph node id (by index), the original node id.
    pub to_parent: Vec<NodeId>,
    /// Original node id -> subgraph node id.
    pub from_parent: HashMap<NodeId, NodeId>,
}

impl Subgraph {
    /// Translate a parent node into the subgraph, if present.
    pub fn project(&self, parent: NodeId) -> Option<NodeId> {
        self.from_parent.get(&parent).copied()
    }

    /// Translate a subgraph node back to the parent graph.
    pub fn lift(&self, local: NodeId) -> NodeId {
        self.to_parent[local.index()]
    }
}

/// Induced subgraph over `nodes` (duplicates ignored): keeps every edge
/// of the parent whose endpoints are both selected, with its probability.
pub fn induced_subgraph(graph: &UncertainGraph, nodes: &[NodeId]) -> Subgraph {
    let mut to_parent: Vec<NodeId> = Vec::with_capacity(nodes.len());
    let mut from_parent: HashMap<NodeId, NodeId> = HashMap::with_capacity(nodes.len());
    for &v in nodes {
        assert!(graph.contains_node(v), "node {v} out of range");
        if let std::collections::hash_map::Entry::Vacant(e) = from_parent.entry(v) {
            e.insert(NodeId::from_index(to_parent.len()));
            to_parent.push(v);
        }
    }
    let mut b = GraphBuilder::new(to_parent.len());
    for (&parent, &local) in &from_parent {
        for (e, w) in graph.out_edges(parent) {
            if let Some(&local_w) = from_parent.get(&w) {
                b.add_edge_prob(local, local_w, graph.prob(e))
                    .expect("validated");
            }
        }
    }
    Subgraph {
        graph: b.build(),
        to_parent,
        from_parent,
    }
}

/// K-hop ego network around `center`: the induced subgraph over every
/// node within `hops` of `center` (following out-edges).
pub fn ego_network(graph: &UncertainGraph, center: NodeId, hops: usize) -> Subgraph {
    assert!(graph.contains_node(center), "center out of range");
    let dist = hop_distances(graph, center, hops);
    let nodes: Vec<NodeId> = dist
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_some())
        .map(|(i, _)| NodeId::from_index(i))
        .collect();
    induced_subgraph(graph, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EdgeId;

    fn chain(n: usize) -> UncertainGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 0.5)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = chain(5);
        let sub = induced_subgraph(&g, &[NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(sub.graph.num_nodes(), 3);
        // Only 1 -> 2 survives (2 -> 3 and 3 -> 4 touch excluded node 3).
        assert_eq!(sub.graph.num_edges(), 1);
        let local1 = sub.project(NodeId(1)).unwrap();
        let local2 = sub.project(NodeId(2)).unwrap();
        assert!(sub.graph.find_edge(local1, local2).is_some());
        assert!((sub.graph.prob(EdgeId(0)).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mapping_round_trips() {
        let g = chain(4);
        let sub = induced_subgraph(&g, &[NodeId(3), NodeId(0)]);
        for local in sub.graph.nodes() {
            assert_eq!(sub.project(sub.lift(local)), Some(local));
        }
        assert_eq!(sub.project(NodeId(2)), None);
    }

    #[test]
    fn ego_network_radius() {
        let g = chain(6);
        let ego = ego_network(&g, NodeId(1), 2);
        // Nodes 1, 2, 3 (out-edges only).
        assert_eq!(ego.graph.num_nodes(), 3);
        assert_eq!(ego.graph.num_edges(), 2);
        assert!(ego.project(NodeId(4)).is_none());
    }

    #[test]
    fn duplicates_are_ignored() {
        let g = chain(3);
        let sub = induced_subgraph(&g, &[NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(sub.graph.num_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_node_rejected() {
        let g = chain(3);
        let _ = induced_subgraph(&g, &[NodeId(9)]);
    }
}
