//! Edge-probability models from §3.1.2 of the paper.
//!
//! Each of the paper's six datasets pairs a topology with a specific model
//! for deriving edge-existence probabilities:
//!
//! * **LastFM** — inverse out-degree of the edge's source node;
//! * **NetHEPT** — uniform choice from `{0.1, 0.01, 0.001}`;
//! * **AS Topology** — fraction of monthly snapshots containing the link;
//! * **DBLP** — exponential CDF `1 - exp(-c / mu)` of the collaboration
//!   count `c`, with `mu = 5` (DBLP 0.2) and `mu = 20` (DBLP 0.05);
//! * **BioMine** — combination of relevance, informativeness (degree-based),
//!   and confidence.
//!
//! Models that the paper derives from raw data we lack (snapshot history,
//! collaboration counts, curation scores) are *simulated*: we draw the
//! latent quantity from a distribution tuned so the resulting probability
//! summary matches the paper's Table 2 (mean/SD/quartiles). The simulation
//! is documented per variant below and verified by unit tests.

use crate::builder::{DuplicatePolicy, GraphBuilder};
use crate::generators::UndirectedEdges;
use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use crate::probability::Probability;
use rand::Rng;

/// How probabilities are derived from the topology (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub enum ProbModel {
    /// `p(u -> v) = 1 / out_degree(u)` over the bi-directed topology.
    /// (LastFM; Table 2 reports mean 0.29 ± 0.25.)
    InverseOutDegree,
    /// Each *undirected* pair draws one probability uniformly from
    /// `choices`, used for both directions. (NetHEPT: {0.1, 0.01, 0.001}.)
    UniformChoice {
        /// Candidate probabilities, drawn uniformly per undirected pair.
        choices: Vec<f64>,
    },
    /// Simulated snapshot history: each edge has a latent persistence
    /// `q = u1 * u2` (product of two uniforms — right-skewed, mean 0.25,
    /// matching Table 2's 0.23 ± 0.20) observed over `snapshots` Bernoulli
    /// trials; the probability is the observed ratio (AS Topology).
    SnapshotRatio {
        /// Number of simulated snapshots.
        snapshots: u32,
    },
    /// `p = 1 - exp(-c / mu)` with simulated collaboration count
    /// `c ~ 1 + Geometric(0.5)` (mean 2 — DBLP collaboration counts are
    /// heavy-tailed with a small mean). `mu = 5` reproduces DBLP 0.2's
    /// 0.33 ± 0.18; `mu = 20` reproduces DBLP 0.05's 0.11 ± 0.09.
    ExponentialCollab {
        /// Exponential-CDF scale; larger `mu` yields smaller probabilities.
        mu: f64,
    },
    /// BioMine-style combination of three criteria: relevance `r ~ U(0.2,1)`,
    /// confidence `c ~ U(0.2,1)`, and degree-based informativeness
    /// `i = 1 / ln(e + deg(u) + deg(v))`, combined as `p = (r * c)^(1/2) * i`
    /// and clamped into `(0, 1]`. Tuned to Table 2's 0.27 ± 0.21. Directed.
    BioMine,
}

/// Whether the topology is interpreted as bi-directed (both directions
/// added) or directed (each pair becomes one directed edge, orientation
/// chosen uniformly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Add `u -> v` and `v -> u` (social/co-authorship datasets).
    Bidirected,
    /// Add a single direction per pair, chosen by the RNG (BioMine-style
    /// heterogeneous directed links).
    RandomOriented,
}

impl ProbModel {
    /// Materialize an [`UncertainGraph`] from an undirected topology.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        num_nodes: usize,
        pairs: &UndirectedEdges,
        direction: Direction,
        rng: &mut R,
    ) -> UncertainGraph {
        // Degree of the *directed* topology is needed for InverseOutDegree
        // and BioMine, so first expand pairs into directed arcs.
        let mut arcs: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs.len() * 2);
        match direction {
            Direction::Bidirected => {
                for &(u, v) in pairs {
                    arcs.push((u, v));
                    arcs.push((v, u));
                }
            }
            Direction::RandomOriented => {
                for &(u, v) in pairs {
                    if rng.gen::<bool>() {
                        arcs.push((u, v));
                    } else {
                        arcs.push((v, u));
                    }
                }
            }
        }

        let mut out_deg = vec![0usize; num_nodes];
        let mut total_deg = vec![0usize; num_nodes];
        for &(u, v) in &arcs {
            out_deg[u.index()] += 1;
            total_deg[u.index()] += 1;
            total_deg[v.index()] += 1;
        }

        let mut builder = GraphBuilder::new(num_nodes)
            .with_edge_capacity(arcs.len())
            .duplicate_policy(DuplicatePolicy::CombineOr);

        match self {
            ProbModel::InverseOutDegree => {
                for &(u, v) in &arcs {
                    let p = 1.0 / out_deg[u.index()].max(1) as f64;
                    builder
                        .add_edge_prob(u, v, Probability::clamped(p))
                        .expect("validated");
                }
            }
            ProbModel::UniformChoice { choices } => {
                assert!(
                    !choices.is_empty(),
                    "UniformChoice needs at least one probability"
                );
                // One draw per undirected pair, shared by both directions.
                let mut pair_prob = std::collections::HashMap::with_capacity(pairs.len());
                for &(u, v) in pairs {
                    let p = choices[rng.gen_range(0..choices.len())];
                    pair_prob.insert((u.min(v), u.max(v)), p);
                }
                for &(u, v) in &arcs {
                    let p = pair_prob[&(u.min(v), u.max(v))];
                    builder
                        .add_edge_prob(u, v, Probability::clamped(p))
                        .expect("validated");
                }
            }
            ProbModel::SnapshotRatio { snapshots } => {
                assert!(*snapshots > 0, "need at least one snapshot");
                let mut pair_prob = std::collections::HashMap::with_capacity(pairs.len());
                for &(u, v) in pairs {
                    let latent = rng.gen::<f64>() * rng.gen::<f64>();
                    let mut present = 0u32;
                    for _ in 0..*snapshots {
                        if rng.gen::<f64>() < latent {
                            present += 1;
                        }
                    }
                    // An edge observed zero times would not be in the graph
                    // at all; floor at one observation.
                    let ratio = present.max(1) as f64 / *snapshots as f64;
                    pair_prob.insert((u.min(v), u.max(v)), ratio);
                }
                for &(u, v) in &arcs {
                    let p = pair_prob[&(u.min(v), u.max(v))];
                    builder
                        .add_edge_prob(u, v, Probability::clamped(p))
                        .expect("validated");
                }
            }
            ProbModel::ExponentialCollab { mu } => {
                assert!(*mu > 0.0, "mu must be positive");
                let mut pair_prob = std::collections::HashMap::with_capacity(pairs.len());
                for &(u, v) in pairs {
                    // c ~ 1 + Geometric(0.5): P(c = k) = 0.5^k, k >= 1.
                    let mut c = 1u32;
                    while rng.gen::<bool>() && c < 64 {
                        c += 1;
                    }
                    let p = 1.0 - (-(c as f64) / mu).exp();
                    pair_prob.insert((u.min(v), u.max(v)), p);
                }
                for &(u, v) in &arcs {
                    let p = pair_prob[&(u.min(v), u.max(v))];
                    builder
                        .add_edge_prob(u, v, Probability::clamped(p))
                        .expect("validated");
                }
            }
            ProbModel::BioMine => {
                for &(u, v) in &arcs {
                    let relevance = 0.2 + 0.8 * rng.gen::<f64>();
                    let confidence = 0.2 + 0.8 * rng.gen::<f64>();
                    let deg = (total_deg[u.index()] + total_deg[v.index()]) as f64;
                    let informativeness = 1.0 / (std::f64::consts::E + deg).ln();
                    let p = (relevance * confidence).sqrt() * (2.0 * informativeness);
                    builder
                        .add_edge_prob(u, v, Probability::clamped(p))
                        .expect("validated");
                }
            }
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;
    use crate::stats::Summary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn topology(seed: u64) -> (usize, UndirectedEdges) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 2000;
        (n, barabasi_albert(n, 3, &mut rng))
    }

    fn prob_summary(g: &UncertainGraph) -> Summary {
        let probs: Vec<f64> = g.edges().map(|(_, _, _, p)| p.value()).collect();
        Summary::of(&probs).unwrap()
    }

    #[test]
    fn inverse_out_degree_matches_definition() {
        let (n, pairs) = topology(1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = ProbModel::InverseOutDegree.apply(n, &pairs, Direction::Bidirected, &mut rng);
        for (_, u, _, p) in g.edges() {
            let expect = 1.0 / g.out_degree(u) as f64;
            assert!((p.value() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_choice_only_uses_choices() {
        let (n, pairs) = topology(3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let choices = vec![0.1, 0.01, 0.001];
        let g = ProbModel::UniformChoice {
            choices: choices.clone(),
        }
        .apply(n, &pairs, Direction::Bidirected, &mut rng);
        for (_, _, _, p) in g.edges() {
            assert!(choices.iter().any(|&c| (p.value() - c).abs() < 1e-12));
        }
        // NetHEPT's Table 2 mean is 0.04 ± 0.04.
        let s = prob_summary(&g);
        assert!((s.mean - 0.037).abs() < 0.01, "mean {}", s.mean);
    }

    #[test]
    fn uniform_choice_is_symmetric_per_pair() {
        let (n, pairs) = topology(5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = ProbModel::UniformChoice {
            choices: vec![0.1, 0.01, 0.001],
        }
        .apply(n, &pairs, Direction::Bidirected, &mut rng);
        for (_, u, v, p) in g.edges() {
            let back = g.find_edge(v, u).expect("bidirected");
            assert_eq!(g.prob(back).value(), p.value());
        }
    }

    #[test]
    fn snapshot_ratio_matches_as_topology_band() {
        let (n, pairs) = topology(7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = ProbModel::SnapshotRatio { snapshots: 120 }.apply(
            n,
            &pairs,
            Direction::Bidirected,
            &mut rng,
        );
        // Table 2: 0.23 ± 0.20.
        let s = prob_summary(&g);
        assert!((s.mean - 0.25).abs() < 0.05, "mean {}", s.mean);
        assert!((s.sd - 0.20).abs() < 0.06, "sd {}", s.sd);
    }

    #[test]
    fn exponential_collab_mu5_matches_dblp02() {
        let (n, pairs) = topology(9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = ProbModel::ExponentialCollab { mu: 5.0 }.apply(
            n,
            &pairs,
            Direction::Bidirected,
            &mut rng,
        );
        // Table 2: DBLP 0.2 is 0.33 ± 0.18.
        let s = prob_summary(&g);
        assert!((s.mean - 0.33).abs() < 0.05, "mean {}", s.mean);
    }

    #[test]
    fn exponential_collab_mu20_matches_dblp005() {
        let (n, pairs) = topology(11);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = ProbModel::ExponentialCollab { mu: 20.0 }.apply(
            n,
            &pairs,
            Direction::Bidirected,
            &mut rng,
        );
        // Table 2: DBLP 0.05 is 0.11 ± 0.09.
        let s = prob_summary(&g);
        assert!((s.mean - 0.11).abs() < 0.04, "mean {}", s.mean);
    }

    #[test]
    fn biomine_matches_band_and_is_directed() {
        let (n, pairs) = topology(13);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let g = ProbModel::BioMine.apply(n, &pairs, Direction::RandomOriented, &mut rng);
        // One directed arc per undirected pair.
        assert_eq!(g.num_edges(), pairs.len());
        // Table 2: BioMine is 0.27 ± 0.21 — accept a generous band.
        let s = prob_summary(&g);
        assert!((s.mean - 0.27).abs() < 0.12, "mean {}", s.mean);
    }

    #[test]
    fn all_probabilities_valid() {
        let (n, pairs) = topology(15);
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        for model in [
            ProbModel::InverseOutDegree,
            ProbModel::UniformChoice {
                choices: vec![0.1, 0.01, 0.001],
            },
            ProbModel::SnapshotRatio { snapshots: 60 },
            ProbModel::ExponentialCollab { mu: 5.0 },
            ProbModel::BioMine,
        ] {
            let g = model.apply(n, &pairs, Direction::Bidirected, &mut rng);
            for (_, _, _, p) in g.edges() {
                assert!(p.value() > 0.0 && p.value() <= 1.0);
            }
        }
    }
}
