//! Mutable construction of [`UncertainGraph`]s.

use crate::error::GraphError;
use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use crate::probability::Probability;

/// What to do when the same directed edge `(u, v)` is added twice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Reject the build with [`GraphError::DuplicateEdge`].
    #[default]
    Error,
    /// Keep the first probability seen.
    KeepFirst,
    /// Combine as independent parallel edges: `1 - (1-p1)(1-p2)`.
    ///
    /// This matches how the reliability literature collapses multi-edges
    /// (e.g. repeated AS-topology observations, parallel ProbTree paths).
    CombineOr,
}

/// Builder for [`UncertainGraph`]. Collects edges, validates them, then
/// sorts into CSR order on [`build`](GraphBuilder::build).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, Probability)>,
    allow_self_loops: bool,
    duplicate_policy: DuplicatePolicy,
}

impl GraphBuilder {
    /// A builder for a graph over node ids `0..num_nodes`.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            allow_self_loops: false,
            duplicate_policy: DuplicatePolicy::default(),
        }
    }

    /// Pre-allocate space for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Permit self-loops (default: rejected; a self-loop never affects s-t
    /// reliability but would waste sampling work in every estimator).
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Set the duplicate-edge policy (default: [`DuplicatePolicy::Error`]).
    pub fn duplicate_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.duplicate_policy = policy;
        self
    }

    /// Number of edges added so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed edge `u -> v` with existence probability `p`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, p: f64) -> Result<(), GraphError> {
        let p = Probability::new(p)?;
        self.add_edge_prob(u, v, p)
    }

    /// Add a directed edge with an already-validated probability.
    pub fn add_edge_prob(
        &mut self,
        u: NodeId,
        v: NodeId,
        p: Probability,
    ) -> Result<(), GraphError> {
        if u.index() >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                num_nodes: self.num_nodes,
            });
        }
        if v.index() >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes,
            });
        }
        if u == v && !self.allow_self_loops {
            return Err(GraphError::SelfLoop(u));
        }
        self.edges.push((u, v, p));
        Ok(())
    }

    /// Add both `u -> v` and `v -> u` with the same probability — the
    /// paper's construction for the bi-directed social/co-authorship
    /// datasets (LastFM, NetHEPT, DBLP).
    pub fn add_bidirected(&mut self, u: NodeId, v: NodeId, p: f64) -> Result<(), GraphError> {
        let p = Probability::new(p)?;
        self.add_edge_prob(u, v, p)?;
        self.add_edge_prob(v, u, p)
    }

    /// Finalize into an immutable CSR graph.
    pub fn build(mut self) -> UncertainGraph {
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        match self.duplicate_policy {
            DuplicatePolicy::Error => {
                // Validation happens in try_build; build() panics on misuse.
                if let Some(w) = self
                    .edges
                    .windows(2)
                    .find(|w| (w[0].0, w[0].1) == (w[1].0, w[1].1))
                {
                    panic!("duplicate directed edge {} -> {}", w[0].0, w[0].1);
                }
            }
            DuplicatePolicy::KeepFirst => {
                self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));
            }
            DuplicatePolicy::CombineOr => {
                let mut merged: Vec<(NodeId, NodeId, Probability)> =
                    Vec::with_capacity(self.edges.len());
                for &(u, v, p) in &self.edges {
                    match merged.last_mut() {
                        Some(last) if last.0 == u && last.1 == v => {
                            last.2 = last.2.or_independent(p);
                        }
                        _ => merged.push((u, v, p)),
                    }
                }
                self.edges = merged;
            }
        }
        UncertainGraph::from_sorted_edges(self.num_nodes, &self.edges)
    }

    /// Finalize, returning an error (instead of panicking) on duplicates
    /// under [`DuplicatePolicy::Error`].
    pub fn try_build(mut self) -> Result<UncertainGraph, GraphError> {
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        if self.duplicate_policy == DuplicatePolicy::Error {
            if let Some(w) = self
                .edges
                .windows(2)
                .find(|w| (w[0].0, w[0].1) == (w[1].0, w[1].1))
            {
                return Err(GraphError::DuplicateEdge {
                    from: w[0].0,
                    to: w[0].1,
                });
            }
        }
        Ok(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_nodes() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(0), NodeId(5), 0.5).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn rejects_invalid_probability() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(NodeId(0), NodeId(1), 0.0).is_err());
        assert!(b.add_edge(NodeId(0), NodeId(1), 1.5).is_err());
    }

    #[test]
    fn rejects_self_loops_by_default() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(NodeId(1), NodeId(1), 0.5),
            Err(GraphError::SelfLoop(_))
        ));
        let mut b = GraphBuilder::new(2).allow_self_loops(true);
        assert!(b.add_edge(NodeId(1), NodeId(1), 0.5).is_ok());
    }

    #[test]
    fn duplicate_error_policy_fails_try_build() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.6).unwrap();
        assert!(matches!(
            b.try_build(),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn duplicate_keep_first_keeps_first() {
        let mut b = GraphBuilder::new(2).duplicate_policy(DuplicatePolicy::KeepFirst);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.prob(crate::ids::EdgeId(0)).value(), 0.5);
    }

    #[test]
    fn duplicate_combine_or_merges_independently() {
        let mut b = GraphBuilder::new(2).duplicate_policy(DuplicatePolicy::CombineOr);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!((g.prob(crate::ids::EdgeId(0)).value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bidirected_adds_both_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_bidirected(NodeId(0), NodeId(2), 0.4).unwrap();
        let g = b.build();
        assert!(g.find_edge(NodeId(0), NodeId(2)).is_some());
        assert!(g.find_edge(NodeId(2), NodeId(0)).is_some());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
