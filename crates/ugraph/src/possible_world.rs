//! Possible-world semantics (§2.1 of the paper).
//!
//! An uncertain graph with `m` edges defines `2^m` possible deterministic
//! worlds; world `G` materializes edge subset `E_G` with probability
//! `Pr(G) = prod_{e in E_G} P(e) * prod_{e notin E_G} (1 - P(e))` (Eq. 1).
//! This module provides an explicit world representation (an edge bitmask)
//! plus sampling and enumeration helpers. Enumeration powers the exact
//! oracle used in tests; sampling powers plain MC.

use crate::graph::UncertainGraph;
use crate::ids::{EdgeId, NodeId};
use crate::traversal::{bfs_reaches, BfsWorkspace};
use rand::Rng;

/// One possible world: a bitmask over edge ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PossibleWorld {
    bits: Vec<u64>,
    num_edges: usize,
}

impl PossibleWorld {
    /// An empty world (no edges present) for a graph with `m` edges.
    pub fn empty(m: usize) -> Self {
        PossibleWorld {
            bits: vec![0; m.div_ceil(64)],
            num_edges: m,
        }
    }

    /// Sample a world edge-by-edge with independent probabilities (Eq. 1).
    pub fn sample<R: Rng + ?Sized>(graph: &UncertainGraph, rng: &mut R) -> Self {
        let mut w = Self::empty(graph.num_edges());
        for (e, _, _, p) in graph.edges() {
            if rng.gen::<f64>() < p.value() {
                w.set(e, true);
            }
        }
        w
    }

    /// Whether edge `e` is present in this world.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        let i = e.index();
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set the presence of edge `e`.
    #[inline]
    pub fn set(&mut self, e: EdgeId, present: bool) {
        let i = e.index();
        if present {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of present edges.
    pub fn num_present(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Generating probability `Pr(G)` of this world under `graph` (Eq. 1).
    pub fn probability(&self, graph: &UncertainGraph) -> f64 {
        let mut pr = 1.0;
        for (e, _, _, p) in graph.edges() {
            pr *= if self.contains(e) {
                p.value()
            } else {
                p.complement()
            };
        }
        pr
    }

    /// Indicator `I_G(s, t)`: is `t` reachable from `s` in this world?
    pub fn reaches(&self, graph: &UncertainGraph, s: NodeId, t: NodeId) -> bool {
        let mut ws = BfsWorkspace::new(graph.num_nodes());
        bfs_reaches(graph, s, t, &mut ws, |e| self.contains(e))
    }

    /// Total number of edges (present or absent) the mask covers.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }
}

/// Iterate over *all* `2^m` worlds of a small graph. Panics if `m > 26`
/// (the exact oracle is for test-scale graphs only).
pub fn enumerate_worlds(graph: &UncertainGraph) -> impl Iterator<Item = PossibleWorld> + '_ {
    let m = graph.num_edges();
    assert!(
        m <= 26,
        "world enumeration is exponential; refusing m = {m} > 26"
    );
    (0u64..(1u64 << m)).map(move |mask| {
        let mut w = PossibleWorld::empty(m);
        for i in 0..m {
            if (mask >> i) & 1 == 1 {
                w.set(EdgeId::from_index(i), true);
            }
        }
        w
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::SeedableRng;

    fn two_path() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        b.build()
    }

    #[test]
    fn bitmask_set_and_get() {
        let mut w = PossibleWorld::empty(100);
        assert!(!w.contains(EdgeId(70)));
        w.set(EdgeId(70), true);
        assert!(w.contains(EdgeId(70)));
        w.set(EdgeId(70), false);
        assert!(!w.contains(EdgeId(70)));
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let g = two_path();
        let total: f64 = enumerate_worlds(&g).map(|w| w.probability(&g)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reachability_requires_both_chain_edges() {
        let g = two_path();
        let mut w = PossibleWorld::empty(2);
        assert!(!w.reaches(&g, NodeId(0), NodeId(2)));
        w.set(EdgeId(0), true);
        assert!(!w.reaches(&g, NodeId(0), NodeId(2)));
        w.set(EdgeId(1), true);
        assert!(w.reaches(&g, NodeId(0), NodeId(2)));
    }

    #[test]
    fn sampling_matches_edge_probability_in_expectation() {
        let g = two_path();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let trials = 20_000;
        let mut count = 0usize;
        for _ in 0..trials {
            let w = PossibleWorld::sample(&g, &mut rng);
            if w.contains(EdgeId(0)) {
                count += 1;
            }
        }
        let freq = count as f64 / trials as f64;
        assert!((freq - 0.5).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    fn num_present_counts_bits() {
        let mut w = PossibleWorld::empty(130);
        w.set(EdgeId(0), true);
        w.set(EdgeId(64), true);
        w.set(EdgeId(129), true);
        assert_eq!(w.num_present(), 3);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn enumeration_refuses_large_graphs() {
        let mut b = GraphBuilder::new(30);
        for i in 0..27 {
            b.add_edge(NodeId(i), NodeId(i + 1), 0.5).unwrap();
        }
        let g = b.build();
        let _ = enumerate_worlds(&g).count();
    }
}
