//! Batched edge-probability updates for dynamic uncertain graphs.
//!
//! Real deployments of reliability queries face drifting edge
//! probabilities (link quality telemetry, influence re-estimation,
//! failure statistics). An [`EdgeUpdate`] names one edge of an existing
//! graph and its new existence probability; a batch of them feeds
//! [`UncertainGraph::with_updated_probs`](crate::UncertainGraph::with_updated_probs),
//! which snapshots a new epoch of the graph sharing the immutable CSR
//! topology, and the estimators' incremental index-maintenance hooks.
//!
//! Topology changes (edge insert/delete) are a different, rarer beast and
//! go through the full-rebuild path
//! [`UncertainGraph::with_edits`](crate::UncertainGraph::with_edits).

use crate::ids::EdgeId;
use crate::probability::{Probability, ProbabilityError};

/// One edge-probability update: `edge`'s existence probability becomes
/// `prob` in the next epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeUpdate {
    /// The edge to update (an id valid for the graph being updated).
    pub edge: EdgeId,
    /// The new existence probability.
    pub prob: Probability,
}

impl EdgeUpdate {
    /// Build an update from a raw probability, validating it into `(0, 1]`.
    pub fn new(edge: EdgeId, prob: f64) -> Result<Self, ProbabilityError> {
        Ok(EdgeUpdate {
            edge,
            prob: Probability::new(prob)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_probability_range() {
        assert!(EdgeUpdate::new(EdgeId(0), 0.5).is_ok());
        assert!(EdgeUpdate::new(EdgeId(0), 0.0).is_err());
        assert!(EdgeUpdate::new(EdgeId(0), 1.5).is_err());
        assert!(EdgeUpdate::new(EdgeId(0), f64::NAN).is_err());
    }
}
