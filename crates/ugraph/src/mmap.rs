//! Minimal read-only memory mapping, hand-rolled over raw `mmap(2)` /
//! `munmap(2)` bindings.
//!
//! The container builds without crates.io, so instead of the `memmap2`
//! crate this module declares the two syscalls it needs via `extern "C"`
//! and wraps them in an RAII [`Mmap`]. Only what the v2 graph loader
//! requires is implemented: map a whole file read-only and expose it as
//! a `&[u8]` until drop.
//!
//! On non-Unix targets [`Mmap::map_file`] returns
//! [`std::io::ErrorKind::Unsupported`]; callers fall back to a heap
//! read (see [`crate::format::load_graph_v2`]).

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    /// `PROT_READ` — pages may be read.
    pub const PROT_READ: c_int = 0x1;
    /// `MAP_PRIVATE` — copy-on-write private mapping (we never write).
    pub const MAP_PRIVATE: c_int = 0x2;
    /// `MADV_RANDOM` — expect random page references; disable readahead.
    pub const MADV_RANDOM: c_int = 1;
    /// `MADV_WILLNEED` — expect access soon; start readahead now.
    pub const MADV_WILLNEED: c_int = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

/// Access-pattern hints forwarded to `madvise(2)`.
///
/// Hints are best-effort: the kernel may ignore them, and a failed
/// `madvise` never affects the validity of the mapping itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// The mapping will be read soon — kick off readahead so a
    /// sequential scan (e.g. checksum validation) hits warm pages.
    WillNeed,
    /// Accesses will be random — stop readahead so point queries don't
    /// drag neighbouring pages into memory.
    Random,
}

/// A read-only memory mapping of an entire file.
///
/// The mapping is `MAP_PRIVATE | PROT_READ`: the kernel serves pages
/// straight from the page cache and the process never dirties them, so
/// resident memory for the mapped graph is reclaimable file-backed
/// pages, not anonymous heap. Addresses returned by `mmap(2)` are
/// page-aligned (≥ 4096), which over-satisfies the v2 format's 64-byte
/// section alignment.
#[derive(Debug)]
pub struct Mmap {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// SAFETY: the mapping is immutable for its whole lifetime (PROT_READ,
// never handed out mutably) and owned until `Drop`, so sharing the
// pointer across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] for an empty file
    /// (Linux rejects zero-length mappings) and with the raw OS error
    /// if the syscall itself fails.
    #[cfg(unix)]
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        // SAFETY: fd is valid for the duration of the call; we request a
        // fresh mapping (addr = null) and check for MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        let ptr = std::ptr::NonNull::new(ptr as *mut u8)
            .ok_or_else(|| io::Error::other("mmap returned null"))?;
        Ok(Mmap { ptr, len })
    }

    /// Stub for non-Unix targets: always `Unsupported`, so the caller
    /// takes the heap load path.
    #[cfg(not(unix))]
    pub fn map_file(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is not available on this platform",
        ))
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mapped length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mapping is empty (never the case for a successful map).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the mapping.
    #[inline]
    pub(crate) fn as_ptr(&self) -> *const u8 {
        self.ptr.as_ptr()
    }

    /// Hint the expected access pattern for the whole mapping.
    ///
    /// Returns the raw OS error when the syscall rejects the hint;
    /// callers treat that as advisory and carry on (the mapping stays
    /// fully usable either way).
    #[cfg(unix)]
    pub fn advise(&self, advice: Advice) -> io::Result<()> {
        let advice = match advice {
            Advice::WillNeed => sys::MADV_WILLNEED,
            Advice::Random => sys::MADV_RANDOM,
        };
        // SAFETY: ptr/len describe a live mapping owned by self;
        // madvise does not invalidate or move it.
        let rc = unsafe { sys::madvise(self.ptr.as_ptr().cast(), self.len, advice) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// No-op stub for non-Unix targets (hints have nowhere to go).
    #[cfg(not(unix))]
    pub fn advise(&self, _advice: Advice) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once. munmap failure on a valid mapping is unreachable;
        // there is nothing useful to do with the error in drop either way.
        unsafe {
            let _ = sys::munmap(self.ptr.as_ptr().cast(), self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("relcomp_mmap_{}_{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    #[cfg(unix)]
    fn maps_file_contents() {
        let path = temp_file("basic", b"hello mapping");
        let file = File::open(&path).unwrap();
        let map = Mmap::map_file(&file).unwrap();
        assert_eq!(map.as_slice(), b"hello mapping");
        assert_eq!(map.len(), 13);
        assert!(!map.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[cfg(unix)]
    fn rejects_empty_file() {
        let path = temp_file("empty", b"");
        let file = File::open(&path).unwrap();
        assert!(Mmap::map_file(&file).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[cfg(unix)]
    fn advise_accepts_both_hints() {
        let path = temp_file("advise", &[7u8; 8192]);
        let file = File::open(&path).unwrap();
        let map = Mmap::map_file(&file).unwrap();
        map.advise(Advice::WillNeed).unwrap();
        map.advise(Advice::Random).unwrap();
        // Hints must not disturb the mapped contents.
        assert!(map.as_slice().iter().all(|&b| b == 7));
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[cfg(unix)]
    fn mapping_is_page_aligned() {
        let path = temp_file("align", &[0u8; 4096]);
        let file = File::open(&path).unwrap();
        let map = Mmap::map_file(&file).unwrap();
        assert_eq!(map.as_ptr() as usize % 4096, 0);
        std::fs::remove_file(path).ok();
    }
}
