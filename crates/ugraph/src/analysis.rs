//! Structural analysis of uncertain graphs: degree distributions, weakly
//! connected components, and sampled hop statistics.
//!
//! Used by the dataset-analog validation (the paper's datasets are
//! heavy-tailed small-world networks; our generators must be too) and by
//! the CLI's `stats` command.

use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use crate::stats::Summary;
use rand::Rng;

/// Degree statistics for one direction.
#[derive(Clone, Debug)]
pub struct DegreeStats {
    /// Mean / SD / quartiles of the degree distribution.
    pub summary: Summary,
    /// Maximum degree.
    pub max: usize,
    /// Number of degree-zero nodes.
    pub zeros: usize,
}

/// Compute out- or in-degree statistics.
pub fn degree_stats(graph: &UncertainGraph, out: bool) -> DegreeStats {
    let degrees: Vec<f64> = graph
        .nodes()
        .map(|v| if out { graph.out_degree(v) } else { graph.in_degree(v) } as f64)
        .collect();
    let max = degrees.iter().cloned().fold(0.0, f64::max) as usize;
    let zeros = degrees.iter().filter(|&&d| d == 0.0).count();
    DegreeStats {
        summary: Summary::of(&degrees).expect("graph has nodes"),
        max,
        zeros,
    }
}

/// Weakly connected components (direction ignored). Returns per-node
/// component ids (dense, 0-based) and the component count.
pub fn weakly_connected_components(graph: &UncertainGraph) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        stack.push(NodeId::from_index(start));
        while let Some(v) = stack.pop() {
            for (_, w) in graph.out_edges(v) {
                if comp[w.index()] == u32::MAX {
                    comp[w.index()] = next;
                    stack.push(w);
                }
            }
            for (_, u) in graph.in_edges(v) {
                if comp[u.index()] == u32::MAX {
                    comp[u.index()] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Size of the largest weakly connected component.
pub fn largest_component_size(graph: &UncertainGraph) -> usize {
    let (comp, count) = weakly_connected_components(graph);
    let mut sizes = vec![0usize; count];
    for c in comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Sampled hop-distance summary: BFS (over all edges, probabilities
/// ignored) from `samples` random sources; returns the summary of finite
/// distances and the largest observed distance (an effective-diameter
/// style estimate — the paper bounds recursion depth by the diameter).
pub fn sampled_hop_stats<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    samples: usize,
    rng: &mut R,
) -> Option<(Summary, u32)> {
    if graph.num_nodes() == 0 || samples == 0 {
        return None;
    }
    let mut finite = Vec::new();
    let mut max = 0u32;
    for _ in 0..samples {
        let s = NodeId(rng.gen_range(0..graph.num_nodes() as u32));
        let dist = crate::traversal::hop_distances(graph, s, graph.num_nodes());
        for d in dist.into_iter().flatten() {
            if d > 0 {
                finite.push(d as f64);
                max = max.max(d);
            }
        }
    }
    Summary::of(&finite).map(|s| (s, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::datasets::Dataset;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn two_islands() -> UncertainGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(3), NodeId(4), 0.5).unwrap();
        b.build()
    }

    #[test]
    fn component_labeling() {
        let g = two_islands();
        let (comp, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn degree_stats_directions() {
        let g = two_islands();
        let out = degree_stats(&g, true);
        let inn = degree_stats(&g, false);
        assert_eq!(out.max, 1);
        assert_eq!(out.zeros, 2); // nodes 2 and 4
        assert_eq!(inn.zeros, 2); // nodes 0 and 3
        assert!((out.summary.mean - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ba_analogs_have_hubs_and_one_component() {
        let g = Dataset::LastFm.generate_with_scale(0.1, 5);
        let out = degree_stats(&g, true);
        assert!(out.max as f64 > 5.0 * out.summary.mean);
        // BA growth keeps the graph connected.
        assert_eq!(largest_component_size(&g), g.num_nodes());
    }

    #[test]
    fn hop_stats_are_small_world() {
        let g = Dataset::LastFm.generate_with_scale(0.1, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (summary, max) = sampled_hop_stats(&g, 3, &mut rng).unwrap();
        assert!(summary.mean < 10.0, "mean hops {}", summary.mean);
        assert!(max < 25, "max hops {max}");
    }

    #[test]
    fn empty_cases() {
        let g = GraphBuilder::new(0).build();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(sampled_hop_stats(&g, 2, &mut rng).is_none());
    }
}
