//! Text serialization of uncertain graphs.
//!
//! Format (same shape as the paper's released datasets): a header line
//! `n m`, then one line per directed edge: `from to prob`, whitespace
//! separated. Lines starting with `#` are comments.
//!
//! ```text
//! # toy graph
//! 3 2
//! 0 1 0.5
//! 1 2 0.25
//! ```

use crate::builder::{DuplicatePolicy, GraphBuilder};
use crate::error::GraphError;
use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write `graph` in edge-list format.
pub fn write_graph<W: Write>(graph: &UncertainGraph, out: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{} {}", graph.num_nodes(), graph.num_edges())?;
    for (_, u, v, p) in graph.edges() {
        writeln!(w, "{} {} {}", u, v, p)?;
    }
    w.flush()?;
    Ok(())
}

/// Write `graph` to a file path.
pub fn save_graph<P: AsRef<Path>>(graph: &UncertainGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_graph(graph, file)
}

/// Read a graph in edge-list format. Duplicate edges are rejected.
pub fn read_graph<R: Read>(input: R) -> Result<UncertainGraph, GraphError> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines().enumerate();

    // Header: first non-comment, non-blank line.
    let (n, m, mut line_no) = loop {
        let (idx, line) = lines.next().ok_or_else(|| GraphError::Parse {
            line: 0,
            message: "missing header line `n m`".into(),
        })?;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let n: usize = parse_field(&mut parts, idx + 1, "node count")?;
        let m: usize = parse_field(&mut parts, idx + 1, "edge count")?;
        break (n, m, idx + 1);
    };

    let mut builder = GraphBuilder::new(n).with_edge_capacity(m);
    let mut seen = 0usize;
    for (idx, line) in lines {
        line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u32 = parse_field(&mut parts, line_no, "source node")?;
        let v: u32 = parse_field(&mut parts, line_no, "target node")?;
        let p: f64 = parse_field(&mut parts, line_no, "probability")?;
        builder.add_edge(NodeId(u), NodeId(v), p)?;
        seen += 1;
    }
    if seen != m {
        return Err(GraphError::Parse {
            line: line_no,
            message: format!("header declared {m} edges but file contains {seen}"),
        });
    }
    builder.try_build()
}

/// Read a graph from a file path.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_graph(file)
}

/// Read a graph, collapsing duplicate edges with `1-(1-p1)(1-p2)` instead
/// of rejecting them (useful for raw multi-edge dumps).
pub fn read_graph_combine<R: Read>(input: R) -> Result<UncertainGraph, GraphError> {
    // Parse through the strict reader first for format errors, but with a
    // permissive builder. Simplest correct approach: re-implement the loop
    // with the CombineOr policy.
    let reader = BufReader::new(input);
    let mut header: Option<(usize, usize)> = None;
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match (&mut header, &mut builder) {
            (None, _) => {
                let n: usize = parse_field(&mut parts, idx + 1, "node count")?;
                let m: usize = parse_field(&mut parts, idx + 1, "edge count")?;
                header = Some((n, m));
                builder = Some(
                    GraphBuilder::new(n)
                        .with_edge_capacity(m)
                        .duplicate_policy(DuplicatePolicy::CombineOr),
                );
            }
            (Some(_), Some(b)) => {
                let u: u32 = parse_field(&mut parts, idx + 1, "source node")?;
                let v: u32 = parse_field(&mut parts, idx + 1, "target node")?;
                let p: f64 = parse_field(&mut parts, idx + 1, "probability")?;
                b.add_edge(NodeId(u), NodeId(v), p)?;
            }
            _ => unreachable!(),
        }
    }
    builder
        .ok_or_else(|| GraphError::Parse {
            line: 0,
            message: "missing header line `n m`".into(),
        })
        .map(|b| b.build())
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let raw = parts.next().ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    raw.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("cannot parse {what} from `{raw}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.25).unwrap();
        b.build()
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (e, u, v, p) in g.edges() {
            let e2 = g2.find_edge(u, v).expect("edge survives round trip");
            assert_eq!(e2, e);
            assert!((g2.prob(e2).value() - p.value()).abs() < 1e-15);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n3 1\n# another\n0 2 0.75\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let err = read_graph("".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn edge_count_mismatch_is_error() {
        let text = "3 2\n0 1 0.5\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 2 edges"));
    }

    #[test]
    fn malformed_probability_is_error() {
        let text = "3 1\n0 1 banana\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("probability"));
    }

    #[test]
    fn out_of_range_probability_is_error() {
        let text = "3 1\n0 1 1.5\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn combine_reader_merges_duplicates() {
        let text = "2 2\n0 1 0.5\n0 1 0.5\n";
        let g = read_graph_combine(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!((g.prob(crate::ids::EdgeId(0)).value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn file_round_trip() {
        let g = toy();
        let dir = std::env::temp_dir().join("relcomp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.ug");
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
    }
}

// ---------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------

/// Magic prefix of the binary graph format (version 1).
pub const BINARY_MAGIC: &[u8; 8] = b"UGRAPHB1";

/// Write `graph` in the compact binary format: an 8-byte magic, `n` and
/// `m` as little-endian `u64`, then one `(u32 from, u32 to, f64 prob)`
/// record per edge. Roughly 4x smaller and an order of magnitude faster
/// to parse than the text format — intended for the large dataset
/// analogs.
pub fn write_graph_binary<W: Write>(graph: &UncertainGraph, out: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(out);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(graph.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for (_, u, v, p) in graph.edges() {
        w.write_all(&u.0.to_le_bytes())?;
        w.write_all(&v.0.to_le_bytes())?;
        w.write_all(&p.value().to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read a graph written by [`write_graph_binary`].
pub fn read_graph_binary<R: Read>(input: R) -> Result<UncertainGraph, GraphError> {
    let mut r = BufReader::new(input);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: "bad magic: not a binary uncertain-graph file".into(),
        });
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;

    let mut builder = GraphBuilder::new(n).with_edge_capacity(m);
    let mut buf4 = [0u8; 4];
    for i in 0..m {
        r.read_exact(&mut buf4).map_err(|_| GraphError::Parse {
            line: 0,
            message: format!("truncated at edge record {i} of {m}"),
        })?;
        let u = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf8)?;
        let p = f64::from_le_bytes(buf8);
        builder.add_edge(NodeId(u), NodeId(v), p)?;
    }
    builder.try_build()
}

/// Save a graph in binary format to `path`.
pub fn save_graph_binary<P: AsRef<Path>>(
    graph: &UncertainGraph,
    path: P,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_graph_binary(graph, file)
}

/// Load a binary-format graph from `path`.
pub fn load_graph_binary<P: AsRef<Path>>(path: P) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_graph_binary(file)
}

#[cfg(test)]
mod binary_tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.25).unwrap();
        b.build()
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        let g2 = read_graph_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (e, u, v, p) in g.edges() {
            let e2 = g2.find_edge(u, v).unwrap();
            assert_eq!(e2, e);
            assert_eq!(g2.prob(e2).value().to_bits(), p.value().to_bits());
        }
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let g = crate::datasets::Dataset::LastFm.generate_with_scale(0.05, 1);
        let mut text = Vec::new();
        super::write_graph(&g, &mut text).unwrap();
        let mut bin = Vec::new();
        write_graph_binary(&g, &mut bin).unwrap();
        assert!(
            bin.len() < text.len(),
            "bin {} vs text {}",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_graph_binary(&b"NOTMAGIC\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncated_records() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_graph_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_corrupt_probability() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        // Overwrite the first edge's probability with 2.0.
        let off = 8 + 16 + 8; // magic + counts + (from, to)
        buf[off..off + 8].copy_from_slice(&2.0f64.to_le_bytes());
        assert!(read_graph_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_file_round_trip() {
        let g = toy();
        let dir = std::env::temp_dir().join("relcomp_io_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.ugb");
        save_graph_binary(&g, &path).unwrap();
        let g2 = load_graph_binary(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
    }
}
