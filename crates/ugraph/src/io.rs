//! Text serialization of uncertain graphs.
//!
//! Format (same shape as the paper's released datasets): a header line
//! `n m`, then one line per directed edge: `from to prob`, whitespace
//! separated. Lines starting with `#` are comments.
//!
//! ```text
//! # toy graph
//! 3 2
//! 0 1 0.5
//! 1 2 0.25
//! ```

use crate::builder::{DuplicatePolicy, GraphBuilder};
use crate::error::GraphError;
use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write `graph` in edge-list format.
pub fn write_graph<W: Write>(graph: &UncertainGraph, out: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{} {}", graph.num_nodes(), graph.num_edges())?;
    for (_, u, v, p) in graph.edges() {
        writeln!(w, "{} {} {}", u, v, p)?;
    }
    w.flush()?;
    Ok(())
}

/// Write `graph` to a file path.
pub fn save_graph<P: AsRef<Path>>(graph: &UncertainGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_graph(graph, file)
}

/// Read a graph in edge-list format. Duplicate edges are rejected.
pub fn read_graph<R: Read>(input: R) -> Result<UncertainGraph, GraphError> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines().enumerate();

    // Header: first non-comment, non-blank line.
    let (n, m, mut line_no) = loop {
        let (idx, line) = lines.next().ok_or_else(|| GraphError::Parse {
            line: 0,
            message: "missing header line `n m`".into(),
        })?;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let n: usize = parse_field(&mut parts, idx + 1, "node count")?;
        let m: usize = parse_field(&mut parts, idx + 1, "edge count")?;
        break (n, m, idx + 1);
    };

    let mut builder = GraphBuilder::new(n).with_edge_capacity(m);
    let mut seen = 0usize;
    for (idx, line) in lines {
        line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u32 = parse_field(&mut parts, line_no, "source node")?;
        let v: u32 = parse_field(&mut parts, line_no, "target node")?;
        let p: f64 = parse_field(&mut parts, line_no, "probability")?;
        builder.add_edge(NodeId(u), NodeId(v), p)?;
        seen += 1;
    }
    if seen != m {
        return Err(GraphError::Parse {
            line: line_no,
            message: format!("header declared {m} edges but file contains {seen}"),
        });
    }
    builder.try_build()
}

/// Read a graph from a file path.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_graph(file)
}

/// Read a graph, collapsing duplicate edges with `1-(1-p1)(1-p2)` instead
/// of rejecting them (useful for raw multi-edge dumps).
pub fn read_graph_combine<R: Read>(input: R) -> Result<UncertainGraph, GraphError> {
    // Parse through the strict reader first for format errors, but with a
    // permissive builder. Simplest correct approach: re-implement the loop
    // with the CombineOr policy.
    let reader = BufReader::new(input);
    let mut header: Option<(usize, usize)> = None;
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match (&mut header, &mut builder) {
            (None, _) => {
                let n: usize = parse_field(&mut parts, idx + 1, "node count")?;
                let m: usize = parse_field(&mut parts, idx + 1, "edge count")?;
                header = Some((n, m));
                builder = Some(
                    GraphBuilder::new(n)
                        .with_edge_capacity(m)
                        .duplicate_policy(DuplicatePolicy::CombineOr),
                );
            }
            (Some(_), Some(b)) => {
                let u: u32 = parse_field(&mut parts, idx + 1, "source node")?;
                let v: u32 = parse_field(&mut parts, idx + 1, "target node")?;
                let p: f64 = parse_field(&mut parts, idx + 1, "probability")?;
                b.add_edge(NodeId(u), NodeId(v), p)?;
            }
            _ => unreachable!(),
        }
    }
    builder
        .ok_or_else(|| GraphError::Parse {
            line: 0,
            message: "missing header line `n m`".into(),
        })
        .map(|b| b.build())
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let raw = parts.next().ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    raw.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("cannot parse {what} from `{raw}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.25).unwrap();
        b.build()
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (e, u, v, p) in g.edges() {
            let e2 = g2.find_edge(u, v).expect("edge survives round trip");
            assert_eq!(e2, e);
            assert!((g2.prob(e2).value() - p.value()).abs() < 1e-15);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n3 1\n# another\n0 2 0.75\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let err = read_graph("".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn edge_count_mismatch_is_error() {
        let text = "3 2\n0 1 0.5\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 2 edges"));
    }

    #[test]
    fn malformed_probability_is_error() {
        let text = "3 1\n0 1 banana\n";
        let err = read_graph(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("probability"));
    }

    #[test]
    fn out_of_range_probability_is_error() {
        let text = "3 1\n0 1 1.5\n";
        assert!(read_graph(text.as_bytes()).is_err());
    }

    #[test]
    fn combine_reader_merges_duplicates() {
        let text = "2 2\n0 1 0.5\n0 1 0.5\n";
        let g = read_graph_combine(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!((g.prob(crate::ids::EdgeId(0)).value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn file_round_trip() {
        let g = toy();
        let dir = std::env::temp_dir().join("relcomp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.ug");
        save_graph(&g, &path).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
    }
}

// ---------------------------------------------------------------------
// Binary format
// ---------------------------------------------------------------------

/// Magic prefix of the binary graph format (version 1).
pub const BINARY_MAGIC: &[u8; 8] = b"UGRAPHB1";

/// Write `graph` in the compact binary format: an 8-byte magic, `n` and
/// `m` as little-endian `u64`, then one `(u32 from, u32 to, f64 prob)`
/// record per edge. Roughly 4x smaller and an order of magnitude faster
/// to parse than the text format — intended for the large dataset
/// analogs.
pub fn write_graph_binary<W: Write>(graph: &UncertainGraph, out: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(out);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(graph.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for (_, u, v, p) in graph.edges() {
        w.write_all(&u.0.to_le_bytes())?;
        w.write_all(&v.0.to_le_bytes())?;
        w.write_all(&p.value().to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Size of one v1 edge record: `u32 from`, `u32 to`, `f64 prob`.
const V1_RECORD: usize = 16;

/// Read a graph written by [`write_graph_binary`].
///
/// Edge records are consumed through a bulk block buffer (4 MiB per
/// `read`), not three `read_exact` calls per edge — on large graphs the
/// old pattern spent most of its time in `BufReader` bookkeeping.
pub fn read_graph_binary<R: Read>(input: R) -> Result<UncertainGraph, GraphError> {
    let mut r = input;
    let mut magic = [0u8; 8];
    read_exact_or_truncated(&mut r, &mut magic, "v1 magic")?;
    if &magic != BINARY_MAGIC {
        // A v2 file fed to the v1 reader deserves a precise error.
        if &magic == crate::format::MAGIC_V2 {
            return Err(GraphError::UnsupportedVersion { version: 2 });
        }
        return Err(GraphError::BadMagic {
            found: magic.to_vec(),
        });
    }
    let mut counts = [0u8; 16];
    read_exact_or_truncated(&mut r, &mut counts, "v1 header counts")?;
    let n = u64::from_le_bytes(counts[0..8].try_into().unwrap()) as usize;
    let m = u64::from_le_bytes(counts[8..16].try_into().unwrap()) as usize;

    let mut builder = GraphBuilder::new(n).with_edge_capacity(m);
    const BLOCK_RECORDS: usize = 256 * 1024; // 4 MiB per read
    let mut block = vec![0u8; BLOCK_RECORDS * V1_RECORD];
    let mut remaining = m;
    while remaining > 0 {
        let take = remaining.min(BLOCK_RECORDS);
        let buf = &mut block[..take * V1_RECORD];
        read_exact_or_truncated(&mut r, buf, "v1 edge records")?;
        for rec in buf.chunks_exact(V1_RECORD) {
            let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
            let p = f64::from_le_bytes(rec[8..16].try_into().unwrap());
            builder.add_edge(NodeId(u), NodeId(v), p)?;
        }
        remaining -= take;
    }
    builder.try_build()
}

/// `read_exact` that reports how much data was missing as a structured
/// [`GraphError::Truncated`] instead of a bare `UnexpectedEof`.
fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), GraphError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(GraphError::Truncated {
                    context,
                    needed: buf.len() as u64,
                    available: filled as u64,
                })
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Save a graph in binary format to `path`.
pub fn save_graph_binary<P: AsRef<Path>>(
    graph: &UncertainGraph,
    path: P,
) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_graph_binary(graph, file)
}

/// Load a binary-format graph from `path`.
pub fn load_graph_binary<P: AsRef<Path>>(path: P) -> Result<UncertainGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_graph_binary(file)
}

#[cfg(test)]
mod binary_tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.25).unwrap();
        b.build()
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        let g2 = read_graph_binary(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (e, u, v, p) in g.edges() {
            let e2 = g2.find_edge(u, v).unwrap();
            assert_eq!(e2, e);
            assert_eq!(g2.prob(e2).value().to_bits(), p.value().to_bits());
        }
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let g = crate::datasets::Dataset::LastFm.generate_with_scale(0.05, 1);
        let mut text = Vec::new();
        super::write_graph(&g, &mut text).unwrap();
        let mut bin = Vec::new();
        write_graph_binary(&g, &mut bin).unwrap();
        assert!(
            bin.len() < text.len(),
            "bin {} vs text {}",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_graph_binary(&b"NOTMAGIC\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_truncated_records() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_graph_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_corrupt_probability() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        // Overwrite the first edge's probability with 2.0.
        let off = 8 + 16 + 8; // magic + counts + (from, to)
        buf[off..off + 8].copy_from_slice(&2.0f64.to_le_bytes());
        assert!(read_graph_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_file_round_trip() {
        let g = toy();
        let dir = std::env::temp_dir().join("relcomp_io_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.ugb");
        save_graph_binary(&g, &path).unwrap();
        let g2 = load_graph_binary(&path).unwrap();
        assert_eq!(g2.num_edges(), 2);
    }
}

// ---------------------------------------------------------------------
// Format auto-detection
// ---------------------------------------------------------------------

/// Which on-disk graph format a file carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// Whitespace edge-list text (`n m` header, `from to prob` lines).
    Text,
    /// `UGRAPHB1` record-per-edge binary.
    BinaryV1,
    /// `UGRAPHB2` fixed-layout mmap-able binary.
    BinaryV2,
}

impl std::fmt::Display for GraphFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphFormat::Text => write!(f, "text"),
            GraphFormat::BinaryV1 => write!(f, "binary-v1"),
            GraphFormat::BinaryV2 => write!(f, "binary-v2"),
        }
    }
}

/// How a graph was loaded by [`load_graph_auto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Detected on-disk format.
    pub format: GraphFormat,
    /// True when the CSR arrays are zero-copy views into a memory
    /// mapping (v2 on Unix); false for any heap load path.
    pub mmapped: bool,
}

/// Sniff a file's format from its first bytes (extension is ignored —
/// magic strings are authoritative; anything without a known magic is
/// treated as text).
pub fn detect_format<P: AsRef<Path>>(path: P) -> Result<GraphFormat, GraphError> {
    let mut file = std::fs::File::open(path)?;
    let mut head = [0u8; 8];
    let mut filled = 0;
    while filled < head.len() {
        match file.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(if &head == crate::format::MAGIC_V2 {
        GraphFormat::BinaryV2
    } else if &head == BINARY_MAGIC {
        GraphFormat::BinaryV1
    } else {
        GraphFormat::Text
    })
}

/// Load a graph in any supported format, auto-detected by magic bytes.
/// v2 files take the zero-copy mmap path where available; v1 binary and
/// text files parse onto the heap.
pub fn load_graph_auto<P: AsRef<Path>>(
    path: P,
) -> Result<(UncertainGraph, LoadReport), GraphError> {
    let path = path.as_ref();
    match detect_format(path)? {
        GraphFormat::BinaryV2 => {
            let loaded = crate::format::load_graph_v2(path)?;
            Ok((
                loaded.graph,
                LoadReport {
                    format: GraphFormat::BinaryV2,
                    mmapped: loaded.mmapped,
                },
            ))
        }
        GraphFormat::BinaryV1 => Ok((
            load_graph_binary(path)?,
            LoadReport {
                format: GraphFormat::BinaryV1,
                mmapped: false,
            },
        )),
        GraphFormat::Text => Ok((
            load_graph(path)?,
            LoadReport {
                format: GraphFormat::Text,
                mmapped: false,
            },
        )),
    }
}

#[cfg(test)]
mod auto_tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn toy() -> UncertainGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.25).unwrap();
        b.build()
    }

    #[test]
    fn detects_and_loads_all_three_formats() {
        let g = toy();
        let dir = std::env::temp_dir().join("relcomp_io_auto_test");
        std::fs::create_dir_all(&dir).unwrap();

        // Deliberately mismatched extensions: magic bytes win.
        let text = dir.join("toy_text.ugb");
        save_graph(&g, &text).unwrap();
        assert_eq!(detect_format(&text).unwrap(), GraphFormat::Text);

        let v1 = dir.join("toy_v1.ug");
        save_graph_binary(&g, &v1).unwrap();
        assert_eq!(detect_format(&v1).unwrap(), GraphFormat::BinaryV1);

        let v2 = dir.join("toy_v2.dat");
        crate::format::write_graph_v2(&g, &v2).unwrap();
        assert_eq!(detect_format(&v2).unwrap(), GraphFormat::BinaryV2);

        for path in [&text, &v1, &v2] {
            let (g2, report) = load_graph_auto(path).unwrap();
            assert_eq!(g2.num_edges(), g.num_edges());
            if report.format != GraphFormat::BinaryV2 {
                assert!(!report.mmapped);
            }
        }
        let (_, report) = load_graph_auto(&v2).unwrap();
        assert_eq!(report.format, GraphFormat::BinaryV2);
        #[cfg(unix)]
        assert!(report.mmapped);
    }

    #[test]
    fn v1_reader_identifies_v2_files() {
        let g = toy();
        let dir = std::env::temp_dir().join("relcomp_io_auto_test");
        std::fs::create_dir_all(&dir).unwrap();
        let v2 = dir.join("toy_for_v1.ug2");
        crate::format::write_graph_v2(&g, &v2).unwrap();
        let err = load_graph_binary(&v2).unwrap_err();
        assert!(matches!(err, GraphError::UnsupportedVersion { version: 2 }));
    }

    #[test]
    fn v1_truncation_is_structured() {
        let g = toy();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        let err = read_graph_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, GraphError::Truncated { .. }), "got {err}");
        // Header-level truncation too.
        let err = read_graph_binary(&buf[..4]).unwrap_err();
        assert!(matches!(err, GraphError::Truncated { .. }));
    }
}
