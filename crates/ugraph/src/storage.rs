//! Backing storage for CSR edge arrays: owned heap or borrowed mmap.
//!
//! Every array inside [`UncertainGraph`](crate::graph::UncertainGraph)
//! is an [`EdgeStorage<T>`]: either today's heap `Arc<[T]>`, or a typed
//! view into a page-aligned read-only [`Mmap`](crate::mmap::Mmap) of a
//! v2 graph file (see [`crate::format`]). Both variants are cheap to
//! clone and deref to `&[T]`, so the estimators never see the
//! difference — and the copy-on-write epoch machinery keeps working
//! unchanged: [`with_updated_probs`](crate::graph::UncertainGraph::with_updated_probs)
//! copies the probability array to the heap while the topology views
//! keep borrowing the mapping.

use crate::mmap::Mmap;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for plain-old-data element types that may be reinterpreted
/// from little-endian file bytes: no padding, no invalid bit patterns
/// at the *layout* level (semantic validation — e.g. probabilities in
/// `(0, 1]` — is the loader's job before a view is constructed).
///
/// # Safety
/// Implementors must be `#[repr(transparent)]` over (or be) a primitive
/// with no uninitialized bytes and no layout-invalid values.
pub unsafe trait Pod: Copy + 'static {}

// SAFETY: primitives, and our #[repr(transparent)] newtypes over them.
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl Pod for crate::ids::NodeId {}
unsafe impl Pod for crate::ids::EdgeId {}
unsafe impl Pod for crate::probability::Probability {}

/// One CSR array: heap-owned or a typed borrow of a shared mapping.
pub struct EdgeStorage<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    /// Owned, today's path; also the copy-on-write overlay target.
    Heap(Arc<[T]>),
    /// Borrowed view into `_map`; `ptr` is pre-validated to be aligned
    /// and in-bounds for `len` elements. The `Arc` keeps the mapping
    /// alive for as long as any view (or clone of it) exists.
    Mapped {
        ptr: *const T,
        len: usize,
        _map: Arc<Mmap>,
    },
}

// SAFETY: Heap is Arc<[T]>; Mapped points into an immutable, read-only
// mapping whose lifetime the Arc pins. Sharing either across threads is
// sound exactly when &[T] is.
unsafe impl<T: Sync + Send> Send for EdgeStorage<T> {}
unsafe impl<T: Sync + Send> Sync for EdgeStorage<T> {}

impl<T> Clone for EdgeStorage<T> {
    fn clone(&self) -> Self {
        let inner = match &self.inner {
            Inner::Heap(arc) => Inner::Heap(Arc::clone(arc)),
            Inner::Mapped { ptr, len, _map } => Inner::Mapped {
                ptr: *ptr,
                len: *len,
                _map: Arc::clone(_map),
            },
        };
        EdgeStorage { inner }
    }
}

impl<T> Deref for EdgeStorage<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match &self.inner {
            Inner::Heap(arc) => arc,
            // SAFETY: ptr/len were validated against the mapping's bounds
            // and T's alignment at construction; the mapping is alive and
            // immutable while `self` borrows it.
            Inner::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T> std::fmt::Debug for EdgeStorage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Heap(arc) => write!(f, "EdgeStorage::Heap(len={})", arc.len()),
            Inner::Mapped { len, .. } => write!(f, "EdgeStorage::Mapped(len={len})"),
        }
    }
}

impl<T> EdgeStorage<T> {
    /// Identity comparison: do the two storages view the very same
    /// memory? This is the mmap-aware replacement for `Arc::ptr_eq` in
    /// [`same_topology`](crate::graph::UncertainGraph::same_topology):
    /// heap clones share an allocation, mapped clones share a base
    /// pointer into the same mapping.
    #[inline]
    pub fn ptr_eq(&self, other: &EdgeStorage<T>) -> bool {
        std::ptr::eq(self.as_ptr(), other.as_ptr()) && self.len() == other.len()
    }

    /// True if this storage borrows a memory mapping rather than owning
    /// heap memory.
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }

    /// Bytes of *heap* memory this storage owns (0 for mapped views —
    /// their pages are reclaimable page cache, not process heap).
    pub fn heap_bytes(&self) -> usize {
        match &self.inner {
            Inner::Heap(arc) => std::mem::size_of_val(&arc[..]),
            Inner::Mapped { .. } => 0,
        }
    }
}

impl<T: Pod> EdgeStorage<T> {
    /// View `len` elements of `map` starting at `byte_offset`.
    ///
    /// Returns `None` when the requested window is misaligned for `T`
    /// or runs past the mapping (the caller turns that into a
    /// structured [`GraphError`](crate::error::GraphError)).
    pub fn from_mapped(map: &Arc<Mmap>, byte_offset: usize, len: usize) -> Option<EdgeStorage<T>> {
        let size = std::mem::size_of::<T>();
        let bytes = len.checked_mul(size)?;
        let end = byte_offset.checked_add(bytes)?;
        if end > map.len() {
            return None;
        }
        // SAFETY: offset ≤ map.len() was just checked, so the add stays
        // inside (one past) the allocation.
        let ptr = unsafe { map.as_ptr().add(byte_offset) };
        if ptr as usize % std::mem::align_of::<T>() != 0 {
            return None;
        }
        Some(EdgeStorage {
            inner: Inner::Mapped {
                ptr: ptr.cast(),
                len,
                _map: Arc::clone(map),
            },
        })
    }
}

impl<T> From<Vec<T>> for EdgeStorage<T> {
    fn from(v: Vec<T>) -> Self {
        EdgeStorage {
            inner: Inner::Heap(v.into()),
        }
    }
}

impl<T> From<Arc<[T]>> for EdgeStorage<T> {
    fn from(arc: Arc<[T]>) -> Self {
        EdgeStorage {
            inner: Inner::Heap(arc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;
    use std::io::Write;

    #[test]
    fn heap_storage_derefs_and_clones_shared() {
        let s: EdgeStorage<u32> = vec![1, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        let t = s.clone();
        assert!(s.ptr_eq(&t));
        assert!(!s.is_mapped());
        assert_eq!(s.heap_bytes(), 12);
    }

    #[test]
    fn distinct_heap_allocations_are_not_ptr_eq() {
        let a: EdgeStorage<u32> = vec![1, 2, 3].into();
        let b: EdgeStorage<u32> = vec![1, 2, 3].into();
        assert!(!a.ptr_eq(&b));
    }

    #[test]
    #[cfg(unix)]
    fn mapped_storage_views_file_bytes() {
        let path =
            std::env::temp_dir().join(format!("relcomp_storage_view_{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        let values: Vec<u32> = vec![7, 11, 13, 17];
        for v in &values {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        drop(f);
        let map = Arc::new(Mmap::map_file(&File::open(&path).unwrap()).unwrap());
        let s: EdgeStorage<u32> = EdgeStorage::from_mapped(&map, 0, 4).unwrap();
        assert_eq!(&s[..], &values[..]);
        assert!(s.is_mapped());
        assert_eq!(s.heap_bytes(), 0);
        // A clone of the view aliases the same mapped bytes.
        assert!(s.ptr_eq(&s.clone()));
        // Out-of-bounds and misaligned views are rejected.
        assert!(EdgeStorage::<u32>::from_mapped(&map, 0, 5).is_none());
        assert!(EdgeStorage::<u32>::from_mapped(&map, 2, 1).is_none());
        std::fs::remove_file(path).ok();
    }
}
