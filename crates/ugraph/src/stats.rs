//! Summary statistics for edge-probability distributions (Table 2 of the
//! paper reports mean ± SD and quartiles per dataset).

use serde::{Deserialize, Serialize};

/// Mean, standard deviation, and quartiles of a sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator); 0 for n < 2.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (linear interpolation).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary of `values`. Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let sd = if n > 1 {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Some(Summary {
            count: n,
            mean,
            sd,
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[n - 1],
        })
    }
}

/// Linear-interpolated quantile of a sorted slice, `q` in `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction out of range: {q}"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Welford online mean/variance accumulator — used by the convergence
/// criterion where reliabilities arrive one repetition at a time.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with n-1 denominator (0 for n < 2) — matches Eq. 11
    /// of the paper.
    pub fn sample_variance(&self) -> f64 {
        if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.sd - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_singleton() {
        let s = Summary::of(&[0.7]).unwrap();
        assert_eq!(s.mean, 0.7);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.median, 0.7);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((quantile(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(quantile(&sorted, 0.0), 0.0);
        assert_eq!(quantile(&sorted, 1.0), 10.0);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [0.2, 0.4, 0.4, 0.9, 0.1];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let s = Summary::of(&xs).unwrap();
        assert!((w.mean() - s.mean).abs() < 1e-12);
        assert!((w.sample_variance().sqrt() - s.sd).abs() < 1e-12);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn welford_degenerate_cases() {
        let w = Welford::new();
        assert_eq!(w.sample_variance(), 0.0);
        let mut w = Welford::new();
        w.push(1.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.mean(), 1.0);
    }
}
