//! Strongly-typed node and edge identifiers.
//!
//! Both identifiers are thin wrappers over `u32`: uncertain graphs in the
//! reliability literature (Table 2 of the paper) top out at a few million
//! nodes/edges, and 32-bit indices halve the footprint of adjacency arrays,
//! which matters for the index-based estimators (BFS-Sharing keeps `K` bits
//! per edge; ProbTree replicates edges into bags).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in an [`UncertainGraph`](crate::graph::UncertainGraph).
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
#[repr(transparent)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge in an [`UncertainGraph`](crate::graph::UncertainGraph).
///
/// Edge ids are dense and stable: they index the CSR edge arrays directly,
/// which lets estimators attach per-edge side structures (bit vectors,
/// geometric counters, inclusion/exclusion overlays) as flat vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
#[repr(transparent)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into node-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "node index overflows u32");
        NodeId(idx as u32)
    }
}

impl EdgeId {
    /// The id as a `usize` index into edge-indexed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(idx as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
    }

    #[test]
    fn edge_id_round_trips_index() {
        let e = EdgeId::from_index(7);
        assert_eq!(e.index(), 7);
        assert_eq!(e, EdgeId(7));
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    fn debug_formats_are_tagged() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId(9)), "e9");
        assert_eq!(format!("{}", NodeId(3)), "3");
    }
}
