//! Synthetic analogs of the paper's six evaluation datasets (Table 2).
//!
//! We do not have the downloaded datasets offline, so each is replaced by a
//! generator that matches (a) the topology class, (b) the paper's exact
//! edge-probability model (§3.1.2), and (c) — at `scale = 1.0` — the node
//! and edge counts of Table 2. The two multi-million-edge graphs (DBLP,
//! BioMine) default to a reduced scale so the full experiment suite runs on
//! a laptop; pass `scale = 1.0` to [`Dataset::generate_with_scale`] for
//! paper-scale graphs.
//!
//! | Dataset   | Paper n / m            | Topology          | Prob model |
//! |-----------|------------------------|-------------------|------------|
//! | LastFM    | 6,899 / 23,696         | BA(m=2) bidirected| inverse out-degree |
//! | NetHEPT   | 15,233 / 62,774        | BA(m=2) bidirected| uniform {.1,.01,.001} |
//! | AS Topo.  | 45,535 / 172,294       | WS(k=4, β=.3)     | snapshot ratio |
//! | DBLP 0.2  | 1,291,298 / 7,123,632  | BA(m=3) bidirected| 1-e^(-c/5) |
//! | DBLP 0.05 | 1,291,298 / 7,123,632  | BA(m=3) bidirected| 1-e^(-c/20) |
//! | BioMine   | 1,045,414 / 6,742,939  | BA(m=6) directed  | 3-criteria combo |

use crate::generators::{barabasi_albert, watts_strogatz};
use crate::graph::UncertainGraph;
use crate::probmodel::{Direction, ProbModel};
use crate::stats::Summary;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The six dataset analogs, in the paper's Table 2 order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// LastFM musical social network analog.
    LastFm,
    /// NetHEPT co-authorship analog (arXiv HEP-Theory).
    NetHept,
    /// CAIDA AS-topology analog.
    AsTopology,
    /// DBLP co-authorship analog with mu = 5 (mean prob ~0.33).
    Dblp02,
    /// DBLP co-authorship analog with mu = 20 (mean prob ~0.11).
    Dblp005,
    /// BioMine biological cross-reference analog.
    BioMine,
}

/// Everything needed to regenerate a dataset analog.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Paper-reported node count at scale 1.0.
    pub paper_nodes: usize,
    /// Paper-reported (directed) edge count at scale 1.0.
    pub paper_edges: usize,
    /// Default scale used by [`Dataset::generate`].
    pub default_scale: f64,
    /// Probability model (§3.1.2).
    pub model: ProbModel,
    /// Edge orientation.
    pub direction: Direction,
    /// Human-readable name as printed in the paper's tables.
    pub display_name: &'static str,
}

/// Table 2 row: measured properties of a generated analog.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetProperties {
    /// Display name (paper's Table 2 row label).
    pub name: String,
    /// Measured node count.
    pub num_nodes: usize,
    /// Measured directed edge count.
    pub num_edges: usize,
    /// Edge-probability summary (mean/SD/quartiles).
    pub prob: Summary,
}

impl Dataset {
    /// All six datasets in Table 2 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::LastFm,
        Dataset::NetHept,
        Dataset::AsTopology,
        Dataset::Dblp02,
        Dataset::Dblp005,
        Dataset::BioMine,
    ];

    /// The generation spec for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::LastFm => DatasetSpec {
                paper_nodes: 6_899,
                paper_edges: 23_696,
                default_scale: 1.0,
                model: ProbModel::InverseOutDegree,
                direction: Direction::Bidirected,
                display_name: "LastFM",
            },
            Dataset::NetHept => DatasetSpec {
                paper_nodes: 15_233,
                paper_edges: 62_774,
                default_scale: 1.0,
                model: ProbModel::UniformChoice {
                    choices: vec![0.1, 0.01, 0.001],
                },
                direction: Direction::Bidirected,
                display_name: "NetHEPT",
            },
            Dataset::AsTopology => DatasetSpec {
                paper_nodes: 45_535,
                paper_edges: 172_294,
                default_scale: 0.5,
                model: ProbModel::SnapshotRatio { snapshots: 120 },
                direction: Direction::Bidirected,
                display_name: "AS Topology",
            },
            Dataset::Dblp02 => DatasetSpec {
                paper_nodes: 1_291_298,
                paper_edges: 7_123_632,
                default_scale: 0.01,
                model: ProbModel::ExponentialCollab { mu: 5.0 },
                direction: Direction::Bidirected,
                display_name: "DBLP 0.2",
            },
            Dataset::Dblp005 => DatasetSpec {
                paper_nodes: 1_291_298,
                paper_edges: 7_123_632,
                default_scale: 0.01,
                model: ProbModel::ExponentialCollab { mu: 20.0 },
                direction: Direction::Bidirected,
                display_name: "DBLP 0.05",
            },
            Dataset::BioMine => DatasetSpec {
                paper_nodes: 1_045_414,
                paper_edges: 6_742_939,
                default_scale: 0.015,
                model: ProbModel::BioMine,
                direction: Direction::RandomOriented,
                display_name: "BioMine",
            },
        }
    }

    /// Short name for file paths and report rows.
    pub fn short_name(self) -> &'static str {
        match self {
            Dataset::LastFm => "lastfm",
            Dataset::NetHept => "nethept",
            Dataset::AsTopology => "as_topology",
            Dataset::Dblp02 => "dblp02",
            Dataset::Dblp005 => "dblp005",
            Dataset::BioMine => "biomine",
        }
    }

    /// Generate at the dataset's default scale.
    pub fn generate(self, seed: u64) -> UncertainGraph {
        let scale = self.spec().default_scale;
        self.generate_with_scale(scale, seed)
    }

    /// Generate with an explicit scale factor in `(0, 1]` applied to the
    /// node count (edge count follows from the attachment density).
    pub fn generate_with_scale(self, scale: f64, seed: u64) -> UncertainGraph {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let spec = self.spec();
        let n = ((spec.paper_nodes as f64 * scale) as usize).max(512);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ dataset_salt(self));
        let pairs = match self {
            Dataset::LastFm | Dataset::NetHept => barabasi_albert(n, 2, &mut rng),
            Dataset::AsTopology => watts_strogatz(n, 4, 0.3, &mut rng),
            Dataset::Dblp02 | Dataset::Dblp005 => barabasi_albert(n, 3, &mut rng),
            Dataset::BioMine => barabasi_albert(n, 6, &mut rng),
        };
        spec.model.apply(n, &pairs, spec.direction, &mut rng)
    }

    /// Measured Table 2 row for a generated graph.
    pub fn properties(self, graph: &UncertainGraph) -> DatasetProperties {
        let probs: Vec<f64> = graph.edges().map(|(_, _, _, p)| p.value()).collect();
        DatasetProperties {
            name: self.spec().display_name.to_string(),
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges(),
            prob: Summary::of(&probs).expect("dataset graphs are non-empty"),
        }
    }
}

/// Distinct per-dataset RNG salt so the same seed yields independent graphs
/// across datasets.
fn dataset_salt(d: Dataset) -> u64 {
    match d {
        Dataset::LastFm => 0x001a_57f1,
        Dataset::NetHept => 0x04e7_4e97,
        Dataset::AsTopology => 0xa570_9010,
        Dataset::Dblp02 => 0x0db1_9020,
        Dataset::Dblp005 => 0x0db1_9005,
        Dataset::BioMine => 0x0b10_714e,
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().display_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_small_scale() {
        for d in Dataset::ALL {
            let g = d.generate_with_scale(0.05, 42);
            assert!(g.num_nodes() >= 512, "{d}: {}", g.num_nodes());
            assert!(g.num_edges() > g.num_nodes() / 2, "{d}");
            let props = d.properties(&g);
            assert!(props.prob.mean > 0.0 && props.prob.mean <= 1.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::LastFm.generate_with_scale(0.1, 7);
        let b = Dataset::LastFm.generate_with_scale(0.1, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a
            .edges()
            .map(|(_, u, v, p)| (u, v, p.value().to_bits()))
            .collect();
        let eb: Vec<_> = b
            .edges()
            .map(|(_, u, v, p)| (u, v, p.value().to_bits()))
            .collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::LastFm.generate_with_scale(0.1, 7);
        let b = Dataset::LastFm.generate_with_scale(0.1, 8);
        let ea: Vec<_> = a.edges().map(|(_, u, v, _)| (u, v)).collect();
        let eb: Vec<_> = b.edges().map(|(_, u, v, _)| (u, v)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn lastfm_full_scale_matches_table2_counts() {
        let g = Dataset::LastFm.generate_with_scale(1.0, 1);
        let spec = Dataset::LastFm.spec();
        assert_eq!(g.num_nodes(), spec.paper_nodes);
        // Edge count within 25% of the paper's 23,696 (BA density m=2
        // bidirected gives ~4n directed edges).
        let ratio = g.num_edges() as f64 / spec.paper_edges as f64;
        assert!(
            (0.75..=1.35).contains(&ratio),
            "edges {} ratio {ratio}",
            g.num_edges()
        );
    }

    #[test]
    fn dblp_means_are_ordered() {
        // DBLP 0.2 (mu=5) must have systematically higher probabilities
        // than DBLP 0.05 (mu=20) on the same topology.
        let a = Dataset::Dblp02.generate_with_scale(0.01, 3);
        let b = Dataset::Dblp005.generate_with_scale(0.01, 3);
        assert!(a.mean_probability() > 2.0 * b.mean_probability());
    }

    #[test]
    fn biomine_is_directed_single_arcs() {
        let g = Dataset::BioMine.generate_with_scale(0.01, 3);
        // Directed orientation: most pairs should not have both directions.
        let mut both = 0usize;
        let mut total = 0usize;
        for (_, u, v, _) in g.edges() {
            total += 1;
            if g.find_edge(v, u).is_some() {
                both += 1;
            }
        }
        assert!(both < total / 4, "both {both} of {total}");
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Dataset::Dblp02.to_string(), "DBLP 0.2");
        assert_eq!(Dataset::AsTopology.to_string(), "AS Topology");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn invalid_scale_panics() {
        let _ = Dataset::LastFm.generate_with_scale(0.0, 1);
    }
}
