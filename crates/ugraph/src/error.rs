//! Error types for graph construction and I/O.

use crate::ids::NodeId;
use crate::probability::ProbabilityError;
use std::fmt;

/// Errors raised while building or loading an uncertain graph.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes the graph was declared with.
        num_nodes: usize,
    },
    /// An edge probability was outside `(0, 1]`.
    InvalidProbability(ProbabilityError),
    /// A self-loop was supplied where the builder forbids them.
    SelfLoop(NodeId),
    /// A duplicate directed edge was supplied where the builder forbids them.
    DuplicateEdge {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
    /// Malformed text while parsing an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A binary graph file ended before the declared data did.
    Truncated {
        /// What was being read when the file ran out.
        context: &'static str,
        /// Bytes needed to finish reading it.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A binary graph file did not start with a known magic string.
    BadMagic {
        /// The first bytes actually found (up to 8).
        found: Vec<u8>,
    },
    /// A binary graph file carried a version this build cannot read.
    UnsupportedVersion {
        /// Version number found in the header.
        version: u32,
    },
    /// A v2 section offset was unaligned, out of order, or past the file end.
    BadSection {
        /// Name of the offending section.
        section: &'static str,
        /// What was wrong with it.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidProbability(e) => write!(f, "{e}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate directed edge {from} -> {to}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Truncated {
                context,
                needed,
                available,
            } => {
                write!(
                    f,
                    "truncated graph file: {context} needs {needed} bytes but only {available} remain"
                )
            }
            GraphError::BadMagic { found } => {
                write!(f, "not a graph binary: bad magic {found:?}")
            }
            GraphError::UnsupportedVersion { version } => {
                write!(f, "unsupported graph binary version {version}")
            }
            GraphError::BadSection { section, message } => {
                write!(f, "bad section '{section}': {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::InvalidProbability(e) => Some(e),
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProbabilityError> for GraphError {
    fn from(e: ProbabilityError) -> Self {
        GraphError::InvalidProbability(e)
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_payload() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            num_nodes: 5,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));

        let e = GraphError::SelfLoop(NodeId(3));
        assert!(e.to_string().contains('3'));

        let e = GraphError::Parse {
            line: 12,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("bad field"));
    }

    #[test]
    fn binary_error_messages_mention_payload() {
        let e = GraphError::Truncated {
            context: "edge records",
            needed: 160,
            available: 40,
        };
        assert!(e.to_string().contains("edge records"));
        assert!(e.to_string().contains("160"));
        assert!(e.to_string().contains("40"));

        let e = GraphError::BadMagic {
            found: b"NOTAGRPH".to_vec(),
        };
        assert!(e.to_string().contains("bad magic"));

        let e = GraphError::UnsupportedVersion { version: 99 };
        assert!(e.to_string().contains("99"));

        let e = GraphError::BadSection {
            section: "out_targets",
            message: "offset 13 not 64-byte aligned".into(),
        };
        assert!(e.to_string().contains("out_targets"));
        assert!(e.to_string().contains("64-byte"));
    }

    #[test]
    fn probability_error_converts() {
        let pe = crate::probability::Probability::new(2.0).unwrap_err();
        let ge: GraphError = pe.into();
        assert!(matches!(ge, GraphError::InvalidProbability(_)));
    }
}
