//! Deterministic-graph traversal primitives shared by all estimators.
//!
//! Reliability estimators run *many* BFS passes per query (one per sampled
//! world). To keep the per-sample cost down, [`VisitSet`] uses an epoch
//! trick: resetting between samples is a single counter bump instead of an
//! `O(n)` clear.

use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// A reusable visited-set over dense node ids with O(1) reset.
#[derive(Clone, Debug)]
pub struct VisitSet {
    marks: Vec<u32>,
    epoch: u32,
}

impl VisitSet {
    /// A visit set for `n` nodes, initially all unvisited.
    pub fn new(n: usize) -> Self {
        VisitSet {
            marks: vec![0; n],
            epoch: 1,
        }
    }

    /// Reset all nodes to unvisited in O(1) (amortized; a full clear happens
    /// only on `u32` epoch wrap-around, i.e. every ~4 billion resets).
    #[inline]
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.marks.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Mark `v` visited; returns `true` if it was previously unvisited.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let slot = &mut self.marks[v.index()];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `v` is currently marked visited.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.marks[v.index()] == self.epoch
    }

    /// Number of nodes this set covers.
    pub fn capacity(&self) -> usize {
        self.marks.len()
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.marks.len() * 4
    }
}

/// Reusable BFS workspace (queue + visit set), sized for one graph.
#[derive(Clone, Debug)]
pub struct BfsWorkspace {
    /// Epoch-reset visited set.
    pub visited: VisitSet,
    /// BFS frontier queue.
    pub queue: VecDeque<NodeId>,
}

impl BfsWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsWorkspace {
            visited: VisitSet::new(n),
            queue: VecDeque::new(),
        }
    }

    /// Reset for a fresh traversal.
    #[inline]
    pub fn reset(&mut self) {
        self.visited.reset();
        self.queue.clear();
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.visited.resident_bytes() + self.queue.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Resident bytes a fresh workspace for `n` nodes would hold, without
    /// allocating one (memory accounting on hot paths).
    pub fn bytes_for(n: usize) -> usize {
        n * std::mem::size_of::<u32>()
    }
}

/// BFS over edges accepted by `edge_exists`; returns `true` as soon as `t`
/// is reached (early termination, as in Alg. 1 of the paper).
///
/// `edge_exists` receives the edge id and decides whether the edge is
/// present — callers plug in "sample now" (MC), "read bit vector"
/// (BFS-Sharing replay), "consult overlay" (RHH/RSS), etc.
pub fn bfs_reaches<F>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    ws: &mut BfsWorkspace,
    mut edge_exists: F,
) -> bool
where
    F: FnMut(crate::ids::EdgeId) -> bool,
{
    if s == t {
        return true;
    }
    ws.reset();
    ws.visited.insert(s);
    ws.queue.push_back(s);
    while let Some(v) = ws.queue.pop_front() {
        for (e, w) in graph.out_edges(v) {
            if ws.visited.contains(w) {
                continue;
            }
            if edge_exists(e) {
                if w == t {
                    return true;
                }
                ws.visited.insert(w);
                ws.queue.push_back(w);
            }
        }
    }
    false
}

/// Reusable workspace for depth-bounded BFS (level-synchronous frontier
/// swap), sized for one graph. The epoch-reset [`VisitSet`] keeps the
/// per-sample cost of distance-constrained estimators allocation-free.
#[derive(Clone, Debug)]
pub struct BoundedBfsWorkspace {
    visited: VisitSet,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl BoundedBfsWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        BoundedBfsWorkspace {
            visited: VisitSet::new(n),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.visited.resident_bytes()
            + (self.frontier.capacity() + self.next.capacity()) * std::mem::size_of::<NodeId>()
    }

    /// Resident bytes a fresh workspace for `n` nodes would hold, without
    /// allocating one (memory accounting on hot paths).
    pub fn bytes_for(n: usize) -> usize {
        n * std::mem::size_of::<u32>()
    }
}

/// Depth-bounded BFS over edges accepted by `edge_exists`: is `t` within
/// at most `d` hops of `s`? Early-terminates the moment `t` is reached.
///
/// The edge-probe order (frontier nodes in discovery order, each node's
/// out-edges in CSR order, `edge_exists` consulted only for unvisited
/// heads) is part of the contract: samplers rely on it so that the same
/// RNG stream produces the same world regardless of which workspace or
/// caller drives the walk.
pub fn bfs_reaches_within<F>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    ws: &mut BoundedBfsWorkspace,
    mut edge_exists: F,
) -> bool
where
    F: FnMut(crate::ids::EdgeId) -> bool,
{
    if s == t {
        return true;
    }
    ws.visited.reset();
    ws.frontier.clear();
    ws.next.clear();
    ws.visited.insert(s);
    ws.frontier.push(s);
    let mut h = 0usize;
    while !ws.frontier.is_empty() && h < d {
        h += 1;
        for i in 0..ws.frontier.len() {
            let v = ws.frontier[i];
            for (e, w) in graph.out_edges(v) {
                if !ws.visited.contains(w) && edge_exists(e) {
                    if w == t {
                        return true;
                    }
                    ws.visited.insert(w);
                    ws.next.push(w);
                }
            }
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
        ws.next.clear();
    }
    false
}

/// How many possible worlds one packed traversal covers: the width of the
/// `u64` words that [`WordBfsWorkspace`] and the `word_reach_*` functions
/// operate on. Bit `b` of every word belongs to world `b`.
pub const WORLD_WORD_BITS: usize = 64;

/// Reusable workspace for 64-world bit-packed BFS.
///
/// Each node carries a `u64` *reach word*: bit `b` is set when the node is
/// reachable from the source in world `b`. One traversal therefore settles
/// [`WORLD_WORD_BITS`] sampled worlds at once.
///
/// Resetting between batches is O(union), not O(n): the workspace keeps a
/// deduplicated list of nodes whose reach word went nonzero, and the next
/// `begin` clears exactly those words. On graphs where a 64-world batch
/// touches a few hundred nodes out of hundreds of thousands, the old
/// full-array clear dominated the whole batch.
#[derive(Clone, Debug)]
pub struct WordBfsWorkspace {
    reach: Vec<u64>,
    /// Nodes with a nonzero reach word, deduplicated, discovery order
    /// (source first). Every nonzero `reach` write pushes here exactly
    /// once, so `reach[v] != 0` iff `v` is listed.
    touched: Vec<NodeId>,
    // Level-synchronous frontier state: the frontier word holds the bits
    // that arrived at this node on the current level; a node re-enters a
    // later frontier only if new worlds reach it there. This bounds the
    // out-edge rescans per node by the spread of its per-world BFS depths
    // (typically 1-3 levels), where an arrival-ordered worklist rescans
    // once per *bit* arrival — up to 64x on heavily-overlapping worlds.
    // Invariant between traversals: both word arrays are all-zero.
    word: Vec<u64>,
    next_word: Vec<u64>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    // One bit per node, set while the node's reach word has grown since
    // the node was last scanned by a sweep walk. Sweeps scan only dirty
    // nodes (in id order, word-at-a-time), so each node is rescanned once
    // per actual change instead of once per sweep — the fixed point costs
    // O(sum of per-node changes × degree), not O(sweeps × m).
    // Invariant between traversals: all-zero.
    dirty: Vec<u64>,
}

impl WordBfsWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        WordBfsWorkspace {
            reach: vec![0; n],
            touched: Vec::new(),
            word: vec![0; n],
            next_word: vec![0; n],
            frontier: Vec::new(),
            next: Vec::new(),
            dirty: vec![0; n.div_ceil(64)],
        }
    }

    /// Per-node reach words of the most recent traversal: bit `b` of
    /// `reach()[v]` is set when node `v` was reached in world `b`.
    /// Unreached nodes hold zero.
    pub fn reach(&self) -> &[u64] {
        &self.reach
    }

    /// Nodes reached in at least one world by the most recent traversal —
    /// the union across all 64 worlds, deduplicated, in discovery order
    /// with the source first. Iterating this instead of `0..n` keeps
    /// consumers (top-k scoring, multi-target crediting) proportional to
    /// the reached set.
    pub fn reached_nodes(&self) -> &[NodeId] {
        &self.touched
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.reach.len() * 8 * 3
            + self.dirty.len() * 8
            + (self.touched.capacity() + self.frontier.capacity() + self.next.capacity())
                * std::mem::size_of::<NodeId>()
    }

    /// Resident bytes a fresh workspace for `n` nodes would hold, without
    /// allocating one (memory accounting on hot paths).
    pub fn bytes_for(n: usize) -> usize {
        n * 3 * std::mem::size_of::<u64>() + n.div_ceil(64) * 8
    }

    /// Clear the previous traversal's reach words (O(union)) and seed the
    /// source. Frontier state is set up by the frontier-driven walks; the
    /// sweep walks need only the reach words.
    fn begin(&mut self, s: NodeId) {
        for &v in &self.touched {
            self.reach[v.index()] = 0;
        }
        self.touched.clear();
        self.reach[s.index()] = !0;
        self.touched.push(s);
    }

    /// Seed the level-synchronous frontier at `s` (after [`Self::begin`]).
    fn begin_frontier(&mut self, s: NodeId) {
        self.frontier.clear();
        self.next.clear();
        self.word[s.index()] = !0;
        self.frontier.push(s);
    }
}

/// Bit-packed s-t reachability over 64 sampled worlds at once.
///
/// `edge_mask(e, cand)` receives the *candidate* world-set — worlds that
/// would newly reach the edge's head if the edge exists — and returns the
/// subset in which the edge survives (any bits outside `cand` are
/// ignored). Passing the candidate set in lets mask generators draw only
/// the worlds the traversal can actually use, instead of all 64 bits of
/// every probed edge. Probes happen lazily and their order depends on the
/// traversal — callers that need a stable RNG stream must treat the whole
/// 64-world batch as one draw.
///
/// Returns the reach word of `t`: `popcount` of the result is the number
/// of worlds (out of 64) in which `t` is reachable from `s`. Worlds whose
/// target is already reached are pruned from further propagation (their
/// bits drop out of every frontier word via the `active` mask), and the
/// walk stops outright once all 64 worlds have converged.
///
/// Level-synchronous: each frontier node is expanded once per level with
/// every world bit that arrived there on the previous level, so a node's
/// out-edges are rescanned at most once per distinct per-world BFS depth
/// — not once per arriving bit, which degenerates to 64 rescans per node
/// on supercritical graphs where the worlds share a giant component.
pub fn word_reach_worlds<F>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    ws: &mut WordBfsWorkspace,
    mut edge_mask: F,
) -> u64
where
    F: FnMut(crate::ids::EdgeId, u64) -> u64,
{
    if s == t {
        return !0;
    }
    ws.begin(s);
    ws.begin_frontier(s);
    let ti = t.index();
    while !ws.frontier.is_empty() {
        let active = !ws.reach[ti];
        if active == 0 {
            break;
        }
        for i in 0..ws.frontier.len() {
            let v = ws.frontier[i];
            let fw = std::mem::take(&mut ws.word[v.index()]) & active;
            if fw == 0 {
                continue;
            }
            for (e, w) in graph.out_edges(v) {
                let old = ws.reach[w.index()];
                let cand = fw & !old;
                if cand == 0 {
                    continue;
                }
                let add = edge_mask(e, cand) & cand;
                if add != 0 {
                    if old == 0 {
                        ws.touched.push(w);
                    }
                    ws.reach[w.index()] = old | add;
                    if ws.next_word[w.index()] == 0 {
                        ws.next.push(w);
                    }
                    ws.next_word[w.index()] |= add;
                }
            }
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
        ws.next.clear();
        std::mem::swap(&mut ws.word, &mut ws.next_word);
    }
    // Clear any frontier words left by the early close so the next
    // traversal starts from a clean slate.
    for i in 0..ws.frontier.len() {
        let v = ws.frontier[i];
        ws.word[v.index()] = 0;
    }
    ws.reach[ti]
}

/// Bit-packed full reachability over 64 sampled worlds at once: computes,
/// for every node, the worlds in which it is reachable from `s` (read the
/// result via [`WordBfsWorkspace::reach`], or iterate just the reached
/// union via [`WordBfsWorkspace::reached_nodes`]). No target pruning —
/// this is the packed analogue of a full per-world BFS, used by top-k and
/// multi-target sampling. `edge_mask` follows the candidate-set contract
/// of [`word_reach_worlds`]; the traversal is level-synchronous for the
/// same rescan-bound reason.
pub fn word_reach_all<F>(
    graph: &UncertainGraph,
    s: NodeId,
    ws: &mut WordBfsWorkspace,
    mut edge_mask: F,
) where
    F: FnMut(crate::ids::EdgeId, u64) -> u64,
{
    ws.begin(s);
    ws.begin_frontier(s);
    while !ws.frontier.is_empty() {
        for i in 0..ws.frontier.len() {
            let v = ws.frontier[i];
            let fw = std::mem::take(&mut ws.word[v.index()]);
            if fw == 0 {
                continue;
            }
            for (e, w) in graph.out_edges(v) {
                let old = ws.reach[w.index()];
                let cand = fw & !old;
                if cand == 0 {
                    continue;
                }
                let add = edge_mask(e, cand) & cand;
                if add != 0 {
                    if old == 0 {
                        ws.touched.push(w);
                    }
                    ws.reach[w.index()] = old | add;
                    if ws.next_word[w.index()] == 0 {
                        ws.next.push(w);
                    }
                    ws.next_word[w.index()] |= add;
                }
            }
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
        ws.next.clear();
        std::mem::swap(&mut ws.word, &mut ws.next_word);
    }
}

/// Bit-packed depth-bounded s-t reachability over 64 sampled worlds: in
/// which worlds is `t` within at most `d` hops of `s`?
///
/// Level-synchronous: each node's *frontier word* holds the worlds that
/// first reached it on the current level, and only those bits propagate to
/// the next level — a world reaches each node at its per-world BFS depth,
/// so the hop cap is exact per world. `edge_mask` follows the
/// candidate-set contract of [`word_reach_worlds`]. Returns the reach
/// word of `t`.
pub fn word_reach_within<F>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    ws: &mut WordBfsWorkspace,
    mut edge_mask: F,
) -> u64
where
    F: FnMut(crate::ids::EdgeId, u64) -> u64,
{
    if s == t {
        return !0;
    }
    // `word`/`next_word` are all-zero between traversals (taken during the
    // walk, leftovers cleared at exit), so only the reach words — cleared
    // by `begin` in O(union) — carry state in.
    ws.begin(s);
    ws.begin_frontier(s);
    let mut h = 0usize;
    while !ws.frontier.is_empty() && h < d {
        h += 1;
        let active = !ws.reach[t.index()];
        if active == 0 {
            break;
        }
        for i in 0..ws.frontier.len() {
            let v = ws.frontier[i];
            let fw = std::mem::take(&mut ws.word[v.index()]) & active;
            if fw == 0 {
                continue;
            }
            for (e, w) in graph.out_edges(v) {
                let old = ws.reach[w.index()];
                let cand = fw & !old;
                if cand == 0 {
                    continue;
                }
                let add = edge_mask(e, cand) & cand;
                if add != 0 {
                    if old == 0 {
                        ws.touched.push(w);
                    }
                    ws.reach[w.index()] = old | add;
                    if ws.next_word[w.index()] == 0 {
                        ws.next.push(w);
                    }
                    ws.next_word[w.index()] |= add;
                }
            }
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
        ws.next.clear();
        std::mem::swap(&mut ws.word, &mut ws.next_word);
    }
    // Clear any frontier words left by an early exit so the next traversal
    // starts from a clean slate.
    for i in 0..ws.frontier.len() {
        let v = ws.frontier[i];
        ws.word[v.index()] = 0;
    }
    ws.reach[t.index()]
}

/// Bit-packed s-t reachability over 64 sampled worlds via fixed-point
/// sweeps over a dirty-node bitset, for *dense* batches where the reached
/// union approaches the whole graph (supercritical edge probabilities).
///
/// A node is *dirty* while its reach word has grown since the node's
/// out-edges were last scanned. Each sweep walks the dirty bitset in id
/// order — sequential, prefetch-friendly — and ORs `reach[v] & mask(e)`
/// into each out-neighbor, marking changed neighbors dirty; the walk ends
/// when a sweep leaves nothing dirty. Rescans are therefore proportional
/// to how often a node's reach actually changes (a few level arrivals),
/// not to the total sweep count, with none of the frontier-respread and
/// cache-miss overhead that makes [`word_reach_worlds`]
/// quadratic-feeling on supercritical graphs.
///
/// `edge_mask(e)` returns the edge's 64-world existence mask — callers
/// draw all masks up front (no candidate set: a dense batch touches
/// nearly every edge anyway). Worlds whose target is already reached are
/// pruned from propagation, and the walk stops once all 64 converge.
/// Returns the reach word of `t`.
pub fn word_reach_worlds_sweep<F>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    ws: &mut WordBfsWorkspace,
    mut edge_mask: F,
) -> u64
where
    F: FnMut(crate::ids::EdgeId) -> u64,
{
    if s == t {
        return !0;
    }
    ws.begin(s);
    let ti = t.index();
    let WordBfsWorkspace {
        reach,
        touched,
        dirty,
        ..
    } = ws;
    dirty[s.index() / 64] = 1 << (s.index() % 64);
    let mut any = true;
    while any {
        let active = !reach[ti];
        if active == 0 {
            break;
        }
        any = false;
        for wi in 0..dirty.len() {
            let mut bits = dirty[wi];
            if bits == 0 {
                continue;
            }
            dirty[wi] = 0;
            while bits != 0 {
                let vi = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let rv = reach[vi] & active;
                if rv == 0 {
                    continue;
                }
                for (e, w) in graph.out_edges(NodeId(vi as u32)) {
                    let old = reach[w.index()];
                    let add = rv & !old & edge_mask(e);
                    if add != 0 {
                        if old == 0 {
                            touched.push(w);
                        }
                        reach[w.index()] = old | add;
                        dirty[w.index() / 64] |= 1 << (w.index() % 64);
                        any = true;
                    }
                }
            }
        }
    }
    // Early close can leave dirty bits behind; restore the all-zero
    // invariant (the bitset is n/8 bytes — a trivial memset).
    dirty.fill(0);
    reach[ti]
}

/// Bit-packed full reachability over 64 sampled worlds via fixed-point
/// dirty-bitset sweeps — the dense-batch analogue of [`word_reach_all`],
/// with the same cost model and `edge_mask` contract as
/// [`word_reach_worlds_sweep`]. Results land in
/// [`WordBfsWorkspace::reach`] / [`WordBfsWorkspace::reached_nodes`].
pub fn word_reach_all_sweep<F>(
    graph: &UncertainGraph,
    s: NodeId,
    ws: &mut WordBfsWorkspace,
    mut edge_mask: F,
) where
    F: FnMut(crate::ids::EdgeId) -> u64,
{
    ws.begin(s);
    let WordBfsWorkspace {
        reach,
        touched,
        dirty,
        ..
    } = ws;
    dirty[s.index() / 64] = 1 << (s.index() % 64);
    let mut any = true;
    while any {
        any = false;
        for wi in 0..dirty.len() {
            let mut bits = dirty[wi];
            if bits == 0 {
                continue;
            }
            dirty[wi] = 0;
            while bits != 0 {
                let vi = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let rv = reach[vi];
                for (e, w) in graph.out_edges(NodeId(vi as u32)) {
                    let old = reach[w.index()];
                    let add = rv & !old & edge_mask(e);
                    if add != 0 {
                        if old == 0 {
                            touched.push(w);
                        }
                        reach[w.index()] = old | add;
                        dirty[w.index() / 64] |= 1 << (w.index() % 64);
                        any = true;
                    }
                }
            }
        }
    }
}

/// Hop distances from `s` over *all* edges (ignoring probabilities), up to
/// `max_hops`. Returns `dist[v] = Some(h)` for reachable `v` within the
/// bound. Used by the workload generator (§3.1.3: s-t pairs at exactly
/// h hops) and by RSS's BFS edge selection.
pub fn hop_distances(graph: &UncertainGraph, s: NodeId, max_hops: usize) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; graph.num_nodes()];
    dist[s.index()] = Some(0);
    let mut frontier = vec![s];
    let mut next = Vec::new();
    let mut h = 0u32;
    while !frontier.is_empty() && (h as usize) < max_hops {
        h += 1;
        for &v in &frontier {
            for (_, w) in graph.out_edges(v) {
                if dist[w.index()].is_none() {
                    dist[w.index()] = Some(h);
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// All nodes reachable from `s` over all edges (certain topology).
pub fn reachable_set(graph: &UncertainGraph, s: NodeId) -> Vec<NodeId> {
    let mut ws = BfsWorkspace::new(graph.num_nodes());
    ws.visited.insert(s);
    ws.queue.push_back(s);
    let mut out = vec![s];
    while let Some(v) = ws.queue.pop_front() {
        for (_, w) in graph.out_edges(v) {
            if ws.visited.insert(w) {
                out.push(w);
                ws.queue.push_back(w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn chain(n: usize) -> UncertainGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 0.5)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn visit_set_reset_is_cheap_and_correct() {
        let mut vs = VisitSet::new(3);
        assert!(vs.insert(NodeId(1)));
        assert!(!vs.insert(NodeId(1)));
        assert!(vs.contains(NodeId(1)));
        vs.reset();
        assert!(!vs.contains(NodeId(1)));
        assert!(vs.insert(NodeId(1)));
    }

    #[test]
    fn bfs_reaches_with_all_edges() {
        let g = chain(5);
        let mut ws = BfsWorkspace::new(5);
        assert!(bfs_reaches(&g, NodeId(0), NodeId(4), &mut ws, |_| true));
        assert!(!bfs_reaches(&g, NodeId(4), NodeId(0), &mut ws, |_| true));
    }

    #[test]
    fn bfs_respects_edge_filter() {
        let g = chain(5);
        let mut ws = BfsWorkspace::new(5);
        // Block the middle edge 2 -> 3 (edge id 2 in a chain).
        assert!(!bfs_reaches(&g, NodeId(0), NodeId(4), &mut ws, |e| e
            .index()
            != 2));
        assert!(bfs_reaches(&g, NodeId(0), NodeId(2), &mut ws, |e| e
            .index()
            != 2));
    }

    #[test]
    fn bfs_s_equals_t() {
        let g = chain(3);
        let mut ws = BfsWorkspace::new(3);
        assert!(bfs_reaches(&g, NodeId(1), NodeId(1), &mut ws, |_| false));
    }

    #[test]
    fn bounded_bfs_respects_the_hop_cap() {
        let g = chain(5);
        let mut ws = BoundedBfsWorkspace::new(5);
        assert!(!bfs_reaches_within(
            &g,
            NodeId(0),
            NodeId(4),
            3,
            &mut ws,
            |_| true
        ));
        assert!(bfs_reaches_within(
            &g,
            NodeId(0),
            NodeId(4),
            4,
            &mut ws,
            |_| true
        ));
        // d = 0 reaches only the source itself.
        assert!(bfs_reaches_within(
            &g,
            NodeId(2),
            NodeId(2),
            0,
            &mut ws,
            |_| true
        ));
        assert!(!bfs_reaches_within(
            &g,
            NodeId(0),
            NodeId(1),
            0,
            &mut ws,
            |_| true
        ));
        // Edge filters still apply under the bound.
        assert!(!bfs_reaches_within(
            &g,
            NodeId(0),
            NodeId(2),
            4,
            &mut ws,
            |e| e.index() != 1
        ));
    }

    #[test]
    fn bounded_workspace_reuse_across_traversals() {
        let g = chain(4);
        let mut ws = BoundedBfsWorkspace::new(4);
        for d in [1usize, 2, 3] {
            assert_eq!(
                bfs_reaches_within(&g, NodeId(0), NodeId(3), d, &mut ws, |_| true),
                d >= 3
            );
        }
    }

    #[test]
    fn hop_distances_counts_hops() {
        let g = chain(5);
        let d = hop_distances(&g, NodeId(0), 10);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[3], Some(3));
        let d2 = hop_distances(&g, NodeId(0), 2);
        assert_eq!(d2[3], None); // beyond the bound
        assert_eq!(d2[2], Some(2));
    }

    #[test]
    fn reachable_set_covers_component() {
        let g = chain(4);
        let r = reachable_set(&g, NodeId(1));
        assert_eq!(r.len(), 3); // 1, 2, 3
        assert!(!r.contains(&NodeId(0)));
    }

    #[test]
    fn workspace_reuse_across_traversals() {
        let g = chain(4);
        let mut ws = BfsWorkspace::new(4);
        for _ in 0..100 {
            assert!(bfs_reaches(&g, NodeId(0), NodeId(3), &mut ws, |_| true));
        }
    }

    #[test]
    fn word_reach_matches_scalar_per_world() {
        // Chain of 4 edges; give each world `b` a mask that keeps edge `e`
        // iff bit `e` of `b` is set. World b then connects 0 -> 4 exactly
        // when its low 4 bits are all ones.
        let g = chain(5);
        let mut ws = WordBfsWorkspace::new(5);
        let got = word_reach_worlds(&g, NodeId(0), NodeId(4), &mut ws, |e, cand| {
            let mut m = 0u64;
            for b in 0..64u64 {
                if b & (1 << e.index()) != 0 {
                    m |= 1 << b;
                }
            }
            m & cand
        });
        let mut want = 0u64;
        for b in 0..64u64 {
            if b & 0b1111 == 0b1111 {
                want |= 1 << b;
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn word_reach_s_equals_t_and_all_edges() {
        let g = chain(4);
        let mut ws = WordBfsWorkspace::new(4);
        assert_eq!(
            word_reach_worlds(&g, NodeId(1), NodeId(1), &mut ws, |_, _| 0),
            !0
        );
        assert_eq!(
            word_reach_worlds(&g, NodeId(0), NodeId(3), &mut ws, |_, _| !0),
            !0
        );
        assert_eq!(
            word_reach_worlds(&g, NodeId(3), NodeId(0), &mut ws, |_, _| !0),
            0
        );
    }

    #[test]
    fn word_reach_all_credits_every_node() {
        let g = chain(4);
        let mut ws = WordBfsWorkspace::new(4);
        // Kill edge 1 -> 2 in the low 32 worlds only.
        word_reach_all(&g, NodeId(0), &mut ws, |e, cand| {
            if e.index() == 1 {
                (!0u64 << 32) & cand
            } else {
                cand
            }
        });
        let r = ws.reach();
        assert_eq!(r[0], !0);
        assert_eq!(r[1], !0);
        assert_eq!(r[2], !0u64 << 32);
        assert_eq!(r[3], !0u64 << 32);
        // The reached union is deduplicated and covers exactly the nodes
        // with nonzero reach words, source first.
        let touched = ws.reached_nodes();
        assert_eq!(touched[0], NodeId(0));
        assert_eq!(touched.len(), 4);
        let mut sorted: Vec<u32> = touched.iter().map(|v| v.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn word_reach_reuse_clears_only_touched_words() {
        // After a traversal that reached nodes 1..3, a second traversal
        // from a different source must not see stale reach words.
        let g = chain(4);
        let mut ws = WordBfsWorkspace::new(4);
        word_reach_all(&g, NodeId(0), &mut ws, |_, cand| cand);
        assert_eq!(ws.reach()[3], !0);
        word_reach_all(&g, NodeId(2), &mut ws, |_, cand| cand);
        assert_eq!(ws.reach()[0], 0);
        assert_eq!(ws.reach()[1], 0);
        assert_eq!(ws.reach()[2], !0);
        assert_eq!(ws.reach()[3], !0);
        assert_eq!(ws.reached_nodes().len(), 2);
    }

    #[test]
    fn sweep_matches_frontier_walk_on_deterministic_masks() {
        // Same per-edge world masks through both traversal strategies
        // must yield identical reach words (the closures are pure, so
        // probe order cannot matter).
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(3), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(4), 0.5).unwrap();
        let g = b.build();
        let mask = |e: crate::ids::EdgeId| 0x5a5a_5a5a_0f0f_3c3cu64.rotate_left(e.index() as u32);
        let mut a = WordBfsWorkspace::new(5);
        let mut bfs = WordBfsWorkspace::new(5);
        let st_sweep = word_reach_worlds_sweep(&g, NodeId(0), NodeId(4), &mut a, mask);
        let st_front =
            word_reach_worlds(&g, NodeId(0), NodeId(4), &mut bfs, |e, cand| mask(e) & cand);
        assert_eq!(st_sweep, st_front);
        word_reach_all_sweep(&g, NodeId(0), &mut a, mask);
        word_reach_all(&g, NodeId(0), &mut bfs, |e, cand| mask(e) & cand);
        assert_eq!(a.reach(), bfs.reach());
        assert_eq!(a.reached_nodes().len(), bfs.reached_nodes().len());
    }

    #[test]
    fn sweep_converges_against_edge_order() {
        // 3 -> 2 -> 1 -> 0: every edge goes from a higher to a lower id,
        // so each forward sweep advances exactly one hop and the fixed
        // point needs the full chain of sweeps.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(3), NodeId(2), 0.5).unwrap();
        b.add_edge(NodeId(2), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 0.5).unwrap();
        let g = b.build();
        let mut ws = WordBfsWorkspace::new(4);
        assert_eq!(
            word_reach_worlds_sweep(&g, NodeId(3), NodeId(0), &mut ws, |_| !0),
            !0
        );
        word_reach_all_sweep(&g, NodeId(3), &mut ws, |_| !0);
        assert_eq!(ws.reach(), &[!0u64, !0, !0, !0]);
    }

    #[test]
    fn sweep_reuse_clears_only_touched_words() {
        let g = chain(4);
        let mut ws = WordBfsWorkspace::new(4);
        word_reach_all_sweep(&g, NodeId(0), &mut ws, |_| !0);
        assert_eq!(ws.reach()[3], !0);
        word_reach_all_sweep(&g, NodeId(2), &mut ws, |_| !0);
        assert_eq!(ws.reach()[0], 0);
        assert_eq!(ws.reach()[1], 0);
        assert_eq!(ws.reach()[2], !0);
        assert_eq!(ws.reach()[3], !0);
        assert_eq!(ws.reached_nodes().len(), 2);
    }

    #[test]
    fn word_reach_within_honours_per_world_depth() {
        let g = chain(5);
        let mut ws = WordBfsWorkspace::new(5);
        // All edges on in every world: 0 -> 4 takes exactly 4 hops.
        assert_eq!(
            word_reach_within(&g, NodeId(0), NodeId(4), 3, &mut ws, |_, c| c),
            0
        );
        assert_eq!(
            word_reach_within(&g, NodeId(0), NodeId(4), 4, &mut ws, |_, c| c),
            !0
        );
        assert_eq!(
            word_reach_within(&g, NodeId(2), NodeId(2), 0, &mut ws, |_, c| c),
            !0
        );
        // Workspace reuse after an early-exit traversal stays clean.
        assert_eq!(
            word_reach_within(&g, NodeId(0), NodeId(1), 1, &mut ws, |_, c| c),
            !0
        );
        assert_eq!(
            word_reach_within(&g, NodeId(0), NodeId(4), 2, &mut ws, |_, c| c),
            0
        );
    }

    #[test]
    fn word_reach_within_shortcut_vs_long_way() {
        // 0 -> 1 -> 3 plus a direct 0 -> 3 shortcut that exists in half
        // the worlds: depth 1 reaches 3 only where the shortcut is on.
        // CSR sorts edges by (src, dst): 0->1 is id 0, 0->3 is id 1,
        // 1->3 is id 2.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(3), 0.5).unwrap();
        let g = b.build();
        let mut ws = WordBfsWorkspace::new(4);
        let shortcut = 0xAAAA_AAAA_AAAA_AAAAu64;
        let mask = |e: crate::ids::EdgeId, cand: u64| {
            if e.index() == 1 {
                shortcut & cand
            } else {
                cand
            }
        };
        assert_eq!(
            word_reach_within(&g, NodeId(0), NodeId(3), 1, &mut ws, mask),
            shortcut
        );
        assert_eq!(
            word_reach_within(&g, NodeId(0), NodeId(3), 2, &mut ws, mask),
            !0
        );
    }
}
