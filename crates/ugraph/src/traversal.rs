//! Deterministic-graph traversal primitives shared by all estimators.
//!
//! Reliability estimators run *many* BFS passes per query (one per sampled
//! world). To keep the per-sample cost down, [`VisitSet`] uses an epoch
//! trick: resetting between samples is a single counter bump instead of an
//! `O(n)` clear.

use crate::graph::UncertainGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// A reusable visited-set over dense node ids with O(1) reset.
#[derive(Clone, Debug)]
pub struct VisitSet {
    marks: Vec<u32>,
    epoch: u32,
}

impl VisitSet {
    /// A visit set for `n` nodes, initially all unvisited.
    pub fn new(n: usize) -> Self {
        VisitSet {
            marks: vec![0; n],
            epoch: 1,
        }
    }

    /// Reset all nodes to unvisited in O(1) (amortized; a full clear happens
    /// only on `u32` epoch wrap-around, i.e. every ~4 billion resets).
    #[inline]
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.marks.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Mark `v` visited; returns `true` if it was previously unvisited.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let slot = &mut self.marks[v.index()];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `v` is currently marked visited.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.marks[v.index()] == self.epoch
    }

    /// Number of nodes this set covers.
    pub fn capacity(&self) -> usize {
        self.marks.len()
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.marks.len() * 4
    }
}

/// Reusable BFS workspace (queue + visit set), sized for one graph.
#[derive(Clone, Debug)]
pub struct BfsWorkspace {
    /// Epoch-reset visited set.
    pub visited: VisitSet,
    /// BFS frontier queue.
    pub queue: VecDeque<NodeId>,
}

impl BfsWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsWorkspace {
            visited: VisitSet::new(n),
            queue: VecDeque::new(),
        }
    }

    /// Reset for a fresh traversal.
    #[inline]
    pub fn reset(&mut self) {
        self.visited.reset();
        self.queue.clear();
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.visited.resident_bytes() + self.queue.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Resident bytes a fresh workspace for `n` nodes would hold, without
    /// allocating one (memory accounting on hot paths).
    pub fn bytes_for(n: usize) -> usize {
        n * std::mem::size_of::<u32>()
    }
}

/// BFS over edges accepted by `edge_exists`; returns `true` as soon as `t`
/// is reached (early termination, as in Alg. 1 of the paper).
///
/// `edge_exists` receives the edge id and decides whether the edge is
/// present — callers plug in "sample now" (MC), "read bit vector"
/// (BFS-Sharing replay), "consult overlay" (RHH/RSS), etc.
pub fn bfs_reaches<F>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    ws: &mut BfsWorkspace,
    mut edge_exists: F,
) -> bool
where
    F: FnMut(crate::ids::EdgeId) -> bool,
{
    if s == t {
        return true;
    }
    ws.reset();
    ws.visited.insert(s);
    ws.queue.push_back(s);
    while let Some(v) = ws.queue.pop_front() {
        for (e, w) in graph.out_edges(v) {
            if ws.visited.contains(w) {
                continue;
            }
            if edge_exists(e) {
                if w == t {
                    return true;
                }
                ws.visited.insert(w);
                ws.queue.push_back(w);
            }
        }
    }
    false
}

/// Reusable workspace for depth-bounded BFS (level-synchronous frontier
/// swap), sized for one graph. The epoch-reset [`VisitSet`] keeps the
/// per-sample cost of distance-constrained estimators allocation-free.
#[derive(Clone, Debug)]
pub struct BoundedBfsWorkspace {
    visited: VisitSet,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl BoundedBfsWorkspace {
    /// Workspace for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        BoundedBfsWorkspace {
            visited: VisitSet::new(n),
            frontier: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Approximate resident bytes (for memory accounting).
    pub fn resident_bytes(&self) -> usize {
        self.visited.resident_bytes()
            + (self.frontier.capacity() + self.next.capacity()) * std::mem::size_of::<NodeId>()
    }

    /// Resident bytes a fresh workspace for `n` nodes would hold, without
    /// allocating one (memory accounting on hot paths).
    pub fn bytes_for(n: usize) -> usize {
        n * std::mem::size_of::<u32>()
    }
}

/// Depth-bounded BFS over edges accepted by `edge_exists`: is `t` within
/// at most `d` hops of `s`? Early-terminates the moment `t` is reached.
///
/// The edge-probe order (frontier nodes in discovery order, each node's
/// out-edges in CSR order, `edge_exists` consulted only for unvisited
/// heads) is part of the contract: samplers rely on it so that the same
/// RNG stream produces the same world regardless of which workspace or
/// caller drives the walk.
pub fn bfs_reaches_within<F>(
    graph: &UncertainGraph,
    s: NodeId,
    t: NodeId,
    d: usize,
    ws: &mut BoundedBfsWorkspace,
    mut edge_exists: F,
) -> bool
where
    F: FnMut(crate::ids::EdgeId) -> bool,
{
    if s == t {
        return true;
    }
    ws.visited.reset();
    ws.frontier.clear();
    ws.next.clear();
    ws.visited.insert(s);
    ws.frontier.push(s);
    let mut h = 0usize;
    while !ws.frontier.is_empty() && h < d {
        h += 1;
        for i in 0..ws.frontier.len() {
            let v = ws.frontier[i];
            for (e, w) in graph.out_edges(v) {
                if !ws.visited.contains(w) && edge_exists(e) {
                    if w == t {
                        return true;
                    }
                    ws.visited.insert(w);
                    ws.next.push(w);
                }
            }
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
        ws.next.clear();
    }
    false
}

/// Hop distances from `s` over *all* edges (ignoring probabilities), up to
/// `max_hops`. Returns `dist[v] = Some(h)` for reachable `v` within the
/// bound. Used by the workload generator (§3.1.3: s-t pairs at exactly
/// h hops) and by RSS's BFS edge selection.
pub fn hop_distances(graph: &UncertainGraph, s: NodeId, max_hops: usize) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; graph.num_nodes()];
    dist[s.index()] = Some(0);
    let mut frontier = vec![s];
    let mut next = Vec::new();
    let mut h = 0u32;
    while !frontier.is_empty() && (h as usize) < max_hops {
        h += 1;
        for &v in &frontier {
            for (_, w) in graph.out_edges(v) {
                if dist[w.index()].is_none() {
                    dist[w.index()] = Some(h);
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// All nodes reachable from `s` over all edges (certain topology).
pub fn reachable_set(graph: &UncertainGraph, s: NodeId) -> Vec<NodeId> {
    let mut ws = BfsWorkspace::new(graph.num_nodes());
    ws.visited.insert(s);
    ws.queue.push_back(s);
    let mut out = vec![s];
    while let Some(v) = ws.queue.pop_front() {
        for (_, w) in graph.out_edges(v) {
            if ws.visited.insert(w) {
                out.push(w);
                ws.queue.push_back(w);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn chain(n: usize) -> UncertainGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 0.5)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn visit_set_reset_is_cheap_and_correct() {
        let mut vs = VisitSet::new(3);
        assert!(vs.insert(NodeId(1)));
        assert!(!vs.insert(NodeId(1)));
        assert!(vs.contains(NodeId(1)));
        vs.reset();
        assert!(!vs.contains(NodeId(1)));
        assert!(vs.insert(NodeId(1)));
    }

    #[test]
    fn bfs_reaches_with_all_edges() {
        let g = chain(5);
        let mut ws = BfsWorkspace::new(5);
        assert!(bfs_reaches(&g, NodeId(0), NodeId(4), &mut ws, |_| true));
        assert!(!bfs_reaches(&g, NodeId(4), NodeId(0), &mut ws, |_| true));
    }

    #[test]
    fn bfs_respects_edge_filter() {
        let g = chain(5);
        let mut ws = BfsWorkspace::new(5);
        // Block the middle edge 2 -> 3 (edge id 2 in a chain).
        assert!(!bfs_reaches(&g, NodeId(0), NodeId(4), &mut ws, |e| e
            .index()
            != 2));
        assert!(bfs_reaches(&g, NodeId(0), NodeId(2), &mut ws, |e| e
            .index()
            != 2));
    }

    #[test]
    fn bfs_s_equals_t() {
        let g = chain(3);
        let mut ws = BfsWorkspace::new(3);
        assert!(bfs_reaches(&g, NodeId(1), NodeId(1), &mut ws, |_| false));
    }

    #[test]
    fn bounded_bfs_respects_the_hop_cap() {
        let g = chain(5);
        let mut ws = BoundedBfsWorkspace::new(5);
        assert!(!bfs_reaches_within(
            &g,
            NodeId(0),
            NodeId(4),
            3,
            &mut ws,
            |_| true
        ));
        assert!(bfs_reaches_within(
            &g,
            NodeId(0),
            NodeId(4),
            4,
            &mut ws,
            |_| true
        ));
        // d = 0 reaches only the source itself.
        assert!(bfs_reaches_within(
            &g,
            NodeId(2),
            NodeId(2),
            0,
            &mut ws,
            |_| true
        ));
        assert!(!bfs_reaches_within(
            &g,
            NodeId(0),
            NodeId(1),
            0,
            &mut ws,
            |_| true
        ));
        // Edge filters still apply under the bound.
        assert!(!bfs_reaches_within(
            &g,
            NodeId(0),
            NodeId(2),
            4,
            &mut ws,
            |e| e.index() != 1
        ));
    }

    #[test]
    fn bounded_workspace_reuse_across_traversals() {
        let g = chain(4);
        let mut ws = BoundedBfsWorkspace::new(4);
        for d in [1usize, 2, 3] {
            assert_eq!(
                bfs_reaches_within(&g, NodeId(0), NodeId(3), d, &mut ws, |_| true),
                d >= 3
            );
        }
    }

    #[test]
    fn hop_distances_counts_hops() {
        let g = chain(5);
        let d = hop_distances(&g, NodeId(0), 10);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[3], Some(3));
        let d2 = hop_distances(&g, NodeId(0), 2);
        assert_eq!(d2[3], None); // beyond the bound
        assert_eq!(d2[2], Some(2));
    }

    #[test]
    fn reachable_set_covers_component() {
        let g = chain(4);
        let r = reachable_set(&g, NodeId(1));
        assert_eq!(r.len(), 3); // 1, 2, 3
        assert!(!r.contains(&NodeId(0)));
    }

    #[test]
    fn workspace_reuse_across_traversals() {
        let g = chain(4);
        let mut ws = BfsWorkspace::new(4);
        for _ in 0..100 {
            assert!(bfs_reaches(&g, NodeId(0), NodeId(3), &mut ws, |_| true));
        }
    }
}
