//! Validated edge-existence probabilities.
//!
//! The paper defines an uncertain graph as `G = (V, E, P)` with
//! `P : E -> (0, 1]` — strictly positive (a zero-probability edge is simply
//! absent) and at most one (a probability-1 edge is deterministic).
//! [`Probability`] enforces that contract at construction time so the
//! estimators never have to re-validate in their hot loops.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An edge-existence probability in `(0, 1]`.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
#[repr(transparent)]
pub struct Probability(f64);

/// Error returned when constructing a [`Probability`] out of range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityError(pub f64);

impl fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "probability must lie in (0, 1], got {} (NaN, non-positive, or > 1)",
            self.0
        )
    }
}

impl std::error::Error for ProbabilityError {}

impl Probability {
    /// A deterministic (always-present) edge.
    pub const ONE: Probability = Probability(1.0);

    /// Construct a probability, validating that it lies in `(0, 1]`.
    pub fn new(p: f64) -> Result<Self, ProbabilityError> {
        if p.is_finite() && p > 0.0 && p <= 1.0 {
            Ok(Probability(p))
        } else {
            Err(ProbabilityError(p))
        }
    }

    /// Construct a probability, clamping into `(0, 1]`.
    ///
    /// Values `<= 0` are clamped to `MIN_POSITIVE_PROB`; values `> 1` (and
    /// NaN) to `1`. Intended for probability *models* that compute values
    /// numerically (e.g. `1 - exp(-c/mu)`) and may brush the boundary.
    pub fn clamped(p: f64) -> Self {
        if p.is_nan() || p <= 0.0 {
            Probability(Self::MIN_POSITIVE)
        } else if p > 1.0 {
            Probability(1.0)
        } else {
            Probability(p)
        }
    }

    /// Smallest probability `clamped` will produce.
    const MIN_POSITIVE: f64 = 1e-9;

    /// The raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Complement `1 - p` (may be zero for deterministic edges).
    #[inline]
    pub fn complement(self) -> f64 {
        1.0 - self.0
    }

    /// Probability that at least one of two *independent* events occurs:
    /// `1 - (1-p)(1-q)`.
    ///
    /// This is exactly the ProbTree bag-aggregation rule from §2.7 of the
    /// paper ("Our adaptation in complexity").
    #[inline]
    pub fn or_independent(self, other: Probability) -> Probability {
        Probability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// Probability that two *independent* events both occur: `p * q`.
    #[inline]
    pub fn and_independent(self, other: Probability) -> Probability {
        // Product of two values in (0,1] stays in (0,1].
        Probability(self.0 * other.0)
    }

    /// True if the edge is deterministic (probability exactly 1).
    #[inline]
    pub fn is_certain(self) -> bool {
        self.0 >= 1.0
    }
}

impl fmt::Debug for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p={}", self.0)
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Probability {
    type Error = ProbabilityError;
    fn try_from(p: f64) -> Result<Self, Self::Error> {
        Probability::new(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_open_unit_interval() {
        assert!(Probability::new(0.5).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(1e-12).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Probability::new(0.0).is_err());
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.0001).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_handles_boundaries() {
        assert!(Probability::clamped(0.0).value() > 0.0);
        assert_eq!(Probability::clamped(2.0).value(), 1.0);
        assert_eq!(Probability::clamped(0.3).value(), 0.3);
        assert!(Probability::clamped(f64::NAN).value() > 0.0);
    }

    #[test]
    fn or_independent_matches_closed_form() {
        let p = Probability::new(0.75).unwrap();
        let q = Probability::new(0.5 * 0.5).unwrap();
        // Example 2 of the paper: 1 - (1-0.75)(1-0.25) = 0.8125
        let agg = p.or_independent(q);
        assert!((agg.value() - 0.8125).abs() < 1e-12);
    }

    #[test]
    fn and_independent_is_product() {
        let p = Probability::new(0.5).unwrap();
        let q = Probability::new(0.5).unwrap();
        assert!((p.and_independent(q).value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn certain_flag() {
        assert!(Probability::ONE.is_certain());
        assert!(!Probability::new(0.99).unwrap().is_certain());
    }

    #[test]
    fn error_displays_value() {
        let err = Probability::new(-3.0).unwrap_err();
        assert!(err.to_string().contains("-3"));
    }
}
