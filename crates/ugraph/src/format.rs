//! The `UGRAPHB2` fixed-layout binary graph format and its zero-copy
//! loader.
//!
//! # On-disk layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "UGRAPHB2"
//! 8       4     version (u32) = 2
//! 12      4     flags (u32): bit 0 = probabilities stored as f32
//! 16      8     n (u64) — number of nodes
//! 24      8     m (u64) — number of directed edges
//! 32      8     out_offsets section offset (u64)
//! 40      8     out_targets section offset
//! 48      8     sources     section offset
//! 56      8     probs       section offset
//! 64      8     in_offsets  section offset
//! 72      8     in_edges    section offset
//! 80      8     file length (u64) — must equal the actual size
//! 88      40    reserved, zero
//! 128     ...   sections
//! ```
//!
//! Every section offset is 64-byte aligned (mmap bases are page-aligned,
//! so aligned offsets give aligned element pointers). Sections, in file
//! order: `out_offsets` (`n+1` × u32), `out_targets` (`m` × u32),
//! `sources` (`m` × u32), `probs` (`m` × f64, or f32 when flag bit 0 is
//! set), `in_offsets` (`n+1` × u32), `in_edges` (`m` × u32).
//!
//! # Loading
//!
//! [`load_graph_v2`] maps the file read-only and hands out
//! [`EdgeStorage`] views into the mapping — no per-edge parsing, no heap
//! copy of the topology. One sequential validation pass checks the CSR
//! invariants (monotonic offsets, in-range targets/edge ids,
//! probabilities in `(0, 1]`), which doubles as page-cache warmup. On
//! platforms without `mmap` — or for f32 probability files, whose prob
//! array must be widened — the affected arrays are copied to the heap
//! instead; the result is identical either way.

use crate::error::GraphError;
use crate::graph::{CsrParts, UncertainGraph};
use crate::ids::{EdgeId, NodeId};
use crate::mmap::Mmap;
use crate::probability::{Probability, ProbabilityError};
use crate::storage::EdgeStorage;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic string opening every v2 binary graph file.
pub const MAGIC_V2: &[u8; 8] = b"UGRAPHB2";
/// Version number carried in the v2 header.
pub const VERSION_V2: u32 = 2;
/// Header size in bytes; the first section starts here.
pub const HEADER_LEN: usize = 128;
/// Alignment of every section offset.
pub const SECTION_ALIGN: usize = 64;
/// Flag bit 0: probabilities are stored as `f32` instead of `f64`.
pub const FLAG_PROBS_F32: u32 = 1;

const SECTION_NAMES: [&str; 6] = [
    "out_offsets",
    "out_targets",
    "sources",
    "probs",
    "in_offsets",
    "in_edges",
];

/// Parsed v2 header.
struct Header {
    flags: u32,
    n: usize,
    m: usize,
    sections: [u64; 6],
}

impl Header {
    fn prob_width(&self) -> usize {
        if self.flags & FLAG_PROBS_F32 != 0 {
            4
        } else {
            8
        }
    }

    /// Element count per section, in file order.
    fn section_lens(&self) -> [usize; 6] {
        [self.n + 1, self.m, self.m, self.m, self.n + 1, self.m]
    }

    /// Element width per section, in file order.
    fn section_widths(&self) -> [usize; 6] {
        [4, 4, 4, self.prob_width(), 4, 4]
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

/// Parse and validate the header against the actual file length.
fn parse_header(bytes: &[u8]) -> Result<Header, GraphError> {
    if bytes.len() < HEADER_LEN {
        return Err(GraphError::Truncated {
            context: "v2 header",
            needed: HEADER_LEN as u64,
            available: bytes.len() as u64,
        });
    }
    if &bytes[..8] != MAGIC_V2 {
        return Err(GraphError::BadMagic {
            found: bytes[..8].to_vec(),
        });
    }
    let version = read_u32(bytes, 8);
    if version != VERSION_V2 {
        return Err(GraphError::UnsupportedVersion { version });
    }
    let flags = read_u32(bytes, 12);
    if flags & !FLAG_PROBS_F32 != 0 {
        return Err(GraphError::BadSection {
            section: "header",
            message: format!("unknown flag bits {flags:#x}"),
        });
    }
    let n = read_u64(bytes, 16);
    let m = read_u64(bytes, 24);
    if n >= u32::MAX as u64 || m > u32::MAX as u64 {
        return Err(GraphError::BadSection {
            section: "header",
            message: format!("n={n} / m={m} exceed 32-bit id space"),
        });
    }
    let mut sections = [0u64; 6];
    for (i, s) in sections.iter_mut().enumerate() {
        *s = read_u64(bytes, 32 + 8 * i);
    }
    let file_len = read_u64(bytes, 80);
    let header = Header {
        flags,
        n: n as usize,
        m: m as usize,
        sections,
    };

    if file_len != bytes.len() as u64 {
        return Err(GraphError::Truncated {
            context: "v2 sections",
            needed: file_len,
            available: bytes.len() as u64,
        });
    }
    let lens = header.section_lens();
    let widths = header.section_widths();
    for i in 0..6 {
        let off = header.sections[i];
        if off % SECTION_ALIGN as u64 != 0 {
            return Err(GraphError::BadSection {
                section: SECTION_NAMES[i],
                message: format!("offset {off} is not {SECTION_ALIGN}-byte aligned"),
            });
        }
        let bytes_needed = (lens[i] as u64)
            .checked_mul(widths[i] as u64)
            .and_then(|b| off.checked_add(b));
        match bytes_needed {
            Some(end) if end <= file_len => {}
            _ => {
                return Err(GraphError::BadSection {
                    section: SECTION_NAMES[i],
                    message: format!(
                        "offset {off} + {} elements overflows file of {file_len} bytes",
                        lens[i]
                    ),
                });
            }
        }
    }
    Ok(header)
}

/// Validate the CSR invariants on loaded (or mapped) arrays. One
/// sequential pass over every section; on the mmap path this doubles as
/// page-cache warmup for the whole graph.
fn validate_parts(
    n: usize,
    m: usize,
    (out_offsets, out_targets, sources, probs, in_offsets, in_edges): CsrParts,
) -> Result<(), GraphError> {
    for (name, offsets) in [("out_offsets", out_offsets), ("in_offsets", in_offsets)] {
        if offsets.len() != n + 1 || offsets[0] != 0 || offsets[n] as usize != m {
            return Err(GraphError::BadSection {
                section: if name == "out_offsets" {
                    "out_offsets"
                } else {
                    "in_offsets"
                },
                message: format!("offsets must run 0..={m} over {n} nodes"),
            });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::BadSection {
                section: if name == "out_offsets" {
                    "out_offsets"
                } else {
                    "in_offsets"
                },
                message: "offsets are not monotonically non-decreasing".into(),
            });
        }
    }
    if out_targets.iter().any(|t| t.index() >= n) || sources.iter().any(|s| s.index() >= n) {
        return Err(GraphError::BadSection {
            section: "out_targets",
            message: format!("edge endpoint out of range for {n} nodes"),
        });
    }
    if in_edges.iter().any(|e| e.index() >= m) {
        return Err(GraphError::BadSection {
            section: "in_edges",
            message: format!("edge id out of range for {m} edges"),
        });
    }
    for p in probs {
        let v = p.value();
        if !(v.is_finite() && v > 0.0 && v <= 1.0) {
            return Err(GraphError::InvalidProbability(ProbabilityError(v)));
        }
    }
    Ok(())
}

/// Little-endian section serialization. On little-endian targets a
/// whole `Pod` slice is one bulk write; elsewhere each element is
/// converted explicitly.
trait WriteLe: crate::storage::Pod {
    /// The element as little-endian file bytes.
    fn le_bytes(self) -> [u8; 8];
    /// Element width in the file (4 or 8).
    const WIDTH: usize;

    fn write_section(w: &mut impl Write, s: &[Self]) -> std::io::Result<()> {
        if cfg!(target_endian = "little") {
            // SAFETY: Pod guarantees no padding or invalid bytes, and on
            // little-endian targets native order is the file order.
            let bytes = unsafe {
                std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s))
            };
            w.write_all(bytes)
        } else {
            for &e in s {
                w.write_all(&e.le_bytes()[..Self::WIDTH])?;
            }
            Ok(())
        }
    }
}

impl WriteLe for u32 {
    const WIDTH: usize = 4;
    fn le_bytes(self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[..4].copy_from_slice(&self.to_le_bytes());
        b
    }
}

impl WriteLe for NodeId {
    const WIDTH: usize = 4;
    fn le_bytes(self) -> [u8; 8] {
        self.0.le_bytes()
    }
}

impl WriteLe for EdgeId {
    const WIDTH: usize = 4;
    fn le_bytes(self) -> [u8; 8] {
        self.0.le_bytes()
    }
}

impl WriteLe for Probability {
    const WIDTH: usize = 8;
    fn le_bytes(self) -> [u8; 8] {
        self.value().to_le_bytes()
    }
}

/// Write raw CSR arrays as a v2 file. This is the single writer both
/// [`write_graph_v2`] and the streaming generators go through, so large
/// graphs are emitted straight from their column arrays without any
/// intermediate edge-tuple representation.
pub fn write_v2_parts(
    path: &Path,
    out_offsets: &[u32],
    out_targets: &[NodeId],
    sources: &[NodeId],
    probs: &[Probability],
    in_offsets: &[u32],
    in_edges: &[EdgeId],
) -> Result<(), GraphError> {
    let n = out_offsets
        .len()
        .checked_sub(1)
        .ok_or_else(|| GraphError::BadSection {
            section: "out_offsets",
            message: "out_offsets must have n + 1 entries".into(),
        })?;
    let m = out_targets.len();
    validate_parts(
        n,
        m,
        (
            out_offsets,
            out_targets,
            sources,
            probs,
            in_offsets,
            in_edges,
        ),
    )?;

    let lens: [usize; 6] = [n + 1, m, m, m, n + 1, m];
    let widths: [usize; 6] = [4, 4, 4, 8, 4, 4];
    let mut sections = [0u64; 6];
    let mut cursor = HEADER_LEN;
    for i in 0..6 {
        cursor = align_up(cursor, SECTION_ALIGN);
        sections[i] = cursor as u64;
        cursor += lens[i] * widths[i];
    }
    let file_len = cursor as u64;

    let mut w = BufWriter::new(File::create(path)?);
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(MAGIC_V2);
    header[8..12].copy_from_slice(&VERSION_V2.to_le_bytes());
    header[12..16].copy_from_slice(&0u32.to_le_bytes());
    header[16..24].copy_from_slice(&(n as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(m as u64).to_le_bytes());
    for (i, s) in sections.iter().enumerate() {
        header[32 + 8 * i..40 + 8 * i].copy_from_slice(&s.to_le_bytes());
    }
    header[80..88].copy_from_slice(&file_len.to_le_bytes());
    w.write_all(&header)?;

    let mut written = HEADER_LEN as u64;
    let pad_to = |w: &mut BufWriter<File>, written: &mut u64, off: u64| -> Result<(), GraphError> {
        debug_assert!(off >= *written);
        let pad = (off - *written) as usize;
        w.write_all(&[0u8; SECTION_ALIGN][..pad])?;
        *written = off;
        Ok(())
    };

    macro_rules! write_section {
        ($idx:expr, $slice:expr, $ty:ty) => {{
            pad_to(&mut w, &mut written, sections[$idx])?;
            <$ty as WriteLe>::write_section(&mut w, $slice)?;
            written += ($slice.len() * <$ty as WriteLe>::WIDTH) as u64;
        }};
    }
    write_section!(0, out_offsets, u32);
    write_section!(1, out_targets, NodeId);
    write_section!(2, sources, NodeId);
    write_section!(3, probs, Probability);
    write_section!(4, in_offsets, u32);
    write_section!(5, in_edges, EdgeId);
    debug_assert_eq!(written, file_len);
    w.flush()?;
    Ok(())
}

/// Write `graph` to `path` in the v2 format (f64 probabilities).
pub fn write_graph_v2(graph: &UncertainGraph, path: &Path) -> Result<(), GraphError> {
    let (oo, ot, src, pr, io_, ie) = graph.csr_parts();
    write_v2_parts(path, oo, ot, src, pr, io_, ie)
}

/// A graph loaded from a v2 file, plus how it was loaded.
#[derive(Debug)]
pub struct LoadedV2 {
    /// The loaded graph.
    pub graph: UncertainGraph,
    /// True if the CSR arrays are zero-copy views into a memory mapping;
    /// false if the file was copied to the heap (non-Unix platform, or a
    /// mapping failure fallback).
    pub mmapped: bool,
}

/// Load a v2 binary graph, preferring the zero-copy mmap path.
pub fn load_graph_v2(path: &Path) -> Result<LoadedV2, GraphError> {
    let file = File::open(path)?;
    // The mapped views reinterpret little-endian file bytes in place,
    // which is only correct on little-endian targets; elsewhere we
    // always take the converting heap path.
    if cfg!(target_endian = "little") {
        if let Ok(map) = Mmap::map_file(&file) {
            return load_mapped(Arc::new(map));
        }
    }
    let mut bytes = Vec::new();
    let mut file = file;
    file.read_to_end(&mut bytes)?;
    let graph = load_heap(&bytes)?;
    Ok(LoadedV2 {
        graph,
        mmapped: false,
    })
}

/// Load a v2 binary graph forcing the copying heap path (no mmap).
/// The cold-start bench uses this as the full-parse baseline the mmap
/// path is measured against on the same file.
pub fn load_graph_v2_heap(path: &Path) -> Result<UncertainGraph, GraphError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    load_heap(&bytes)
}

/// Zero-copy path: every f64-prob section becomes a view into `map`.
fn load_mapped(map: Arc<Mmap>) -> Result<LoadedV2, GraphError> {
    // The validation pass below touches every section sequentially, so
    // ask the kernel to start readahead now instead of faulting one
    // page at a time. Hints are advisory; failures are ignored.
    let _ = map.advise(crate::mmap::Advice::WillNeed);
    let header = parse_header(map.as_slice())?;
    let (n, m) = (header.n, header.m);
    let s = &header.sections;
    fn bad_view(section: &'static str) -> GraphError {
        GraphError::BadSection {
            section,
            message: "section window invalid for mapped view".into(),
        }
    }
    let out_offsets: EdgeStorage<u32> = EdgeStorage::from_mapped(&map, s[0] as usize, n + 1)
        .ok_or_else(|| bad_view("out_offsets"))?;
    let out_targets: EdgeStorage<NodeId> =
        EdgeStorage::from_mapped(&map, s[1] as usize, m).ok_or_else(|| bad_view("out_targets"))?;
    let sources: EdgeStorage<NodeId> =
        EdgeStorage::from_mapped(&map, s[2] as usize, m).ok_or_else(|| bad_view("sources"))?;
    let probs: EdgeStorage<Probability> = if header.prob_width() == 8 {
        EdgeStorage::from_mapped(&map, s[3] as usize, m).ok_or_else(|| bad_view("probs"))?
    } else {
        // f32 files cannot be viewed as f64: widen onto the heap. The
        // topology stays mapped.
        let f32s: EdgeStorage<f32> =
            EdgeStorage::from_mapped(&map, s[3] as usize, m).ok_or_else(|| bad_view("probs"))?;
        widen_probs(&f32s)?.into()
    };
    let in_offsets: EdgeStorage<u32> = EdgeStorage::from_mapped(&map, s[4] as usize, n + 1)
        .ok_or_else(|| bad_view("in_offsets"))?;
    let in_edges: EdgeStorage<EdgeId> =
        EdgeStorage::from_mapped(&map, s[5] as usize, m).ok_or_else(|| bad_view("in_edges"))?;

    validate_parts(
        n,
        m,
        (
            &out_offsets,
            &out_targets,
            &sources,
            &probs,
            &in_offsets,
            &in_edges,
        ),
    )?;
    // Validation is done; from here on access is point lookups driven
    // by sampling, so readahead would only drag in untouched pages.
    let _ = map.advise(crate::mmap::Advice::Random);
    Ok(LoadedV2 {
        graph: UncertainGraph::from_parts(
            out_offsets,
            out_targets,
            sources,
            probs,
            in_offsets,
            in_edges,
        ),
        mmapped: true,
    })
}

/// Heap fallback: decode every section out of `bytes` element by element
/// (endian-correct on any platform).
fn load_heap(bytes: &[u8]) -> Result<UncertainGraph, GraphError> {
    let header = parse_header(bytes)?;
    let (n, m) = (header.n, header.m);
    let s = &header.sections;
    let u32s = |off: u64, len: usize| -> Vec<u32> {
        bytes[off as usize..off as usize + len * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    };
    let out_offsets = u32s(s[0], n + 1);
    let out_targets: Vec<NodeId> = u32s(s[1], m).into_iter().map(NodeId).collect();
    let sources: Vec<NodeId> = u32s(s[2], m).into_iter().map(NodeId).collect();
    let raw_probs: Vec<f64> = if header.prob_width() == 8 {
        bytes[s[3] as usize..s[3] as usize + m * 8]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    } else {
        bytes[s[3] as usize..s[3] as usize + m * 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()) as f64)
            .collect()
    };
    let probs: Vec<Probability> = raw_probs
        .into_iter()
        .map(Probability::new)
        .collect::<Result<_, _>>()?;
    let in_offsets = u32s(s[4], n + 1);
    let in_edges: Vec<EdgeId> = u32s(s[5], m).into_iter().map(EdgeId).collect();

    validate_parts(
        n,
        m,
        (
            &out_offsets,
            &out_targets,
            &sources,
            &probs,
            &in_offsets,
            &in_edges,
        ),
    )?;
    Ok(UncertainGraph::from_parts(
        out_offsets.into(),
        out_targets.into(),
        sources.into(),
        probs.into(),
        in_offsets.into(),
        in_edges.into(),
    ))
}

/// Widen an f32 probability section to validated f64 probabilities.
fn widen_probs(f32s: &[f32]) -> Result<Vec<Probability>, GraphError> {
    f32s.iter()
        .map(|&p| Probability::new(p as f64).map_err(GraphError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("relcomp_v2_{}_{tag}_{id}.ug2", std::process::id()))
    }

    fn diamond() -> UncertainGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.8).unwrap();
        b.build()
    }

    fn assert_same_graph(a: &UncertainGraph, b: &UncertainGraph) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for ((e1, u1, v1, p1), (e2, u2, v2, p2)) in a.edges().zip(b.edges()) {
            assert_eq!(e1, e2);
            assert_eq!(u1, u2);
            assert_eq!(v1, v2);
            assert_eq!(
                p1.value().to_bits(),
                p2.value().to_bits(),
                "probs not bit-identical"
            );
        }
        for v in a.nodes() {
            assert_eq!(
                a.in_edges(v).collect::<Vec<_>>(),
                b.in_edges(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn v2_round_trip_preserves_graph() {
        let g = diamond();
        let path = temp_path("roundtrip");
        write_graph_v2(&g, &path).unwrap();
        let loaded = load_graph_v2(&path).unwrap();
        assert_same_graph(&g, &loaded.graph);
        #[cfg(unix)]
        {
            assert!(loaded.mmapped);
            assert!(loaded.graph.is_mapped());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_heap_path_matches_mapped_path() {
        let g = diamond();
        let path = temp_path("heap");
        write_graph_v2(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let heap = load_heap(&bytes).unwrap();
        assert_same_graph(&g, &heap);
        assert!(!heap.is_mapped());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = temp_path("magic");
        let g = diamond();
        write_graph_v2(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[..8].copy_from_slice(b"NOTAGRPH");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::BadMagic { .. }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_version() {
        let path = temp_path("version");
        write_graph_v2(&diamond(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::UnsupportedVersion { version: 7 }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let path = temp_path("trunc");
        write_graph_v2(&diamond(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::Truncated { .. }
        ));
        // Shorter than the header entirely.
        std::fs::write(&path, &bytes[..40]).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::Truncated { .. }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_unaligned_section_offset() {
        let path = temp_path("align");
        write_graph_v2(&diamond(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Knock out_targets off alignment.
        let off = read_u64(&bytes, 40) + 4;
        bytes[40..48].copy_from_slice(&off.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::BadSection {
                section: "out_targets",
                ..
            }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_overflowing_section_offset() {
        let path = temp_path("overflow");
        write_graph_v2(&diamond(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let far = (bytes.len() as u64 + SECTION_ALIGN as u64) / SECTION_ALIGN as u64
            * SECTION_ALIGN as u64;
        bytes[56..64].copy_from_slice(&far.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::BadSection {
                section: "probs",
                ..
            }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_out_of_range_probability() {
        let path = temp_path("badprob");
        write_graph_v2(&diamond(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let probs_off = read_u64(&bytes, 56) as usize;
        bytes[probs_off..probs_off + 8].copy_from_slice(&1.5f64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::InvalidProbability(_)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_out_of_range_target() {
        let path = temp_path("badtarget");
        write_graph_v2(&diamond(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let targets_off = read_u64(&bytes, 40) as usize;
        bytes[targets_off..targets_off + 4].copy_from_slice(&999u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::BadSection {
                section: "out_targets",
                ..
            }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_non_monotonic_offsets() {
        let path = temp_path("monotonic");
        write_graph_v2(&diamond(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let oo = read_u64(&bytes, 32) as usize;
        // out_offsets for diamond is [0,2,3,4,4]; corrupt slot 1 to 3 > slot 2.
        bytes[oo + 4..oo + 8].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_graph_v2(&path).unwrap_err(),
            GraphError::BadSection {
                section: "out_offsets",
                ..
            }
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mapped_graph_supports_cow_prob_updates() {
        let g = diamond();
        let path = temp_path("cow");
        write_graph_v2(&g, &path).unwrap();
        let loaded = load_graph_v2(&path).unwrap().graph;
        let e = loaded.find_edge(NodeId(0), NodeId(1)).unwrap();
        let snap = loaded.with_updated_probs(&[crate::update::EdgeUpdate::new(e, 0.123).unwrap()]);
        assert!(
            loaded.same_topology(&snap),
            "CoW snapshot must share mapped topology"
        );
        assert!((snap.prob(e).value() - 0.123).abs() < 1e-15);
        assert!((loaded.prob(e).value() - 0.5).abs() < 1e-15);
        std::fs::remove_file(path).ok();
    }
}
