//! Property tests: any buildable uncertain graph survives a save/load
//! round trip through **both** on-disk formats.
//!
//! * Text (`save_graph`/`load_graph`): probabilities print via Rust's
//!   shortest-round-trip float `Display`, so re-parsing recovers the
//!   exact bits.
//! * Binary (`save_graph_binary`/`load_graph_binary`): raw
//!   little-endian `f64`, bit-exact by construction.
//! * v2 binary (`write_graph_v2`/`load_graph_v2`): the mmap-able CSR
//!   image, bit-exact through both the zero-copy and heap load paths.

use proptest::prelude::*;
use relcomp_ugraph::io::{load_graph, load_graph_binary, save_graph, save_graph_binary};
use relcomp_ugraph::{
    load_graph_v2, load_graph_v2_heap, write_graph_v2, GraphBuilder, NodeId, UncertainGraph,
};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temp path per generated case (tests may run concurrently).
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "relcomp_io_roundtrip_{}_{id}_{tag}",
        std::process::id()
    ))
}

/// Build a graph from raw generated edges, skipping self-loops and
/// duplicates (the strict builder rejects both).
fn build(n: usize, raw_edges: &[(usize, usize, f64)]) -> UncertainGraph {
    let mut b = GraphBuilder::new(n);
    let mut seen = HashSet::new();
    for &(u, v, p) in raw_edges {
        let (u, v) = (u % n, v % n);
        if u == v || !seen.insert((u, v)) {
            continue;
        }
        b.add_edge(NodeId(u as u32), NodeId(v as u32), p)
            .expect("probability in (0, 1]");
    }
    b.build()
}

fn assert_graphs_identical(original: &UncertainGraph, loaded: &UncertainGraph) {
    assert_eq!(loaded.num_nodes(), original.num_nodes());
    assert_eq!(loaded.num_edges(), original.num_edges());
    for (e, u, v, p) in original.edges() {
        let e2 = loaded
            .find_edge(u, v)
            .unwrap_or_else(|| panic!("edge {u} -> {v} lost in round trip"));
        assert_eq!(e2, e, "edge order changed");
        assert_eq!(
            loaded.prob(e2).value().to_bits(),
            p.value().to_bits(),
            "probability of {u} -> {v} not bit-exact"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_format_round_trips(
        (n, raw_edges) in (1usize..30).prop_flat_map(|n| {
            (
                Just(n),
                collection::vec((0usize..30, 0usize..30, 0.001f64..1.0), 1..60),
            )
        })
    ) {
        let graph = build(n, &raw_edges);
        let path = temp_path("text");
        save_graph(&graph, &path).expect("save text");
        let loaded = load_graph(&path).expect("load text");
        std::fs::remove_file(&path).ok();
        assert_graphs_identical(&graph, &loaded);
    }

    #[test]
    fn binary_format_round_trips(
        (n, raw_edges) in (1usize..30).prop_flat_map(|n| {
            (
                Just(n),
                collection::vec((0usize..30, 0usize..30, 0.001f64..1.0), 1..60),
            )
        })
    ) {
        let graph = build(n, &raw_edges);
        let path = temp_path("binary");
        save_graph_binary(&graph, &path).expect("save binary");
        let loaded = load_graph_binary(&path).expect("load binary");
        std::fs::remove_file(&path).ok();
        assert_graphs_identical(&graph, &loaded);
    }

    #[test]
    fn v2_format_round_trips_via_both_load_paths(
        (n, raw_edges) in (1usize..30).prop_flat_map(|n| {
            (
                Just(n),
                collection::vec((0usize..30, 0usize..30, 0.001f64..1.0), 1..60),
            )
        })
    ) {
        let graph = build(n, &raw_edges);
        let path = temp_path("v2");
        write_graph_v2(&graph, &path).expect("write v2");
        let loaded = load_graph_v2(&path).expect("load v2");
        if cfg!(all(unix, target_endian = "little")) {
            prop_assert!(loaded.mmapped, "expected zero-copy load on unix LE");
        }
        assert_graphs_identical(&graph, &loaded.graph);
        // The forced heap decode must agree with the mapped view.
        let heap = load_graph_v2_heap(&path).expect("load v2 heap");
        std::fs::remove_file(&path).ok();
        assert_graphs_identical(&graph, &heap);
    }

    #[test]
    fn formats_agree_with_each_other(
        (n, raw_edges) in (1usize..20).prop_flat_map(|n| {
            (
                Just(n),
                collection::vec((0usize..20, 0usize..20, 0.001f64..1.0), 1..30),
            )
        })
    ) {
        // Saving through either format and loading back must yield the
        // same graph, edge for edge, bit for bit.
        let graph = build(n, &raw_edges);
        let (pt, pb) = (temp_path("agree_t"), temp_path("agree_b"));
        save_graph(&graph, &pt).expect("save text");
        save_graph_binary(&graph, &pb).expect("save binary");
        let from_text = load_graph(&pt).expect("load text");
        let from_binary = load_graph_binary(&pb).expect("load binary");
        std::fs::remove_file(&pt).ok();
        std::fs::remove_file(&pb).ok();
        assert_graphs_identical(&from_text, &from_binary);
    }
}
