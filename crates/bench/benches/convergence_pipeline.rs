//! End-to-end cost of one convergence-protocol cell (`measure_at_k`) —
//! the unit of work every experiment binary is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::{build_estimator, EstimatorKind, SuiteParams};
use relcomp_eval::convergence::measure_at_k;
use relcomp_eval::Workload;
use relcomp_ugraph::Dataset;
use std::sync::Arc;

fn bench_convergence_cell(c: &mut Criterion) {
    let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.1, 42));
    let workload = Workload::generate(&graph, 3, 2, 7);
    let params = SuiteParams {
        bfs_sharing_worlds: 300,
        ..Default::default()
    };

    let mut group = c.benchmark_group("measure_at_k250_t3");
    group.sample_size(10);
    for kind in [
        EstimatorKind::Mc,
        EstimatorKind::Rss,
        EstimatorKind::ProbTree,
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut est = build_estimator(kind, Arc::clone(&graph), params, &mut rng);
        group.bench_function(BenchmarkId::from_parameter(kind.display_name()), |b| {
            b.iter(|| {
                measure_at_k(est.as_mut(), &workload, 250, 3, &mut rng)
                    .metrics
                    .rho
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence_cell);
criterion_main!(benches);
