//! Offline index-construction cost (Fig. 13a): BFS Sharing world sampling
//! vs ProbTree FWD decomposition + pre-computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::bfs_sharing::BfsSharingIndex;
use relcomp_core::probtree::ProbTreeIndex;
use relcomp_ugraph::Dataset;
use std::sync::Arc;

fn bench_index_build(c: &mut Criterion) {
    let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.2, 42));

    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for l in [250usize, 1000] {
        group.bench_function(BenchmarkId::new("bfs_sharing", l), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                BfsSharingIndex::build(&graph, l, &mut rng).size_bytes()
            })
        });
    }
    group.bench_function("probtree_fwd_w2", |b| {
        b.iter(|| ProbTreeIndex::build(Arc::clone(&graph)).size_bytes())
    });
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
