//! Per-sample cost of each estimator (the paper's "time per sample"
//! column of Tables 9-14), measured with Criterion on the LastFM analog.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::{build_estimator, EstimatorKind, SuiteParams};
use relcomp_eval::Workload;
use relcomp_ugraph::Dataset;
use std::sync::Arc;

fn bench_per_sample(c: &mut Criterion) {
    let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.2, 42));
    let workload = Workload::generate(&graph, 4, 2, 7);
    let params = SuiteParams {
        bfs_sharing_worlds: 300,
        ..Default::default()
    };
    let k = 250;

    let mut group = c.benchmark_group("per_sample_k250");
    group.sample_size(10);
    for kind in EstimatorKind::PAPER_SIX {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut est = build_estimator(kind, Arc::clone(&graph), params, &mut rng);
        group.bench_function(BenchmarkId::from_parameter(kind.display_name()), |b| {
            b.iter(|| {
                let mut total = 0.0;
                for &(s, t) in &workload.pairs {
                    total += est.estimate(s, t, k, &mut rng).reliability;
                }
                total
            })
        });
    }
    group.finish();
}

/// Scalar MC vs the packed 64-world kernel at a packed-friendly budget
/// (k = 1024 is a multiple of 64, so every packed batch is word-sized).
fn bench_packed_vs_scalar(c: &mut Criterion) {
    let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.2, 42));
    let workload = Workload::generate(&graph, 4, 2, 7);
    let k = 1024;

    let mut group = c.benchmark_group("packed_vs_scalar_k1024");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut scalar = relcomp_core::mc::McSampling::new(Arc::clone(&graph));
    group.bench_function("mc_scalar", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &(s, t) in &workload.pairs {
                total +=
                    relcomp_core::Estimator::estimate(&mut scalar, s, t, k, &mut rng).reliability;
            }
            total
        })
    });
    let mut packed = relcomp_core::PackedMcSampling::new(Arc::clone(&graph));
    group.bench_function("mc_packed", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &(s, t) in &workload.pairs {
                total +=
                    relcomp_core::Estimator::estimate(&mut packed, s, t, k, &mut rng).reliability;
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_per_sample, bench_packed_vs_scalar);
criterion_main!(benches);
