//! ProbTree query-graph extraction cost (the online overhead Algorithm 8
//! pays before sampling starts) plus BFS-Sharing index refresh (Table 15).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::bfs_sharing::BfsSharingIndex;
use relcomp_core::probtree::ProbTreeIndex;
use relcomp_eval::Workload;
use relcomp_ugraph::Dataset;
use std::sync::Arc;

fn bench_query_extraction(c: &mut Criterion) {
    let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.2, 42));
    let workload = Workload::generate(&graph, 8, 2, 7);
    let index = ProbTreeIndex::build(Arc::clone(&graph));

    let mut group = c.benchmark_group("online_overheads");
    group.sample_size(20);
    group.bench_function("probtree_extract_query_graph", |b| {
        b.iter(|| {
            let mut nodes = 0usize;
            for &(s, t) in &workload.pairs {
                nodes += index.extract_query_graph(s, t).graph.num_nodes();
            }
            nodes
        })
    });

    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut bfss = BfsSharingIndex::build(&graph, 1000, &mut rng);
    group.bench_function("bfs_sharing_refresh_l1000", |b| {
        b.iter(|| bfss.resample(&graph, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_query_extraction);
criterion_main!(benches);
