//! Shared plumbing for the experiment binaries: CLI parsing and report
//! emission.
//!
//! Every binary accepts the same arguments:
//!
//! ```text
//! <binary> [quick|paper] [--seed N]
//! ```
//!
//! `quick` (default) runs reduced workloads that finish in seconds to
//! minutes; `paper` uses the paper's workload sizes (§3.1.3). Reports are
//! printed to stdout and mirrored under `results/`.

#![warn(missing_docs)]

use relcomp_eval::RunProfile;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Selected run profile.
    pub profile: RunProfile,
    /// Master seed (default 42).
    pub seed: u64,
}

/// Parse `std::env::args` into [`Cli`]; exits with usage on bad input.
pub fn cli() -> Cli {
    parse_args(std::env::args().skip(1).collect()).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: <binary> [quick|paper] [--seed N]");
        std::process::exit(2);
    })
}

/// Testable argument parser behind [`cli`].
pub fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut profile = RunProfile::Quick;
    let mut seed = 42u64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            other => {
                profile =
                    RunProfile::parse(other).ok_or_else(|| format!("unknown argument: {other}"))?;
            }
        }
    }
    Ok(Cli { profile, seed })
}

/// Print a report and mirror it to `results/<name>.txt`.
pub fn emit(name: &str, report: &str) {
    println!("{report}");
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// Nearest-rank percentile of an already-sorted latency sample
/// (`q` in `[0, 1]`). Shared by the closed-loop serving benches so
/// their latency columns stay comparable.
///
/// # Panics
/// Panics on an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// `results/` at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../..").join("results"),
        Err(_) => PathBuf::from("results"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let c = parse_args(vec![]).unwrap();
        assert_eq!(c.profile, RunProfile::Quick);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn parses_profile_and_seed() {
        let c = parse_args(vec!["paper".into(), "--seed".into(), "7".into()]).unwrap();
        assert_eq!(c.profile, RunProfile::Paper);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_args(vec!["bogus".into()]).is_err());
        assert!(parse_args(vec!["--seed".into()]).is_err());
        assert!(parse_args(vec!["--seed".into(), "x".into()]).is_err());
    }
}
