//! Shared plumbing for the experiment binaries: CLI parsing and report
//! emission.
//!
//! Every binary accepts the same arguments:
//!
//! ```text
//! <binary> [quick|paper] [--seed N]
//! ```
//!
//! `quick` (default) runs reduced workloads that finish in seconds to
//! minutes; `paper` uses the paper's workload sizes (§3.1.3). Reports are
//! printed to stdout and mirrored under `results/`.

#![warn(missing_docs)]

use relcomp_eval::RunProfile;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Selected run profile.
    pub profile: RunProfile,
    /// Master seed (default 42).
    pub seed: u64,
}

/// Parse `std::env::args` into [`Cli`]; exits with usage on bad input.
pub fn cli() -> Cli {
    parse_args(std::env::args().skip(1).collect()).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: <binary> [quick|paper] [--seed N]");
        std::process::exit(2);
    })
}

/// Testable argument parser behind [`cli`].
pub fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut profile = RunProfile::Quick;
    let mut seed = 42u64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            other => {
                profile =
                    RunProfile::parse(other).ok_or_else(|| format!("unknown argument: {other}"))?;
            }
        }
    }
    Ok(Cli { profile, seed })
}

/// Print a report and mirror it to `results/<name>.txt`.
pub fn emit(name: &str, report: &str) {
    println!("{report}");
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// Nearest-rank percentile of an already-sorted latency sample
/// (`q` in `[0, 1]`). Shared by the closed-loop serving benches so
/// their latency columns stay comparable.
///
/// # Panics
/// Panics on an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// `results/` at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../..").join("results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// The workspace root (where `BENCH_summary.json` lands; falls back to
/// CWD).
pub fn repo_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../.."),
        Err(_) => PathBuf::from("."),
    }
}

/// Fixed-k vs adaptive-session comparison shared by the
/// `adaptive_stopping` bin and `run_all`'s `BENCH_summary.json` emission.
pub mod adaptive {
    use rand::RngCore;
    use relcomp_core::{EstimatorKind, ParallelSampler, SampleBudget, StopReason};
    use relcomp_eval::{ExperimentEnv, RunProfile};
    use relcomp_ugraph::Dataset;
    use serde::Serialize;
    use std::sync::Arc;

    /// One (dataset, estimator) comparison row.
    #[derive(Clone, Debug, Serialize)]
    pub struct Row {
        /// Dataset analog name.
        pub dataset: String,
        /// Estimator display name.
        pub estimator: String,
        /// Workload pairs measured.
        pub pairs: usize,
        /// The fixed budget every query historically ran (paper default).
        pub fixed_samples: usize,
        /// Wall milliseconds for the fixed pass over all pairs.
        pub fixed_wall_ms: f64,
        /// Mean achieved relative half-width under the fixed budget
        /// (`None` when the estimator reports no CI — single recursions).
        pub fixed_rel_hw: Option<f64>,
        /// Mean samples the adaptive sessions consumed per pair.
        pub adaptive_avg_samples: f64,
        /// Smallest per-pair adaptive consumption (the early-exit case).
        pub adaptive_min_samples: usize,
        /// Wall milliseconds for the adaptive pass over all pairs.
        pub adaptive_wall_ms: f64,
        /// Pairs whose session met the eps target before the cap.
        pub converged_pairs: usize,
        /// Mean samples over the *converged* pairs only (`None` when no
        /// pair converged) — the honest early-exit headline, undiluted
        /// by pairs that ran to the cap.
        pub converged_avg_samples: Option<f64>,
        /// Pairs whose session met the target with *fewer* samples than
        /// the fixed budget — the headline early-exit count.
        pub early_exit_pairs: usize,
    }

    /// Run the comparison: every paper-six estimator answers the
    /// workload once at `fixed_k` and once adaptively (`eps` target at
    /// 95% confidence, capped at `cap`).
    pub fn compare(
        dataset: Dataset,
        profile: RunProfile,
        seed: u64,
        eps: f64,
        fixed_k: usize,
        cap: usize,
    ) -> Vec<Row> {
        let mut env = ExperimentEnv::prepare(dataset, profile, 1, seed);
        // The shared index must cover the adaptive cap.
        env.params.bfs_sharing_worlds = cap.max(fixed_k);
        let budget = SampleBudget::adaptive(eps, cap);
        let mut rows = Vec::new();
        for &kind in &EstimatorKind::PAPER_SIX {
            let mut est = env.estimator(kind);
            let mut rng = env.rng(0xada0 ^ kind as u64);

            let mut fixed_wall = 0.0f64;
            let mut fixed_hw_sum = 0.0f64;
            let mut fixed_hw_count = 0usize;
            for &(s, t) in &env.workload.pairs {
                est.refresh(&mut rng);
                let e = est.estimate(s, t, fixed_k, &mut rng);
                fixed_wall += e.elapsed.as_secs_f64() * 1e3;
                if let Some(hw) = e.half_width {
                    if e.reliability > 0.0 {
                        fixed_hw_sum += hw / e.reliability;
                        fixed_hw_count += 1;
                    }
                }
            }

            let mut adaptive_wall = 0.0f64;
            let mut samples_sum = 0usize;
            let mut samples_min = usize::MAX;
            let mut converged = 0usize;
            let mut converged_samples = 0usize;
            let mut early = 0usize;
            for &(s, t) in &env.workload.pairs {
                est.refresh(&mut rng);
                let e = est.estimate_with(s, t, &budget, &mut rng);
                adaptive_wall += e.elapsed.as_secs_f64() * 1e3;
                samples_sum += e.samples;
                samples_min = samples_min.min(e.samples);
                if e.stop_reason == StopReason::Converged {
                    converged += 1;
                    converged_samples += e.samples;
                    if e.samples < fixed_k {
                        early += 1;
                    }
                }
            }

            let pairs = env.workload.len();
            rows.push(Row {
                dataset: dataset.short_name().to_string(),
                estimator: kind.display_name().to_string(),
                pairs,
                fixed_samples: fixed_k,
                fixed_wall_ms: fixed_wall,
                fixed_rel_hw: (fixed_hw_count > 0).then(|| fixed_hw_sum / fixed_hw_count as f64),
                adaptive_avg_samples: samples_sum as f64 / pairs as f64,
                adaptive_min_samples: samples_min,
                adaptive_wall_ms: adaptive_wall,
                converged_pairs: converged,
                converged_avg_samples: (converged > 0)
                    .then(|| converged_samples as f64 / converged as f64),
                early_exit_pairs: early,
            });
        }
        rows
    }

    /// Quick per-estimator timing probe for `BENCH_summary.json`: one
    /// fixed pass at `fixed_k` per estimator on a small workload.
    #[derive(Clone, Debug, Serialize)]
    pub struct EstimatorTiming {
        /// Estimator display name.
        pub estimator: String,
        /// Samples consumed across the workload.
        pub samples: usize,
        /// Wall milliseconds across the workload.
        pub wall_ms: f64,
    }

    /// One extension-workload measurement for `BENCH_summary.json`
    /// (top-k / distance-constrained, fixed vs adaptive).
    #[derive(Clone, Debug, Serialize)]
    pub struct WorkloadTiming {
        /// Served workload name (`topk` / `dquery`).
        pub workload: String,
        /// Budget mode (`fixed` / `adaptive`).
        pub mode: String,
        /// Samples consumed.
        pub samples: usize,
        /// Wall milliseconds.
        pub wall_ms: f64,
        /// Stop-reason label of the run.
        pub stop_reason: String,
    }

    /// Probe the two served extension workloads on the parallel sharded
    /// sampler: one fixed run at `fixed_k` and one eps-adaptive run
    /// (capped at `cap`) each for top-k (`k = 10`) and `R_d` (`d = 4`)
    /// on the first workload pair. The cross-commit perf signal for the
    /// `topk`/`dquery` serving paths.
    pub fn workload_probe(
        env: &ExperimentEnv,
        fixed_k: usize,
        eps: f64,
        cap: usize,
    ) -> Vec<WorkloadTiming> {
        let Some(&(s, t)) = env.workload.pairs.first() else {
            return Vec::new();
        };
        let sampler = ParallelSampler::new(Arc::clone(&env.graph), 2);
        let budget = SampleBudget::adaptive(eps, cap);
        let row = |workload: &str, mode: &str, samples, wall_ms, stop: StopReason| WorkloadTiming {
            workload: workload.to_string(),
            mode: mode.to_string(),
            samples,
            wall_ms,
            stop_reason: stop.label().to_string(),
        };
        let mut out = Vec::new();
        let fixed = sampler.top_k_targets(s, 10, fixed_k, 0xE0);
        out.push(row(
            "topk",
            "fixed",
            fixed.samples,
            fixed.elapsed.as_secs_f64() * 1e3,
            fixed.stop_reason,
        ));
        let adaptive = sampler.top_k_targets_with(s, 10, &budget, 0xE0);
        out.push(row(
            "topk",
            "adaptive",
            adaptive.samples,
            adaptive.elapsed.as_secs_f64() * 1e3,
            adaptive.stop_reason,
        ));
        let d = 4;
        let fixed = sampler.estimate_distance_constrained(s, t, d, fixed_k, 0xD0);
        out.push(row(
            "dquery",
            "fixed",
            fixed.samples,
            fixed.elapsed.as_secs_f64() * 1e3,
            fixed.stop_reason,
        ));
        let adaptive = sampler.estimate_distance_constrained_with(s, t, d, &budget, 0xD0);
        out.push(row(
            "dquery",
            "adaptive",
            adaptive.samples,
            adaptive.elapsed.as_secs_f64() * 1e3,
            adaptive.stop_reason,
        ));
        out
    }

    /// Measure every paper-six estimator at `fixed_k` on `env`'s
    /// workload (refresh excluded from timing, as in the paper).
    pub fn timing_probe(env: &ExperimentEnv, fixed_k: usize) -> Vec<EstimatorTiming> {
        EstimatorKind::PAPER_SIX
            .iter()
            .map(|&kind| {
                let mut est = env.estimator(kind);
                let mut rng = env.rng(0x7173 ^ kind as u64);
                let mut wall = 0.0;
                let mut samples = 0usize;
                for &(s, t) in &env.workload.pairs {
                    est.refresh(&mut rng as &mut dyn RngCore);
                    let e = est.estimate(s, t, fixed_k, &mut rng);
                    wall += e.elapsed.as_secs_f64() * 1e3;
                    samples += e.samples;
                }
                EstimatorTiming {
                    estimator: kind.display_name().to_string(),
                    samples,
                    wall_ms: wall,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let c = parse_args(vec![]).unwrap();
        assert_eq!(c.profile, RunProfile::Quick);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn parses_profile_and_seed() {
        let c = parse_args(vec!["paper".into(), "--seed".into(), "7".into()]).unwrap();
        assert_eq!(c.profile, RunProfile::Paper);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_args(vec!["bogus".into()]).is_err());
        assert!(parse_args(vec!["--seed".into()]).is_err());
        assert!(parse_args(vec!["--seed".into(), "x".into()]).is_err());
    }
}
