//! Shared plumbing for the experiment binaries: CLI parsing and report
//! emission.
//!
//! Every binary accepts the same arguments:
//!
//! ```text
//! <binary> [quick|paper] [--seed N]
//! ```
//!
//! `quick` (default) runs reduced workloads that finish in seconds to
//! minutes; `paper` uses the paper's workload sizes (§3.1.3). Reports are
//! printed to stdout and mirrored under `results/`.

#![warn(missing_docs)]

use relcomp_eval::RunProfile;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Selected run profile.
    pub profile: RunProfile,
    /// Master seed (default 42).
    pub seed: u64,
}

/// Parse `std::env::args` into [`Cli`]; exits with usage on bad input.
pub fn cli() -> Cli {
    parse_args(std::env::args().skip(1).collect()).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: <binary> [quick|paper] [--seed N]");
        std::process::exit(2);
    })
}

/// Testable argument parser behind [`cli`].
pub fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut profile = RunProfile::Quick;
    let mut seed = 42u64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            other => {
                profile =
                    RunProfile::parse(other).ok_or_else(|| format!("unknown argument: {other}"))?;
            }
        }
    }
    Ok(Cli { profile, seed })
}

/// Print a report and mirror it to `results/<name>.txt`.
pub fn emit(name: &str, report: &str) {
    println!("{report}");
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[saved {}]", path.display());
        }
    }
}

/// Nearest-rank percentile of an already-sorted latency sample
/// (`q` in `[0, 1]`). Shared by the closed-loop serving benches so
/// their latency columns stay comparable.
///
/// # Panics
/// Panics on an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// `results/` at the workspace root (falls back to CWD).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../..").join("results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// The workspace root (where `BENCH_summary.json` lands; falls back to
/// CWD).
pub fn repo_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).join("../.."),
        Err(_) => PathBuf::from("."),
    }
}

/// Fixed-k vs adaptive-session comparison shared by the
/// `adaptive_stopping` bin and `run_all`'s `BENCH_summary.json` emission.
pub mod adaptive {
    use rand::RngCore;
    use relcomp_core::mc::McSampling;
    use relcomp_core::{
        Estimator, EstimatorKind, MaximizeOptions, PackedMcSampling, ParallelSampler, SampleBudget,
        StopReason,
    };
    use relcomp_eval::{ExperimentEnv, RunProfile};
    use relcomp_ugraph::Dataset;
    use serde::{Deserialize, Serialize};
    use std::sync::Arc;

    /// One (dataset, estimator) comparison row.
    #[derive(Clone, Debug, Serialize)]
    pub struct Row {
        /// Dataset analog name.
        pub dataset: String,
        /// Estimator display name.
        pub estimator: String,
        /// Workload pairs measured.
        pub pairs: usize,
        /// The fixed budget every query historically ran (paper default).
        pub fixed_samples: usize,
        /// Wall milliseconds for the fixed pass over all pairs.
        pub fixed_wall_ms: f64,
        /// Mean achieved relative half-width under the fixed budget
        /// (`None` when the estimator reports no CI — single recursions).
        pub fixed_rel_hw: Option<f64>,
        /// Mean samples the adaptive sessions consumed per pair.
        pub adaptive_avg_samples: f64,
        /// Smallest per-pair adaptive consumption (the early-exit case).
        pub adaptive_min_samples: usize,
        /// Wall milliseconds for the adaptive pass over all pairs.
        pub adaptive_wall_ms: f64,
        /// Pairs whose session met the eps target before the cap.
        pub converged_pairs: usize,
        /// Mean samples over the *converged* pairs only (`None` when no
        /// pair converged) — the honest early-exit headline, undiluted
        /// by pairs that ran to the cap.
        pub converged_avg_samples: Option<f64>,
        /// Pairs whose session met the target with *fewer* samples than
        /// the fixed budget — the headline early-exit count.
        pub early_exit_pairs: usize,
    }

    /// Run the comparison: every paper-six estimator answers the
    /// workload once at `fixed_k` and once adaptively (`eps` target at
    /// 95% confidence, capped at `cap`).
    pub fn compare(
        dataset: Dataset,
        profile: RunProfile,
        seed: u64,
        eps: f64,
        fixed_k: usize,
        cap: usize,
    ) -> Vec<Row> {
        let mut env = ExperimentEnv::prepare(dataset, profile, 1, seed);
        // The shared index must cover the adaptive cap.
        env.params.bfs_sharing_worlds = cap.max(fixed_k);
        let budget = SampleBudget::adaptive(eps, cap);
        let mut rows = Vec::new();
        for &kind in &EstimatorKind::PAPER_SIX {
            let mut est = env.estimator(kind);
            let mut rng = env.rng(0xada0 ^ kind as u64);

            let mut fixed_wall = 0.0f64;
            let mut fixed_hw_sum = 0.0f64;
            let mut fixed_hw_count = 0usize;
            for &(s, t) in &env.workload.pairs {
                est.refresh(&mut rng);
                let e = est.estimate(s, t, fixed_k, &mut rng);
                fixed_wall += e.elapsed.as_secs_f64() * 1e3;
                if let Some(hw) = e.half_width {
                    if e.reliability > 0.0 {
                        fixed_hw_sum += hw / e.reliability;
                        fixed_hw_count += 1;
                    }
                }
            }

            let mut adaptive_wall = 0.0f64;
            let mut samples_sum = 0usize;
            let mut samples_min = usize::MAX;
            let mut converged = 0usize;
            let mut converged_samples = 0usize;
            let mut early = 0usize;
            for &(s, t) in &env.workload.pairs {
                est.refresh(&mut rng);
                let e = est.estimate_with(s, t, &budget, &mut rng);
                adaptive_wall += e.elapsed.as_secs_f64() * 1e3;
                samples_sum += e.samples;
                samples_min = samples_min.min(e.samples);
                if e.stop_reason == StopReason::Converged {
                    converged += 1;
                    converged_samples += e.samples;
                    if e.samples < fixed_k {
                        early += 1;
                    }
                }
            }

            let pairs = env.workload.len();
            rows.push(Row {
                dataset: dataset.short_name().to_string(),
                estimator: kind.display_name().to_string(),
                pairs,
                fixed_samples: fixed_k,
                fixed_wall_ms: fixed_wall,
                fixed_rel_hw: (fixed_hw_count > 0).then(|| fixed_hw_sum / fixed_hw_count as f64),
                adaptive_avg_samples: samples_sum as f64 / pairs as f64,
                adaptive_min_samples: samples_min,
                adaptive_wall_ms: adaptive_wall,
                converged_pairs: converged,
                converged_avg_samples: (converged > 0)
                    .then(|| converged_samples as f64 / converged as f64),
                early_exit_pairs: early,
            });
        }
        rows
    }

    /// Quick per-estimator timing probe for `BENCH_summary.json`: one
    /// fixed pass at `fixed_k` per estimator on a small workload.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct EstimatorTiming {
        /// Estimator display name.
        pub estimator: String,
        /// Samples consumed across the workload.
        pub samples: usize,
        /// Wall milliseconds across the workload.
        pub wall_ms: f64,
    }

    /// One extension-workload measurement for `BENCH_summary.json`
    /// (top-k / distance-constrained, fixed vs adaptive).
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct WorkloadTiming {
        /// Served workload name (`topk` / `dquery`).
        pub workload: String,
        /// Budget mode (`fixed` / `adaptive`).
        pub mode: String,
        /// Samples consumed.
        pub samples: usize,
        /// Wall milliseconds.
        pub wall_ms: f64,
        /// Stop-reason label of the run.
        pub stop_reason: String,
    }

    /// Probe the two served extension workloads on the parallel sharded
    /// sampler: one fixed run at `fixed_k` and one eps-adaptive run
    /// (capped at `cap`) each for top-k (`k = 10`) and `R_d` (`d = 4`)
    /// on the first workload pair. The cross-commit perf signal for the
    /// `topk`/`dquery` serving paths.
    pub fn workload_probe(
        env: &ExperimentEnv,
        fixed_k: usize,
        eps: f64,
        cap: usize,
    ) -> Vec<WorkloadTiming> {
        let Some(&(s, t)) = env.workload.pairs.first() else {
            return Vec::new();
        };
        let sampler = ParallelSampler::new(Arc::clone(&env.graph), 2);
        let budget = SampleBudget::adaptive(eps, cap);
        let row = |workload: &str, mode: &str, samples, wall_ms, stop: StopReason| WorkloadTiming {
            workload: workload.to_string(),
            mode: mode.to_string(),
            samples,
            wall_ms,
            stop_reason: stop.label().to_string(),
        };
        let mut out = Vec::new();
        let fixed = sampler.top_k_targets(s, 10, fixed_k, 0xE0);
        out.push(row(
            "topk",
            "fixed",
            fixed.samples,
            fixed.elapsed.as_secs_f64() * 1e3,
            fixed.stop_reason,
        ));
        let adaptive = sampler.top_k_targets_with(s, 10, &budget, 0xE0);
        out.push(row(
            "topk",
            "adaptive",
            adaptive.samples,
            adaptive.elapsed.as_secs_f64() * 1e3,
            adaptive.stop_reason,
        ));
        let d = 4;
        let fixed = sampler.estimate_distance_constrained(s, t, d, fixed_k, 0xD0);
        out.push(row(
            "dquery",
            "fixed",
            fixed.samples,
            fixed.elapsed.as_secs_f64() * 1e3,
            fixed.stop_reason,
        ));
        let adaptive = sampler.estimate_distance_constrained_with(s, t, d, &budget, 0xD0);
        out.push(row(
            "dquery",
            "adaptive",
            adaptive.samples,
            adaptive.elapsed.as_secs_f64() * 1e3,
            adaptive.stop_reason,
        ));
        // The greedy write-path workload: two upgrades under the same
        // adaptive budget. Deterministic in the seed, so the wall time
        // is the cross-commit perf signal for the maximize serving path.
        let mut mopts = MaximizeOptions::new(2, 0.95, budget);
        mopts.threads = 2;
        mopts.seed = 0xA0;
        let start = std::time::Instant::now();
        let greedy = relcomp_core::maximize::maximize(&env.graph, s, t, &mopts)
            .expect("probe inputs are valid");
        out.push(WorkloadTiming {
            workload: "maximize_probe".to_string(),
            mode: "adaptive".to_string(),
            samples: greedy.samples,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            stop_reason: format!("k{}", greedy.chosen.len()),
        });
        out
    }

    /// One per-sample cost row of the packed-vs-scalar MC probe.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct PerSampleRow {
        /// Sampling path and dataset: `mc_scalar/<dataset>` (historical
        /// one-world lazy BFS) or `mc_packed/<dataset>` (bit-packed
        /// 64-world kernel).
        pub path: String,
        /// Worlds sampled across the workload.
        pub samples: usize,
        /// Wall milliseconds across the workload.
        pub wall_ms: f64,
        /// Nanoseconds per sampled world — the headline metric the CI
        /// perf gate tracks.
        pub ns_per_sample: f64,
    }

    /// Datasets the per-sample probe sweeps: the quick-profile graphs
    /// small enough to time in seconds, chosen because they span the
    /// percolation regimes where packed sampling behaves differently.
    /// LastFm's `1/out_degree` probabilities put the process exactly at
    /// criticality (little world overlap, the packed kernel's hardest
    /// case); NetHept's `{0.1, 0.01, 0.001}` tiers are the
    /// geometric-jump showcase; AsTopology's snapshot ratios sit near
    /// the threshold with heavier overlap; Dblp02's collaboration
    /// probabilities (mean 0.33 on a mean-degree-6 graph) and BioMine's
    /// three-criteria combination (mean 0.32 on a mean-degree-12 graph)
    /// are supercritical — sampled worlds share a giant component and
    /// the 64-way traversal sharing dominates.
    pub const PER_SAMPLE_DATASETS: &[Dataset] = &[
        Dataset::LastFm,
        Dataset::NetHept,
        Dataset::AsTopology,
        Dataset::Dblp02,
        Dataset::BioMine,
    ];

    /// Per-sample cost of scalar vs packed sampling across
    /// [`PER_SAMPLE_DATASETS`], four workloads per dataset:
    ///
    /// * `mc_*` — plain s-t MC (early-terminating lazy BFS) on the same
    ///   10-pair workload at `fixed_k` samples per pair, single threaded,
    ///   from equally-seeded streams.
    /// * `mcm_*` — multi-target MC: one stream of `fixed_k` worlds
    ///   scored against all ten workload targets. The scalar baseline
    ///   already shares worlds across targets (one full BFS per world —
    ///   no early exit is possible with many targets), so the ratio
    ///   isolates the 64-world packing itself, not target amortization.
    /// * `topk_*` — the full-reach per-world primitive behind top-k and
    ///   multi-target serving (no early termination, every node scored),
    ///   at `fixed_k` samples from one source. This is where 64-world
    ///   sharing pays most on dense graphs: the scalar loop re-explores
    ///   the whole reachable cluster per world.
    /// * `rd_*` — distance-constrained `R_d` at `d = 4`, `fixed_k`
    ///   samples on the first pair. The bounded exploration keeps every
    ///   world inside the same `d`-ball around the source, so the
    ///   64-world union traversal revisits heavily shared structure.
    ///
    /// Per row pair, the ratio of the two `ns_per_sample` values is the
    /// packed kernel's speedup there; [`packed_speedup`] reduces the rows
    /// to one headline number.
    pub fn per_sample_probe(profile: RunProfile, seed: u64, fixed_k: usize) -> Vec<PerSampleRow> {
        let mut rows = Vec::new();
        let row = |path: String, samples: usize, wall_ms: f64| PerSampleRow {
            path,
            samples,
            wall_ms,
            ns_per_sample: wall_ms * 1e6 / samples.max(1) as f64,
        };
        for &dataset in PER_SAMPLE_DATASETS {
            let mut env = ExperimentEnv::prepare(dataset, profile, 2, seed);
            env.workload.pairs.truncate(10);
            let slug = dataset.short_name();
            let run_st = |path: String, est: &mut dyn Estimator| {
                let mut rng = env.rng(0x9acced);
                let start = std::time::Instant::now();
                let mut samples = 0usize;
                for &(s, t) in &env.workload.pairs {
                    samples += est.estimate(s, t, fixed_k, &mut rng).samples;
                }
                row(path, samples, start.elapsed().as_secs_f64() * 1e3)
            };
            rows.push(run_st(
                format!("mc_scalar/{slug}"),
                &mut McSampling::new(Arc::clone(&env.graph)),
            ));
            rows.push(run_st(
                format!("mc_packed/{slug}"),
                &mut PackedMcSampling::new(Arc::clone(&env.graph)),
            ));

            let budget = SampleBudget::fixed(fixed_k.max(256));
            let (s, t) = env.workload.pairs[0];
            let mut rng = env.rng(0x9acced);
            let scalar =
                relcomp_core::topk::top_k_targets_with(&env.graph, s, 10, &budget, &mut rng);
            rows.push(row(
                format!("topk_scalar/{slug}"),
                scalar.samples,
                scalar.elapsed.as_secs_f64() * 1e3,
            ));
            let sampler = ParallelSampler::new(Arc::clone(&env.graph), 1);
            let packed = sampler.top_k_targets_with(s, 10, &budget, 0x9acced);
            rows.push(row(
                format!("topk_packed/{slug}"),
                packed.samples,
                packed.elapsed.as_secs_f64() * 1e3,
            ));

            let d = 4;
            let mut rng = env.rng(0x9acced);
            let start = std::time::Instant::now();
            let rd_scalar = relcomp_core::distance_constrained::distance_constrained_with(
                &env.graph, s, t, d, &budget, &mut rng,
            );
            rows.push(row(
                format!("rd_scalar/{slug}"),
                rd_scalar.samples,
                start.elapsed().as_secs_f64() * 1e3,
            ));
            let rd_packed = sampler.estimate_distance_constrained_with(s, t, d, &budget, 0x9acced);
            rows.push(row(
                format!("rd_packed/{slug}"),
                rd_packed.samples,
                rd_packed.elapsed.as_secs_f64() * 1e3,
            ));

            // Multi-target MC: both sides sample `fixed_k` worlds from
            // the first source and score every workload target per world.
            let targets: Vec<relcomp_ugraph::NodeId> =
                env.workload.pairs.iter().map(|&(_, t)| t).collect();
            let graph = &env.graph;
            let mut rng = env.rng(0x9acced);
            let mut ws = relcomp_ugraph::traversal::BfsWorkspace::new(graph.num_nodes());
            let start = std::time::Instant::now();
            let mut hits = vec![0usize; targets.len()];
            for _ in 0..fixed_k {
                ws.reset();
                ws.visited.insert(s);
                ws.queue.push_back(s);
                while let Some(v) = ws.queue.pop_front() {
                    for (e, w) in graph.out_edges(v) {
                        if !ws.visited.contains(w)
                            && rand::Rng::gen::<f64>(&mut rng) < graph.prob(e).value()
                        {
                            ws.visited.insert(w);
                            ws.queue.push_back(w);
                        }
                    }
                }
                for (h, &t) in hits.iter_mut().zip(&targets) {
                    *h += usize::from(ws.visited.contains(t));
                }
            }
            std::hint::black_box(&hits);
            rows.push(row(
                format!("mcm_scalar/{slug}"),
                fixed_k,
                start.elapsed().as_secs_f64() * 1e3,
            ));
            let start = std::time::Instant::now();
            let ests = sampler.estimate_mc_multi(s, &targets, fixed_k, 0x9acced);
            std::hint::black_box(&ests);
            rows.push(row(
                format!("mcm_packed/{slug}"),
                fixed_k,
                start.elapsed().as_secs_f64() * 1e3,
            ));
        }
        rows
    }

    /// Packed-over-scalar speedup from a [`per_sample_probe`] result:
    /// the geometric mean of every `<workload>_scalar/<dataset>` over
    /// `<workload>_packed/<dataset>` ratio, so each probability regime
    /// and workload carries equal weight regardless of its absolute
    /// per-sample cost. `None` when no pair is complete or a row is
    /// degenerate.
    pub fn packed_speedup(rows: &[PerSampleRow]) -> Option<f64> {
        let ns = |path: &str| {
            rows.iter()
                .find(|r| r.path == path)
                .map(|r| r.ns_per_sample)
                .filter(|&ns| ns > 0.0)
        };
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for row in rows {
            let Some((workload, slug)) = row.path.split_once("_scalar/") else {
                continue;
            };
            let (Some(scalar), Some(packed)) =
                (ns(&row.path), ns(&format!("{workload}_packed/{slug}")))
            else {
                continue;
            };
            log_sum += (scalar / packed).ln();
            count += 1;
        }
        (count > 0).then(|| (log_sum / count as f64).exp())
    }

    /// Measure every paper-six estimator at `fixed_k` on `env`'s
    /// workload (refresh excluded from timing, as in the paper).
    pub fn timing_probe(env: &ExperimentEnv, fixed_k: usize) -> Vec<EstimatorTiming> {
        EstimatorKind::PAPER_SIX
            .iter()
            .map(|&kind| {
                let mut est = env.estimator(kind);
                let mut rng = env.rng(0x7173 ^ kind as u64);
                let mut wall = 0.0;
                let mut samples = 0usize;
                for &(s, t) in &env.workload.pairs {
                    est.refresh(&mut rng as &mut dyn RngCore);
                    let e = est.estimate(s, t, fixed_k, &mut rng);
                    wall += e.elapsed.as_secs_f64() * 1e3;
                    samples += e.samples;
                }
                EstimatorTiming {
                    estimator: kind.display_name().to_string(),
                    samples,
                    wall_ms: wall,
                }
            })
            .collect()
    }
}

/// Serving-layer latency probe for `BENCH_summary.json`: drive a mixed
/// `st`/`topk`/`dquery` workload through an in-process [`QueryEngine`]
/// and read the per-workload latency percentiles back out of its metrics
/// registry — the same numbers the `metrics` protocol verb serves.
///
/// [`QueryEngine`]: relcomp_serve::engine::QueryEngine
pub mod serve_probe {
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use relcomp_eval::RunProfile;
    use relcomp_serve::engine::{EngineConfig, QueryEngine};
    use relcomp_serve::protocol::{
        DistanceQueryRequest, MaximizeRequest, QueryRequest, TopKRequest,
    };
    use relcomp_serve::{Client, Server, ServerMode, ServerOptions, TenantRegistry};
    use relcomp_ugraph::Dataset;
    use serde::{Deserialize, Serialize};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    /// One per-workload latency row read from the serve registry.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct ServeMetricRow {
        /// Workload label (`st` / `topk` / `dquery` / `all`).
        pub workload: String,
        /// Queries the histogram observed.
        pub queries: u64,
        /// Median server-side latency, microseconds (log2-bucket upper
        /// bound, the registry's native resolution).
        pub p50_micros: f64,
        /// 99th-percentile server-side latency, microseconds.
        pub p99_micros: f64,
    }

    /// One connection-churn measurement: `connections` closed-loop
    /// client threads race through a shared budget of
    /// connect → one cached st query → disconnect rounds against a
    /// server running in `mode`. Cached queries cost the engine nearly
    /// nothing, so `us_per_request` isolates the per-connection price of
    /// the connection-handling model (thread spawn/teardown for the
    /// threaded server, accept + `epoll_ctl` for the reactor).
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct ServeConcurrencyRow {
        /// Connection-handling model (`reactor` / `threaded`).
        pub mode: String,
        /// Concurrent closed-loop clients, each churning connections.
        pub connections: usize,
        /// Total requests answered at this sweep point.
        pub requests: usize,
        /// Mean wall microseconds per request (connect + query + close)
        /// — the value the CI perf gate tracks per `mode/c{connections}`
        /// row.
        pub us_per_request: f64,
        /// Requests per second across the point.
        pub qps: f64,
    }

    /// Stable row name of a sweep point in `bench_diff` and reports.
    pub fn concurrency_key(row: &ServeConcurrencyRow) -> String {
        format!("{}/c{}", row.mode, row.connections)
    }

    /// Connection-churn sweep over both server modes: one server per
    /// mode (result cache pre-warmed so every churned query is a hit),
    /// then one [`ServeConcurrencyRow`] per connection count.
    pub fn connection_sweep(profile: RunProfile, seed: u64) -> Vec<ServeConcurrencyRow> {
        let counts: &[usize] = match profile {
            RunProfile::Quick => &[1, 32, 256],
            RunProfile::Paper => &[1, 32, 256, 512],
        };
        let graph = Arc::new(Dataset::LastFm.generate_with_scale(0.05, seed));
        let warm = QueryRequest {
            estimator: Some("mc".into()),
            samples: Some(1000),
            seed: Some(seed),
            ..QueryRequest::new(0, 1)
        };
        let mut rows = Vec::new();
        for (mode, label) in [
            (ServerMode::Threaded, "threaded"),
            (ServerMode::Reactor, "reactor"),
        ] {
            let engine = Arc::new(QueryEngine::new(
                Arc::clone(&graph),
                EngineConfig {
                    threads: 1,
                    default_seed: seed,
                    ..Default::default()
                },
            ));
            engine.execute(&warm).expect("cache-warming query");
            let tenants = Arc::new(TenantRegistry::single(engine));
            let server = Server::bind_with(
                "127.0.0.1:0",
                tenants,
                ServerOptions {
                    mode,
                    ..Default::default()
                },
            )
            .expect("bind sweep server");
            let shutdown = server.shutdown_handle();
            let (addr, thread) = server.spawn().expect("spawn sweep server");
            for &connections in counts {
                let total = (connections * 4).max(512);
                let cursor = AtomicUsize::new(0);
                let start = Instant::now();
                std::thread::scope(|scope| {
                    for _ in 0..connections {
                        scope.spawn(|| loop {
                            if cursor.fetch_add(1, Ordering::Relaxed) >= total {
                                break;
                            }
                            let mut client = Client::connect(addr).expect("churn connect");
                            let resp = client.query(warm.clone()).expect("churn query");
                            assert!(resp.cached, "churned queries must be cache hits");
                        });
                    }
                });
                let wall = start.elapsed();
                rows.push(ServeConcurrencyRow {
                    mode: label.to_string(),
                    connections,
                    requests: total,
                    us_per_request: wall.as_micros() as f64 / total as f64,
                    qps: total as f64 / wall.as_secs_f64(),
                });
            }
            shutdown.shutdown();
            thread.join().expect("join sweep server").expect("serve");
        }
        rows
    }

    /// Run the mixed workload and return one row per latency histogram
    /// series (`st`, `topk`, `dquery`, `maximize`, and the merged `all`).
    pub fn serve_metrics_probe(profile: RunProfile, seed: u64) -> Vec<ServeMetricRow> {
        let (scale, rounds, samples) = match profile {
            RunProfile::Quick => (0.05, 8, 1000),
            RunProfile::Paper => (0.2, 24, 5000),
        };
        let graph = Arc::new(Dataset::LastFm.generate_with_scale(scale, seed));
        let n = graph.num_nodes() as u32;
        let engine = QueryEngine::new(
            Arc::clone(&graph),
            EngineConfig {
                threads: 2,
                default_seed: seed,
                ..Default::default()
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5e7e);
        for _ in 0..rounds {
            let s = rng.gen_range(0..n);
            let mut t = rng.gen_range(0..n);
            while t == s {
                t = rng.gen_range(0..n);
            }
            let q = QueryRequest {
                estimator: Some("mc".into()),
                samples: Some(samples),
                seed: Some(seed),
                ..QueryRequest::new(s, t)
            };
            engine.execute(&q).expect("st query");
            // The repeat is a cache hit: the histogram sees both outcomes.
            engine.execute(&q).expect("repeated st query");
            engine
                .execute_topk(&TopKRequest {
                    k: Some(5),
                    samples: Some(samples / 2),
                    seed: Some(seed),
                    ..TopKRequest::new(s)
                })
                .expect("topk query");
            engine
                .execute_dquery(&DistanceQueryRequest {
                    samples: Some(samples / 2),
                    seed: Some(seed),
                    ..DistanceQueryRequest::new(s, t, 4)
                })
                .expect("dquery");
            engine
                .execute_maximize(&MaximizeRequest {
                    k: Some(1),
                    candidates: Some(8),
                    samples: Some(samples / 2),
                    seed: Some(seed),
                    ..MaximizeRequest::new(s, t)
                })
                .expect("maximize");
        }
        engine
            .metrics()
            .histograms
            .iter()
            .filter(|h| h.name == "relcomp_query_latency_micros")
            .map(|h| ServeMetricRow {
                workload: h
                    .labels
                    .iter()
                    .find(|(k, _)| *k == "workload")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default(),
                queries: h.count,
                p50_micros: h.p50 as f64,
                p99_micros: h.p99 as f64,
            })
            .collect()
    }
}

/// The machine-readable `BENCH_summary.json` schema shared by `run_all`
/// (full sweep), `perf_probe` (probes only, for the CI perf gate), and
/// `bench_diff` (baseline comparison).
pub mod summary {
    use crate::adaptive::{EstimatorTiming, PerSampleRow, WorkloadTiming};
    use crate::serve_probe::{ServeConcurrencyRow, ServeMetricRow};
    use serde::{Deserialize, Serialize};
    use std::path::Path;

    /// One cold-start measurement: a fresh child process loads a graph
    /// file one way, answers one query, and reports its peak RSS.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct ColdStartRow {
        /// Load path measured: `mmap` (v2 zero-copy), `heap_v2` (v2
        /// full parse), or `v1_binary` (legacy bulk reader).
        pub mode: String,
        /// Size of the graph file loaded, bytes.
        pub file_bytes: u64,
        /// Wall milliseconds from process start to a usable graph
        /// (open + map/parse + validation).
        pub load_ms: f64,
        /// Wall milliseconds for the first query after load — the
        /// restart-to-first-answer headline the CI gate tracks.
        pub first_query_ms: f64,
        /// Peak resident set size of the child process (`VmHWM`), bytes.
        /// The mmap path should stay near `file_bytes`; a full parse
        /// pays roughly double.
        pub peak_rss_bytes: u64,
    }

    /// One experiment binary's wall time.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct JobTiming {
        /// Experiment job name (`table02_datasets`, ...).
        pub name: String,
        /// Wall seconds the job took.
        pub secs: f64,
    }

    /// The machine-readable sweep summary written to `BENCH_summary.json`.
    #[derive(Clone, Debug, Serialize, Deserialize)]
    pub struct BenchSummary {
        /// Run profile (`quick` / `paper`).
        pub profile: String,
        /// Master seed of the run.
        pub seed: u64,
        /// Wall seconds for the whole sweep (probes only for `perf_probe`).
        pub total_secs: f64,
        /// Per-job wall times (empty for probe-only summaries).
        pub jobs: Vec<JobTiming>,
        /// Fixed-K timing probe per estimator (samples + wall ms) on the
        /// LastFM analog — the stable cross-commit perf signal.
        pub estimators: Vec<EstimatorTiming>,
        /// Served extension workloads (top-k / distance-constrained),
        /// fixed vs adaptive, on the parallel sharded sampler.
        pub workloads: Vec<WorkloadTiming>,
        /// Per-sample cost of scalar vs packed MC sampling.
        pub per_sample: Vec<PerSampleRow>,
        /// Packed-over-scalar MC per-sample speedup (0.0 when the probe
        /// was degenerate).
        pub mc_packed_speedup: f64,
        /// Server-side latency percentiles per workload, read from the
        /// serve metrics registry (informational in `bench_diff`: log2
        /// buckets quantize too coarsely to gate on).
        pub serve_metrics: Vec<ServeMetricRow>,
        /// Connection-churn sweep rows (reactor vs threaded server at
        /// each connection count), gated row-wise on `us_per_request`.
        pub serve_concurrency: Vec<ServeConcurrencyRow>,
        /// Cold-start rows from the `cold_start` bench (one per load
        /// path), merged into the summary by that binary; empty until it
        /// runs.
        pub cold_start: Vec<ColdStartRow>,
    }

    /// Write `summary` to `BENCH_summary.json` at the repo root.
    pub fn write(summary: &BenchSummary) {
        let path = crate::repo_root().join("BENCH_summary.json");
        match serde_json::to_string_pretty(summary) {
            Ok(json) => match std::fs::write(&path, json) {
                Ok(()) => eprintln!("[saved {}]", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            },
            Err(e) => eprintln!("warning: could not serialize BENCH_summary: {e}"),
        }
    }

    /// Load a summary from `path`.
    pub fn load(path: &Path) -> Result<BenchSummary, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("could not read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("could not parse {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args() {
        let c = parse_args(vec![]).unwrap();
        assert_eq!(c.profile, RunProfile::Quick);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn parses_profile_and_seed() {
        let c = parse_args(vec!["paper".into(), "--seed".into(), "7".into()]).unwrap();
        assert_eq!(c.profile, RunProfile::Paper);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_args(vec!["bogus".into()]).is_err());
        assert!(parse_args(vec!["--seed".into()]).is_err());
        assert!(parse_args(vec!["--seed".into(), "x".into()]).is_err());
    }
}
