//! Fixed-k vs adaptive stopping: wall time and samples per estimator.
//! Usage: `adaptive_stopping [quick|paper] [--seed N]`.
//!
//! The paper's "~1000 samples" guidance is a stopping rule in disguise:
//! easy queries (high reliability, low variance) meet a 1e-2 relative
//! half-width long before 1000 samples, hard ones need more. This bench
//! runs every paper-six estimator over a 1-hop workload twice — once at
//! the fixed default `K = 1000`, once adaptively (`eps = 1e-2` at 95%
//! confidence, capped) — and reports samples, wall time, and how many
//! pairs exited early. Rows where the adaptive average beats the fixed
//! budget are flagged `ADAPTIVE_WIN` (the acceptance signal for
//! accuracy-targeted serving).

use relcomp_bench::adaptive::{compare, Row};
use relcomp_eval::RunProfile;
use relcomp_ugraph::Dataset;

const EPS: f64 = 1e-2;
const FIXED_K: usize = 1000;

fn cap(profile: RunProfile) -> usize {
    match profile {
        RunProfile::Quick => 10_000,
        RunProfile::Paper => 50_000,
    }
}

fn fmt_hw(hw: Option<f64>) -> String {
    match hw {
        Some(h) => format!("{h:.4}"),
        None => "-".to_string(),
    }
}

fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "adaptive_stopping — fixed K = {FIXED_K} vs eps = {EPS} @95% \
         (1-hop workloads; cap per profile)\n\n"
    ));
    out.push_str(
        "dataset      estimator     pairs  fixed_ms  fixed_rhw  adpt_avg_K  conv_avg_K  \
         adpt_min_K  adpt_ms  converged  early_exit\n",
    );
    let mut wins = Vec::new();
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<13} {:>5} {:>9.1} {:>10} {:>11.0} {:>11} {:>11} {:>8.1} {:>9} {:>11}\n",
            r.dataset,
            r.estimator,
            r.pairs,
            r.fixed_wall_ms,
            fmt_hw(r.fixed_rel_hw),
            r.adaptive_avg_samples,
            r.converged_avg_samples
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".to_string()),
            r.adaptive_min_samples,
            r.adaptive_wall_ms,
            format!("{}/{}", r.converged_pairs, r.pairs),
            r.early_exit_pairs,
        ));
        let conv_avg_win = r
            .converged_avg_samples
            .is_some_and(|avg| avg < FIXED_K as f64);
        if conv_avg_win {
            wins.push(format!(
                "ADAPTIVE_WIN: {} on {}: converged pairs needed avg {:.0} samples \
                 to eps = {EPS} (< {FIXED_K} fixed); {}/{} pairs converged, {} below the \
                 fixed budget (min {})",
                r.estimator,
                r.dataset,
                r.converged_avg_samples.unwrap_or_default(),
                r.converged_pairs,
                r.pairs,
                r.early_exit_pairs,
                r.adaptive_min_samples
            ));
        } else if r.early_exit_pairs > 0 {
            wins.push(format!(
                "ADAPTIVE_WIN: {} on {}: {} pair(s) hit eps = {EPS} below the \
                 fixed {FIXED_K} (min {} samples)",
                r.estimator, r.dataset, r.early_exit_pairs, r.adaptive_min_samples
            ));
        }
    }
    out.push('\n');
    if wins.is_empty() {
        out.push_str("no adaptive wins at this profile/seed\n");
    } else {
        for w in &wins {
            out.push_str(w);
            out.push('\n');
        }
    }
    out
}

fn main() {
    let cli = relcomp_bench::cli();
    // LastFM (inverse-out-degree probs) and DBLP-0.2 (mean prob ~0.33):
    // the two analogs whose 1-hop pairs span easy to moderate queries.
    let datasets = [Dataset::LastFm, Dataset::Dblp02];
    let mut rows = Vec::new();
    for dataset in datasets {
        eprintln!(">>> comparing on {} ...", dataset.short_name());
        rows.extend(compare(
            dataset,
            cli.profile,
            cli.seed,
            EPS,
            FIXED_K,
            cap(cli.profile),
        ));
    }
    let report = render(&rows);
    relcomp_bench::emit("adaptive_stopping", &report);
}
