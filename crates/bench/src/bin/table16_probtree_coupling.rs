//! Regenerates Table 16 (ProbTree coupled with efficient estimators) of the paper. Usage: `table16_probtree_coupling [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::table16_coupling::run(cli.profile, cli.seed);
    relcomp_bench::emit("table16_probtree_coupling", &report);
}
