//! Probe-only `BENCH_summary.json`: the per-estimator timing probe, the
//! served-workload probe, and the packed-vs-scalar per-sample probe —
//! exactly the rows `bench_diff` compares against `BENCH_baseline.json`,
//! without the full `run_all` experiment sweep. This is what the CI
//! `perf-gate` job runs on every PR (minutes, not the sweep's hours).
//!
//! Usage: `perf_probe [quick|paper] [--seed N]`.

use relcomp_bench::adaptive::{packed_speedup, per_sample_probe, timing_probe, workload_probe};
use relcomp_bench::summary::BenchSummary;
use relcomp_eval::{ExperimentEnv, RunProfile};
use relcomp_ugraph::Dataset;

fn main() {
    let cli = relcomp_bench::cli();
    let (profile, seed) = (cli.profile, cli.seed);
    let start = std::time::Instant::now();

    // Same environment as `run_all`'s probe section, so probe-only
    // summaries are row-compatible with full-sweep ones.
    eprintln!(">>> timing probe (paper six @ K = 1000, LastFM analog) ...");
    let mut env = ExperimentEnv::prepare(Dataset::LastFm, profile, 2, seed);
    env.workload.pairs.truncate(10);
    let estimators = timing_probe(&env, 1000);
    eprintln!(">>> workload probe (topk / dquery / maximize, fixed vs eps-adaptive) ...");
    let workloads = workload_probe(&env, 10_000, 0.05, 50_000);
    eprintln!(">>> per-sample probe (scalar vs packed sampling, five datasets) ...");
    let per_sample = per_sample_probe(profile, seed, 10_000);
    let mc_packed_speedup = packed_speedup(&per_sample).unwrap_or(0.0);
    eprintln!("    packed MC speedup (geomean): {mc_packed_speedup:.2}x");
    eprintln!(">>> serve metrics probe (mixed st/topk/dquery/maximize, registry percentiles) ...");
    let serve_metrics = relcomp_bench::serve_probe::serve_metrics_probe(profile, seed);
    eprintln!(">>> connection sweep (reactor vs threaded churn) ...");
    let serve_concurrency = relcomp_bench::serve_probe::connection_sweep(profile, seed);

    relcomp_bench::summary::write(&BenchSummary {
        profile: match profile {
            RunProfile::Quick => "quick".to_string(),
            RunProfile::Paper => "paper".to_string(),
        },
        seed,
        total_secs: start.elapsed().as_secs_f64(),
        jobs: Vec::new(),
        estimators,
        workloads,
        per_sample,
        mc_packed_speedup,
        serve_metrics,
        serve_concurrency,
        cold_start: Vec::new(),
    });
}
