//! Regenerates Figure 8 (estimate quality at convergence) of the paper. Usage: `fig08_convergence_quality [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig08_quality::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig08_convergence_quality", &report);
}
