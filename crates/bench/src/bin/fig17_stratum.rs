//! Regenerates Figure 17 (RSS stratum-count sensitivity) of the paper. Usage: `fig17_stratum [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig17_stratum::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig17_stratum", &report);
}
