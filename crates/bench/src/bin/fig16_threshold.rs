//! Regenerates Figure 16 (recursive threshold sensitivity) of the paper. Usage: `fig16_threshold [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig16_threshold::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig16_threshold", &report);
}
