//! Regenerates Tables 9-14 (running time) of the paper. Usage: `tables09_14_runtime [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::tables09_14_runtime::run(cli.profile, cli.seed);
    relcomp_bench::emit("tables09_14_runtime", &report);
}
