//! Regenerates the top-k reliable targets extension experiment. Usage: `ext_topk [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::ext_topk::run(cli.profile, cli.seed);
    relcomp_bench::emit("ext_topk", &report);
}
