//! Regenerates Tables 3-8 (relative error) of the paper. Usage: `tables03_08_accuracy [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::tables03_08_accuracy::run(cli.profile, cli.seed);
    relcomp_bench::emit("tables03_08_accuracy", &report);
}
