//! Regenerates Figures 9-11 (error/time/memory trade-off) of the paper. Usage: `fig09_11_tradeoff [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig09_11_tradeoff::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig09_11_tradeoff", &report);
}
