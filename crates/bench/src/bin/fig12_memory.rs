//! Regenerates Figure 12 (online memory usage) of the paper. Usage: `fig12_memory [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig12_memory::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig12_memory", &report);
}
