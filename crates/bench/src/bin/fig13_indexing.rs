//! Regenerates Figure 13a-c (index build/size/load) of the paper. Usage: `fig13_indexing [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig13_indexing::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig13_indexing", &report);
}
