//! Regenerates the bounds-quality extension experiment. Usage: `ext_bounds [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::ext_bounds::run(cli.profile, cli.seed);
    relcomp_bench::emit("ext_bounds", &report);
}
