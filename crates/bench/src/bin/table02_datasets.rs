//! Regenerates Table 2 (dataset properties) of the paper. Usage: `table02_datasets [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::table02_datasets::run(cli.profile, cli.seed);
    relcomp_bench::emit("table02_datasets", &report);
}
