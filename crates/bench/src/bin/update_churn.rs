//! `update_churn` — closed-loop query/update churn driver for the
//! `relcomp-serve` query service, plus estimator-level maintenance
//! microbenchmarks.
//!
//! Two phases:
//!
//! 1. **Incremental vs rebuild** (estimator level, no server): for
//!    ProbTree and BFS-Sharing, time `apply_updates` over batches of
//!    random edge-probability updates against the full index rebuild the
//!    same batch would otherwise force, and report the speedup — the
//!    paper's Table 15 maintenance story generalized to live updates.
//! 2. **Churn under load** (wire level): spin up an in-process server,
//!    hammer it with `C` closed-loop query clients while an updater
//!    connection applies `U` update batches through the `update`
//!    protocol command. Reports query QPS under churn, per-update
//!    latency percentiles, the final epoch, and cache behavior (every
//!    update invalidates by epoch, so hit rate measures re-use *between*
//!    updates).
//!
//! ```text
//! cargo run --release --bin update_churn -- [quick|paper] [--seed N]
//! ```

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use relcomp_bench::{cli, emit, percentile};
use relcomp_core::bfs_sharing::BfsSharing;
use relcomp_core::{Estimator, UpdateOutcome};
use relcomp_eval::experiments::table15_index_update::probtree_update_costs;
use relcomp_eval::RunProfile;
use relcomp_serve::engine::{EngineConfig, QueryEngine};
use relcomp_serve::protocol::{EdgeProbUpdate, QueryRequest};
use relcomp_serve::{Client, Server};
use relcomp_ugraph::{Dataset, EdgeId, EdgeUpdate, UncertainGraph};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Params {
    scale: f64,
    clients: usize,
    pairs: usize,
    repeats: usize,
    samples: usize,
    update_batches: usize,
    batch_edges: usize,
    bench_rounds: usize,
}

/// Draw a batch of updates over random existing edges, as both the
/// estimator-level and the wire representation.
fn random_batch(
    graph: &UncertainGraph,
    batch: usize,
    rng: &mut ChaCha8Rng,
) -> (Vec<EdgeUpdate>, Vec<EdgeProbUpdate>) {
    let mut resolved = Vec::with_capacity(batch);
    let mut wire = Vec::with_capacity(batch);
    for _ in 0..batch {
        let e = EdgeId(rng.gen_range(0..graph.num_edges() as u32));
        let p: f64 = rng.gen_range(0.05..0.95);
        let (u, v) = graph.endpoints(e);
        resolved.push(EdgeUpdate::new(e, p).expect("probability in range"));
        wire.push(EdgeProbUpdate {
            s: u.0,
            t: v.0,
            prob: p,
        });
    }
    (resolved, wire)
}

/// BFS-Sharing maintenance: mean seconds per batch, incremental vs full
/// index rebuild.
fn bfs_sharing_update_costs(
    graph: &Arc<UncertainGraph>,
    worlds: usize,
    batch: usize,
    rounds: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut est = BfsSharing::new(Arc::clone(graph), worlds, &mut rng);
    let mut current = Arc::clone(graph);
    let (mut incremental, mut rebuild) = (0.0f64, 0.0f64);
    for _ in 0..rounds {
        let (updates, _) = random_batch(&current, batch, &mut rng);
        let snap = current.with_updated_probs(&updates);

        let start = Instant::now();
        let outcome = est.apply_updates(&snap, &updates, &mut rng);
        incremental += start.elapsed().as_secs_f64();
        assert!(
            matches!(outcome, UpdateOutcome::Incremental { .. }),
            "snapshot updates must take the incremental path"
        );

        let start = Instant::now();
        let fresh = BfsSharing::new(Arc::clone(&snap), worlds, &mut rng);
        rebuild += start.elapsed().as_secs_f64();
        drop(fresh);

        current = snap;
    }
    (incremental / rounds as f64, rebuild / rounds as f64)
}

fn main() {
    let cli = cli();
    let p = match cli.profile {
        RunProfile::Quick => Params {
            scale: 0.05,
            clients: 4,
            pairs: 16,
            repeats: 8,
            samples: 1000,
            update_batches: 10,
            batch_edges: 4,
            bench_rounds: 5,
        },
        RunProfile::Paper => Params {
            scale: 0.3,
            clients: 8,
            pairs: 64,
            repeats: 25,
            samples: 5000,
            update_batches: 50,
            batch_edges: 16,
            bench_rounds: 20,
        },
    };

    let graph = Arc::new(Dataset::LastFm.generate_with_scale(p.scale, cli.seed));
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);

    // Phase 1: incremental maintenance vs rebuild, estimator level.
    let (pt_incr, pt_rebuild) =
        probtree_update_costs(&graph, p.batch_edges, p.bench_rounds, cli.seed);
    let worlds = 1500;
    let (bs_incr, bs_rebuild) = bfs_sharing_update_costs(
        &graph,
        worlds,
        p.batch_edges,
        p.bench_rounds,
        cli.seed ^ 0xb5,
    );

    // Phase 2: churn under load over the wire.
    let n = graph.num_nodes() as u32;
    let pairs: Vec<(u32, u32)> = (0..p.pairs)
        .map(|_| {
            let s = rng.gen_range(0..n);
            let mut t = rng.gen_range(0..n);
            while t == s {
                t = rng.gen_range(0..n);
            }
            (s, t)
        })
        .collect();
    let workload: Vec<(u32, u32)> = pairs
        .iter()
        .flat_map(|&pair| std::iter::repeat(pair).take(p.repeats))
        .collect();

    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&graph),
        EngineConfig {
            default_seed: cli.seed,
            ..Default::default()
        },
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind server");
    let (addr, _server_thread) = server.spawn().expect("spawn server");

    let cursor = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let query_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(workload.len()));
    let update_latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(p.update_batches));
    let start = Instant::now();
    std::thread::scope(|scope| {
        // Closed-loop query clients racing through the shared workload.
        for _ in 0..p.clients {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect client");
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, t)) = workload.get(i) else {
                        break;
                    };
                    let sent = Instant::now();
                    let resp = client
                        .query(QueryRequest {
                            estimator: Some("mc".into()),
                            samples: Some(p.samples),
                            seed: Some(cli.seed),
                            ..QueryRequest::new(s, t)
                        })
                        .expect("query under churn");
                    local.push(sent.elapsed().as_micros() as u64);
                    assert!((0.0..=1.0).contains(&resp.reliability));
                }
                done.store(true, Ordering::Release);
                query_latencies.lock().unwrap().extend(local);
            });
        }
        // One updater connection drip-feeding update batches until the
        // query workload drains (or its budget is spent).
        scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect updater");
            let mut rng = ChaCha8Rng::seed_from_u64(cli.seed ^ 0xc47);
            let mut local = Vec::new();
            for i in 0..p.update_batches {
                if done.load(Ordering::Acquire) && i > 0 {
                    break;
                }
                let (_, wire) = random_batch(&graph, p.batch_edges, &mut rng);
                let sent = Instant::now();
                let resp = client.update(wire).expect("update under load");
                local.push(sent.elapsed().as_micros() as u64);
                assert_eq!(resp.epoch, i as u64 + 1, "epochs advance one per batch");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            update_latencies.lock().unwrap().extend(local);
        });
    });
    let wall = start.elapsed();

    let mut qlat = query_latencies.into_inner().unwrap();
    qlat.sort_unstable();
    assert_eq!(qlat.len(), workload.len(), "every query must be answered");
    let mut ulat = update_latencies.into_inner().unwrap();
    ulat.sort_unstable();
    assert!(!ulat.is_empty(), "at least one update batch must land");

    let stats = engine.stats();
    assert_eq!(stats.epoch, ulat.len() as u64, "one epoch per update batch");
    let mut shutdown_client = Client::connect(addr).expect("connect for shutdown");
    shutdown_client.shutdown().ok();

    let qps = qlat.len() as f64 / wall.as_secs_f64();
    let report = format!(
        "update_churn ({:?} profile, seed {})\n\
         =============================================\n\
         graph:          LastFM analog, scale {} ({} nodes, {} edges)\n\
         \n\
         incremental maintenance vs rebuild ({} batches x {} edge updates):\n\
         ProbTree:       {:.3} ms/batch incremental vs {:.3} ms rebuild  ({:.0}x)\n\
         BFS-Sharing:    {:.3} ms/batch incremental vs {:.3} ms rebuild  ({:.0}x, L = {})\n\
         \n\
         churn under load: {} queries ({} pairs x {} repeats, K = {}), \
         {} clients + 1 updater\n\
         throughput:     {:.0} queries/s under churn  ({} queries in {:.2} s)\n\
         query (us):     p50 {}  p90 {}  p99 {}  max {}\n\
         update (us):    p50 {}  p90 {}  p99 {}  max {}  ({} batches applied)\n\
         epochs:         final epoch {} ({} update batches), {} residents, \
         {:.1} KiB resident index memory\n\
         cache:          {} hits / {} misses ({:.1}% hit rate across epochs)\n",
        cli.profile,
        cli.seed,
        p.scale,
        graph.num_nodes(),
        graph.num_edges(),
        p.bench_rounds,
        p.batch_edges,
        pt_incr * 1e3,
        pt_rebuild * 1e3,
        pt_rebuild / pt_incr.max(1e-12),
        bs_incr * 1e3,
        bs_rebuild * 1e3,
        bs_rebuild / bs_incr.max(1e-12),
        worlds,
        qlat.len(),
        p.pairs,
        p.repeats,
        p.samples,
        p.clients,
        qps,
        qlat.len(),
        wall.as_secs_f64(),
        percentile(&qlat, 0.50),
        percentile(&qlat, 0.90),
        percentile(&qlat, 0.99),
        qlat.last().copied().unwrap_or(0),
        percentile(&ulat, 0.50),
        percentile(&ulat, 0.90),
        percentile(&ulat, 0.99),
        ulat.last().copied().unwrap_or(0),
        ulat.len(),
        stats.epoch,
        stats.updates,
        stats.resident_estimators,
        stats.resident_bytes as f64 / 1024.0,
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
    );
    emit("update_churn", &report);
}
