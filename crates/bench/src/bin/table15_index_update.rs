//! Regenerates Table 15 (BFS Sharing index update cost) of the paper. Usage: `table15_index_update [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::table15_index_update::run(cli.profile, cli.seed);
    relcomp_bench::emit("table15_index_update", &report);
}
