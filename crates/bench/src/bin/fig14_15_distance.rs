//! Regenerates Figures 14-15 (s-t distance sensitivity) of the paper. Usage: `fig14_15_distance [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig14_15_distance::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig14_15_distance", &report);
}
