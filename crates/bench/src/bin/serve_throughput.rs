//! `serve_throughput` — closed-loop throughput/latency driver for the
//! `relcomp-serve` query service.
//!
//! Spins up an in-process server over a generated LastFM analog, then
//! hammers it with `C` closed-loop client connections replaying a mixed
//! st / top-k / distance-query workload (a small slice of the st pairs
//! repeats, so the result cache sees real re-use). Reports QPS, latency
//! percentiles per workload, cache hit rate, and three cross-checks:
//!
//! - determinism: multi-threaded estimates are bit-identical to
//!   single-threaded ones for the same seed;
//! - latency agreement: client-measured p50/p99 per workload land
//!   within one log2 bucket of the server registry's histogram
//!   percentiles (the wire adds tens of microseconds, the bucket
//!   grid is 2x — so a mismatch means the histograms are wrong);
//! - exposition: the Prometheus text rendering parses line by line
//!   and contains no duplicate metric/label series.
//!
//! ```text
//! cargo run --release --bin serve_throughput -- [quick|paper] [--seed N]
//! ```

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use relcomp_bench::serve_probe::{concurrency_key, connection_sweep};
use relcomp_bench::{cli, emit, percentile};
use relcomp_core::parallel::ParallelSampler;
use relcomp_eval::RunProfile;
use relcomp_obs::bucket_index;
use relcomp_serve::engine::{EngineConfig, QueryEngine};
use relcomp_serve::protocol::{DistanceQueryRequest, MetricsReport, QueryRequest, TopKRequest};
use relcomp_serve::{Client, Server, ServerMode, ServerOptions, TenantRegistry};
use relcomp_ugraph::{write_graph_v2, Dataset, NodeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Params {
    scale: f64,
    clients: usize,
    /// Unique st pairs (each asked once in the shuffled loop).
    st_pairs: usize,
    /// Leading st pairs re-asked once to exercise the result cache.
    hit_pairs: usize,
    topk_sources: usize,
    dquery_pairs: usize,
    st_samples: usize,
    topk_samples: usize,
    dquery_samples: usize,
}

/// One wire request in the shuffled mixed workload.
#[derive(Clone, Copy)]
enum Work {
    St(u32, u32),
    TopK(u32),
    DQuery(u32, u32),
}

impl Work {
    fn kind(self) -> usize {
        match self {
            Work::St(..) => 0,
            Work::TopK(..) => 1,
            Work::DQuery(..) => 2,
        }
    }
}

const KINDS: [&str; 3] = ["st", "topk", "dquery"];
const DQUERY_HOPS: usize = 4;

/// `|log2 bucket(client) - log2 bucket(server)| <= 1`, the agreement
/// criterion between wire-side and registry-side percentiles.
fn within_one_bucket(client_us: u64, server_us: u64) -> bool {
    let c = bucket_index(client_us) as i64;
    let s = bucket_index(server_us) as i64;
    (c - s).abs() <= 1
}

fn main() {
    let cli = cli();
    let p = match cli.profile {
        RunProfile::Quick => Params {
            scale: 0.05,
            clients: 4,
            st_pairs: 64,
            hit_pairs: 8,
            topk_sources: 12,
            dquery_pairs: 16,
            st_samples: 10_000,
            topk_samples: 2000,
            dquery_samples: 4000,
        },
        RunProfile::Paper => Params {
            scale: 0.3,
            clients: 8,
            st_pairs: 256,
            hit_pairs: 16,
            topk_sources: 32,
            dquery_pairs: 64,
            st_samples: 20_000,
            topk_samples: 5000,
            dquery_samples: 10_000,
        },
    };

    let graph = Arc::new(Dataset::LastFm.generate_with_scale(p.scale, cli.seed));
    let n = graph.num_nodes() as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);

    let pair = |rng: &mut ChaCha8Rng| {
        let s = rng.gen_range(0..n);
        let mut t = rng.gen_range(0..n);
        while t == s {
            t = rng.gen_range(0..n);
        }
        (s, t)
    };
    let st_pairs: Vec<(u32, u32)> = (0..p.st_pairs).map(|_| pair(&mut rng)).collect();
    let mut workload: Vec<Work> = st_pairs.iter().map(|&(s, t)| Work::St(s, t)).collect();
    // Re-ask the leading pairs once: shuffled in, they give the result
    // cache real re-use without dominating the latency distribution.
    workload.extend(st_pairs[..p.hit_pairs].iter().map(|&(s, t)| Work::St(s, t)));
    workload.extend((0..p.topk_sources).map(|_| Work::TopK(rng.gen_range(0..n))));
    workload.extend((0..p.dquery_pairs).map(|_| {
        let (s, t) = pair(&mut rng);
        Work::DQuery(s, t)
    }));
    workload.shuffle(&mut rng);

    // Determinism cross-check before serving: multi-threaded sampling must
    // be bit-identical to single-threaded for the same seed. Always use a
    // genuinely multi-threaded sampler even on single-core machines.
    let threads = std::thread::available_parallelism().map_or(4, |c| c.get());
    let check_threads = threads.max(4);
    let single = ParallelSampler::new(Arc::clone(&graph), 1);
    let multi = ParallelSampler::new(Arc::clone(&graph), check_threads);
    for &(s, t) in st_pairs.iter().take(3) {
        let a = single.estimate_mc(NodeId(s), NodeId(t), p.st_samples, cli.seed);
        let b = multi.estimate_mc(NodeId(s), NodeId(t), p.st_samples, cli.seed);
        assert_eq!(
            a.reliability.to_bits(),
            b.reliability.to_bits(),
            "thread-count determinism violated for ({s}, {t})"
        );
    }

    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&graph),
        EngineConfig {
            threads,
            default_seed: cli.seed,
            ..Default::default()
        },
    ));
    // Thread-per-connection for the agreement phase: with a dedicated
    // thread per client the wire adds only tens of microseconds over the
    // registry's view, so client and server percentiles stay within one
    // bucket. The reactor queues requests at its worker pool, which adds
    // client-visible wait the registry deliberately does not count; its
    // connection-handling cost is measured by the churn sweep below.
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::new(TenantRegistry::single(Arc::clone(&engine))),
        ServerOptions {
            mode: ServerMode::Threaded,
            ..Default::default()
        },
    )
    .expect("bind server");
    let (addr, _server_thread) = server.spawn().expect("spawn server");

    // Closed loop: `clients` connections race through the shared workload.
    let cursor = AtomicUsize::new(0);
    let latencies: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::with_capacity(workload.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..p.clients {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect client");
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&work) = workload.get(i) else {
                        break;
                    };
                    let sent = Instant::now();
                    match work {
                        Work::St(s, t) => {
                            let resp = client
                                .query(QueryRequest {
                                    estimator: Some("mc".into()),
                                    samples: Some(p.st_samples),
                                    seed: Some(cli.seed),
                                    ..QueryRequest::new(s, t)
                                })
                                .expect("query");
                            assert!((0.0..=1.0).contains(&resp.reliability));
                        }
                        Work::TopK(s) => {
                            let resp = client
                                .topk(TopKRequest {
                                    k: Some(8),
                                    samples: Some(p.topk_samples),
                                    seed: Some(cli.seed),
                                    ..TopKRequest::new(s)
                                })
                                .expect("topk");
                            assert!(!resp.targets.is_empty());
                        }
                        Work::DQuery(s, t) => {
                            let resp = client
                                .dquery(DistanceQueryRequest {
                                    samples: Some(p.dquery_samples),
                                    seed: Some(cli.seed),
                                    ..DistanceQueryRequest::new(s, t, DQUERY_HOPS)
                                })
                                .expect("dquery");
                            assert!((0.0..=1.0).contains(&resp.reliability));
                        }
                    }
                    local.push((work.kind(), sent.elapsed().as_micros() as u64));
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let wall = start.elapsed();

    let all = latencies.into_inner().unwrap();
    assert_eq!(all.len(), workload.len(), "every query must be answered");

    // One guaranteed cache hit after the race: the first st pair again,
    // sequentially, so `cache_hits > 0` holds regardless of interleaving.
    let mut tail_client = Client::connect(addr).expect("connect tail client");
    let (s0, t0) = st_pairs[0];
    let sent = Instant::now();
    let hit = tail_client
        .query(QueryRequest {
            estimator: Some("mc".into()),
            samples: Some(p.st_samples),
            seed: Some(cli.seed),
            ..QueryRequest::new(s0, t0)
        })
        .expect("tail query");
    let tail_us = (sent.elapsed().as_micros() as u64).max(1);
    assert!(hit.cached, "sequential re-ask of a served pair must hit");

    // Per-kind client-side latency vectors, sorted for percentiles. The
    // tail hit joins the st vector so both sides count the same queries.
    let mut by_kind: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for &(kind, us) in &all {
        by_kind[kind].push(us);
    }
    by_kind[0].push(tail_us);
    let mut flat: Vec<u64> = Vec::new();
    for v in &mut by_kind {
        v.sort_unstable();
        flat.extend(v.iter().copied());
    }
    flat.sort_unstable();

    // Server-side view: the registry histograms behind the `metrics` verb.
    let report: MetricsReport = tail_client.metrics().expect("metrics verb");
    let stats = engine.stats();
    assert!(
        stats.cache_hits > 0,
        "repeated-query workload must produce cache hits"
    );
    assert!(
        report.counter_total("relcomp_cache_hits_total") > 0,
        "registry must mirror the cache hits"
    );

    let mut agreement = String::new();
    let mut check =
        |label: &str, client: &[u64], server: &relcomp_serve::protocol::HistogramRow| {
            assert_eq!(
                server.count,
                client.len() as u64,
                "{label}: server histogram count must equal client request count"
            );
            let cp50 = percentile(client, 0.50);
            let cp99 = percentile(client, 0.99);
            assert!(
                within_one_bucket(cp50, server.p50),
                "{label}: client p50 {cp50}us vs server p50 {server:?} off by >1 bucket",
            );
            assert!(
                within_one_bucket(cp99, server.p99),
                "{label}: client p99 {cp99}us vs server p99 {server:?} off by >1 bucket",
            );
            agreement.push_str(&format!(
                "  {:<7} n {:>5}   client p50/p99 {:>7}/{:>7} us   server p50/p99 {:>7}/{:>7} us\n",
                label,
                client.len(),
                cp50,
                cp99,
                server.p50,
                server.p99,
            ));
        };
    for (kind, label) in KINDS.iter().enumerate() {
        let row = report
            .histogram(
                "relcomp_query_latency_micros",
                &[("graph", "default"), ("workload", label)],
            )
            .unwrap_or_else(|| panic!("{label} latency histogram missing"));
        check(label, &by_kind[kind], row);
    }
    let row_all = report
        .histogram(
            "relcomp_query_latency_micros",
            &[("graph", "default"), ("workload", "all")],
        )
        .expect("merged latency histogram missing");
    check("all", &flat, row_all);

    // Prometheus exposition: every sample line parses, no duplicate series.
    let prom = tail_client.metrics_prom().expect("prom exposition");
    let mut series: Vec<&str> = Vec::new();
    for line in prom
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable prom line: {line}"));
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("non-numeric prom value: {line}"));
        series.push(name);
    }
    let total_series = series.len();
    series.sort_unstable();
    series.dedup();
    assert_eq!(
        series.len(),
        total_series,
        "duplicate metric/label series in prom exposition"
    );
    assert!(
        prom.contains("# TYPE relcomp_query_latency_micros histogram"),
        "prom exposition must declare the latency histogram family"
    );

    // Multi-graph mixed mode: load a second analog under `alt`, point a
    // connection at it, and check tenant cache isolation end to end. The
    // first st pair is cached on `default` by now, so the same request
    // against `alt` must miss (isolated cache) and only then hit.
    let alt_dir = std::env::temp_dir().join(format!("relcomp_serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&alt_dir).expect("create temp dir for alt graph");
    let alt_path = alt_dir.join("alt.ug2");
    let alt_graph = Arc::new(Dataset::LastFm.generate_with_scale(p.scale, cli.seed ^ 0xa17));
    write_graph_v2(&alt_graph, &alt_path).expect("write alt graph");
    let loaded = tail_client
        .load_graph("alt", alt_path.to_str().expect("utf8 temp path"), None)
        .expect("load alt tenant");
    assert_eq!(loaded.nodes, alt_graph.num_nodes(), "alt graph round trip");
    let mut alt_client = Client::connect(addr).expect("connect alt client");
    alt_client.use_graph("alt").expect("use alt tenant");
    let alt_request = QueryRequest {
        estimator: Some("mc".into()),
        samples: Some(p.st_samples),
        seed: Some(cli.seed),
        ..QueryRequest::new(s0, t0)
    };
    let alt_first = alt_client.query(alt_request.clone()).expect("alt query");
    assert!(
        !alt_first.cached,
        "tenant caches must be isolated: ({s0}, {t0}) is cached on default but not alt"
    );
    let alt_second = alt_client.query(alt_request).expect("alt repeat");
    assert!(alt_second.cached, "alt tenant must cache its own results");
    // The alt answer must be bit-identical to sampling alt's graph
    // directly with the same thread count and seed.
    let alt_direct = ParallelSampler::new(Arc::clone(&alt_graph), threads).estimate_mc(
        NodeId(s0),
        NodeId(t0),
        p.st_samples,
        cli.seed,
    );
    assert_eq!(
        alt_first.reliability.to_bits(),
        alt_direct.reliability.to_bits(),
        "served alt answer diverged from direct sampling"
    );
    let prom_multi = tail_client.metrics_prom().expect("multi-tenant prom");
    assert!(
        prom_multi.contains("graph=\"alt\"") && prom_multi.contains("graph=\"default\""),
        "prom exposition must label series per tenant"
    );
    assert!(
        prom_multi.contains("relcomp_tenants 2"),
        "tenant gauge must count both graphs"
    );
    tail_client.unload_graph("alt").expect("unload alt tenant");
    assert!(
        alt_client.query(QueryRequest::new(s0, t0)).is_err(),
        "queries against an unloaded tenant must error"
    );
    std::fs::remove_dir_all(&alt_dir).ok();

    let mut shutdown_client = Client::connect(addr).expect("connect for shutdown");
    shutdown_client.shutdown().ok();

    // Connection-churn sweep: reactor vs threaded per-connection cost at
    // each concurrency level, on dedicated servers with warm caches.
    let sweep = connection_sweep(cli.profile, cli.seed);
    let mut sweep_table = String::new();
    for row in &sweep {
        sweep_table.push_str(&format!(
            "  {:<16} {:>6} conns  {:>7} reqs  {:>9.1} us/req  {:>9.0} req/s\n",
            concurrency_key(row),
            row.connections,
            row.requests,
            row.us_per_request,
            row.qps,
        ));
    }
    let top = sweep.iter().map(|r| r.connections).max().unwrap_or(0);
    let qps_at = |mode: &str| {
        sweep
            .iter()
            .find(|r| r.mode == mode && r.connections == top)
            .map(|r| r.qps)
    };
    let churn_speedup = match (qps_at("reactor"), qps_at("threaded")) {
        (Some(r), Some(t)) if t > 0.0 => r / t,
        _ => 0.0,
    };

    let qps = all.len() as f64 / wall.as_secs_f64();
    let report_text = format!(
        "serve_throughput ({:?} profile, seed {})\n\
         =============================================\n\
         graph:        LastFM analog, scale {} ({} nodes, {} edges)\n\
         server:       {} sampling threads, {}-entry cache, addr {}\n\
         workload:     {} queries ({} st + {} repeats + {} topk + {} dquery), {} closed-loop clients\n\
         \n\
         throughput:   {:.0} queries/s  ({} queries in {:.2} s)\n\
         latency (us): p50 {}  p90 {}  p99 {}  max {}\n\
         cache:        {} hits / {} misses ({:.1}% hit rate), {} entries resident\n\
         determinism:  {}-thread estimates bit-identical to 1-thread (checked {} pairs)\n\
         exposition:   {} prom series, all unique and numeric\n\
         multi-graph:  `alt` tenant loaded/queried/unloaded over the wire; \
         caches isolated, answers bit-identical to direct sampling\n\
         \n\
         client vs server registry percentiles (agree within one log2 bucket):\n\
         {}\
         \n\
         connection churn (closed loop, connect + cached query + close per round):\n\
         {}\
         reactor vs threaded at {} connections: {:.1}x the closed-loop QPS\n",
        cli.profile,
        cli.seed,
        p.scale,
        graph.num_nodes(),
        graph.num_edges(),
        stats.threads,
        engine.config().cache_capacity,
        addr,
        all.len(),
        p.st_pairs,
        p.hit_pairs,
        p.topk_sources,
        p.dquery_pairs,
        p.clients,
        qps,
        all.len(),
        wall.as_secs_f64(),
        percentile(&flat, 0.50),
        percentile(&flat, 0.90),
        percentile(&flat, 0.99),
        flat.last().copied().unwrap_or(0),
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
        stats.cache_entries,
        check_threads,
        3.min(st_pairs.len()),
        total_series,
        agreement,
        sweep_table,
        top,
        churn_speedup,
    );
    emit("serve_throughput", &report_text);
}
