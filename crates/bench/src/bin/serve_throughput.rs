//! `serve_throughput` — closed-loop throughput/latency driver for the
//! `relcomp-serve` query service.
//!
//! Spins up an in-process server over a generated LastFM analog, then
//! hammers it with `C` closed-loop client connections replaying a
//! repeated-query workload (each (s, t) pair is asked `R` times, shuffled,
//! so the result cache sees real re-use). Reports QPS, latency
//! percentiles, cache hit rate, and a determinism cross-check
//! (multi-threaded estimates must be bit-identical to single-threaded
//! ones) to stdout and `results/serve_throughput.txt`.
//!
//! ```text
//! cargo run --release --bin serve_throughput -- [quick|paper] [--seed N]
//! ```

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use relcomp_bench::{cli, emit, percentile};
use relcomp_core::parallel::ParallelSampler;
use relcomp_eval::RunProfile;
use relcomp_serve::engine::{EngineConfig, QueryEngine};
use relcomp_serve::protocol::QueryRequest;
use relcomp_serve::{Client, Server};
use relcomp_ugraph::{Dataset, NodeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Params {
    scale: f64,
    clients: usize,
    pairs: usize,
    repeats: usize,
    samples: usize,
}

fn main() {
    let cli = cli();
    let p = match cli.profile {
        RunProfile::Quick => Params {
            scale: 0.05,
            clients: 4,
            pairs: 16,
            repeats: 8,
            samples: 1000,
        },
        RunProfile::Paper => Params {
            scale: 0.3,
            clients: 8,
            pairs: 64,
            repeats: 25,
            samples: 5000,
        },
    };

    let graph = Arc::new(Dataset::LastFm.generate_with_scale(p.scale, cli.seed));
    let n = graph.num_nodes() as u32;
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);

    // Query pairs (s != t), each repeated `repeats` times, shuffled: a
    // closed-loop workload with guaranteed re-use for the cache.
    let pairs: Vec<(u32, u32)> = (0..p.pairs)
        .map(|_| {
            let s = rng.gen_range(0..n);
            let mut t = rng.gen_range(0..n);
            while t == s {
                t = rng.gen_range(0..n);
            }
            (s, t)
        })
        .collect();
    let mut workload: Vec<(u32, u32)> = pairs
        .iter()
        .flat_map(|&pair| std::iter::repeat(pair).take(p.repeats))
        .collect();
    workload.shuffle(&mut rng);

    // Determinism cross-check before serving: multi-threaded sampling must
    // be bit-identical to single-threaded for the same seed. Always use a
    // genuinely multi-threaded sampler even on single-core machines.
    let threads = std::thread::available_parallelism().map_or(4, |c| c.get());
    let check_threads = threads.max(4);
    let single = ParallelSampler::new(Arc::clone(&graph), 1);
    let multi = ParallelSampler::new(Arc::clone(&graph), check_threads);
    for &(s, t) in pairs.iter().take(3) {
        let a = single.estimate_mc(NodeId(s), NodeId(t), p.samples, cli.seed);
        let b = multi.estimate_mc(NodeId(s), NodeId(t), p.samples, cli.seed);
        assert_eq!(
            a.reliability.to_bits(),
            b.reliability.to_bits(),
            "thread-count determinism violated for ({s}, {t})"
        );
    }

    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&graph),
        EngineConfig {
            threads,
            default_seed: cli.seed,
            ..Default::default()
        },
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind server");
    let (addr, _server_thread) = server.spawn().expect("spawn server");

    // Closed loop: `clients` connections race through the shared workload.
    let cursor = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(workload.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..p.clients {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("connect client");
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, t)) = workload.get(i) else {
                        break;
                    };
                    let sent = Instant::now();
                    let resp = client
                        .query(QueryRequest {
                            estimator: Some("mc".into()),
                            samples: Some(p.samples),
                            seed: Some(cli.seed),
                            ..QueryRequest::new(s, t)
                        })
                        .expect("query");
                    local.push(sent.elapsed().as_micros() as u64);
                    assert!((0.0..=1.0).contains(&resp.reliability));
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let wall = start.elapsed();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    assert_eq!(lat.len(), workload.len(), "every query must be answered");

    let stats = engine.stats();
    assert!(
        stats.cache_hits > 0,
        "repeated-query workload must produce cache hits"
    );
    let mut shutdown_client = Client::connect(addr).expect("connect for shutdown");
    shutdown_client.shutdown().ok();

    let qps = lat.len() as f64 / wall.as_secs_f64();
    let report = format!(
        "serve_throughput ({:?} profile, seed {})\n\
         =============================================\n\
         graph:        LastFM analog, scale {} ({} nodes, {} edges)\n\
         server:       {} sampling threads, {}-entry cache, addr {}\n\
         workload:     {} queries ({} pairs x {} repeats, K = {}), {} closed-loop clients\n\
         \n\
         throughput:   {:.0} queries/s  ({} queries in {:.2} s)\n\
         latency (us): p50 {}  p90 {}  p99 {}  max {}\n\
         cache:        {} hits / {} misses ({:.1}% hit rate), {} entries resident\n\
         determinism:  {}-thread estimates bit-identical to 1-thread (checked {} pairs)\n",
        cli.profile,
        cli.seed,
        p.scale,
        graph.num_nodes(),
        graph.num_edges(),
        stats.threads,
        engine.config().cache_capacity,
        addr,
        lat.len(),
        p.pairs,
        p.repeats,
        p.samples,
        p.clients,
        qps,
        lat.len(),
        wall.as_secs_f64(),
        percentile(&lat, 0.50),
        percentile(&lat, 0.90),
        percentile(&lat, 0.99),
        lat.last().copied().unwrap_or(0),
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
        stats.cache_entries,
        check_threads,
        3.min(pairs.len()),
    );
    emit("serve_throughput", &report);
}
