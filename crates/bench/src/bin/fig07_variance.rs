//! Regenerates Figure 7a-f (estimator variance and convergence) of the paper. Usage: `fig07_variance [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig07_variance::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig07_variance", &report);
}
