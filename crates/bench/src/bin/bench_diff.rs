//! Compare a fresh `BENCH_summary.json` against the committed
//! `BENCH_baseline.json`, row by row, and fail on perf regressions.
//!
//! Usage:
//!
//! ```text
//! bench_diff [--baseline PATH] [--summary PATH] [--tolerance F]
//!            [--min-ms F] [--report-only]
//! ```
//!
//! Six row families are matched by name: per-estimator wall times
//! (`estimators`), served-workload wall times (`workloads`, keyed by
//! `workload/mode`), per-sample costs (`per_sample`, compared on
//! `ns_per_sample`), serve registry latency percentiles
//! (`serve_metrics`, keyed by workload, compared on `p50_micros`),
//! connection-churn costs (`serve_conc`, keyed by `mode/c{connections}`,
//! compared on `us_per_request`), and cold-start rows (`cold_start`,
//! keyed by `mode/{load,first_query,rss}` — load and first-query wall ms
//! plus peak RSS in MiB).
//! A row regresses when the fresh value exceeds
//! `baseline * (1 + tolerance)`; wall-time rows faster than `--min-ms`
//! in both runs are skipped as noise. `serve_metrics` rows are
//! informational only — the registry's log2 histogram buckets quantize
//! percentiles in 2x jumps, far coarser than the gate tolerance — so
//! they are printed but never fail. Exits nonzero on any regression
//! unless `--report-only` is given. Rows present on only one side are
//! reported but never fail the gate (estimator sets may grow).

use relcomp_bench::summary::{load, BenchSummary};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    baseline: PathBuf,
    summary: PathBuf,
    tolerance: f64,
    min_ms: f64,
    report_only: bool,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        baseline: relcomp_bench::repo_root().join("BENCH_baseline.json"),
        summary: relcomp_bench::repo_root().join("BENCH_summary.json"),
        tolerance: 0.3,
        min_ms: 1.0,
        report_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match arg.as_str() {
            "--baseline" => opts.baseline = PathBuf::from(value("--baseline")?),
            "--summary" => opts.summary = PathBuf::from(value("--summary")?),
            "--tolerance" => {
                let v = value("--tolerance")?;
                opts.tolerance = v.parse().map_err(|_| format!("bad tolerance: {v}"))?;
            }
            "--min-ms" => {
                let v = value("--min-ms")?;
                opts.min_ms = v.parse().map_err(|_| format!("bad min-ms: {v}"))?;
            }
            "--report-only" => opts.report_only = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

/// One comparison row: `(section, name, baseline, fresh)` in the
/// section's native unit. `None` marks a side that lacks the row.
struct DiffRow {
    section: &'static str,
    name: String,
    unit: &'static str,
    base: Option<f64>,
    fresh: Option<f64>,
    /// Whether the noise floor applies (wall-time rows only).
    floored: bool,
    /// Informational rows are printed but never counted as regressions
    /// (used for log2-quantized registry percentiles).
    info: bool,
}

fn collect_rows(base: &BenchSummary, fresh: &BenchSummary) -> Vec<DiffRow> {
    let mut rows = Vec::new();
    let mut push = |section, name: String, unit, b, f, floored, info| {
        rows.push(DiffRow {
            section,
            name,
            unit,
            base: b,
            fresh: f,
            floored,
            info,
        });
    };
    let names: Vec<String> = {
        let mut v: Vec<String> = base
            .estimators
            .iter()
            .map(|r| r.estimator.clone())
            .collect();
        for r in &fresh.estimators {
            if !v.contains(&r.estimator) {
                v.push(r.estimator.clone());
            }
        }
        v
    };
    for name in names {
        let b = base
            .estimators
            .iter()
            .find(|r| r.estimator == name)
            .map(|r| r.wall_ms);
        let f = fresh
            .estimators
            .iter()
            .find(|r| r.estimator == name)
            .map(|r| r.wall_ms);
        push("estimators", name, "ms", b, f, true, false);
    }
    let keys: Vec<String> = {
        let key =
            |r: &relcomp_bench::adaptive::WorkloadTiming| format!("{}/{}", r.workload, r.mode);
        let mut v: Vec<String> = base.workloads.iter().map(key).collect();
        for r in &fresh.workloads {
            let k = key(r);
            if !v.contains(&k) {
                v.push(k);
            }
        }
        v
    };
    for name in keys {
        let find = |s: &BenchSummary| {
            s.workloads
                .iter()
                .find(|r| format!("{}/{}", r.workload, r.mode) == name)
                .map(|r| r.wall_ms)
        };
        push(
            "workloads",
            name.clone(),
            "ms",
            find(base),
            find(fresh),
            true,
            false,
        );
    }
    let paths: Vec<String> = {
        let mut v: Vec<String> = base.per_sample.iter().map(|r| r.path.clone()).collect();
        for r in &fresh.per_sample {
            if !v.contains(&r.path) {
                v.push(r.path.clone());
            }
        }
        v
    };
    for name in paths {
        let find = |s: &BenchSummary| {
            s.per_sample
                .iter()
                .find(|r| r.path == name)
                .map(|r| r.ns_per_sample)
        };
        push(
            "per_sample",
            name.clone(),
            "ns/sample",
            find(base),
            find(fresh),
            false,
            false,
        );
    }
    let serve_keys: Vec<String> = {
        let mut v: Vec<String> = base
            .serve_metrics
            .iter()
            .map(|r| r.workload.clone())
            .collect();
        for r in &fresh.serve_metrics {
            if !v.contains(&r.workload) {
                v.push(r.workload.clone());
            }
        }
        v
    };
    for name in serve_keys {
        let find = |s: &BenchSummary| {
            s.serve_metrics
                .iter()
                .find(|r| r.workload == name)
                .map(|r| r.p50_micros)
        };
        // Informational: log2 buckets quantize p50 in 2x steps, so the
        // gate tolerance cannot meaningfully apply.
        push(
            "serve_metrics",
            format!("{name}/p50"),
            "us",
            find(base),
            find(fresh),
            false,
            true,
        );
    }
    let churn_keys: Vec<String> = {
        let key = relcomp_bench::serve_probe::concurrency_key;
        let mut v: Vec<String> = base.serve_concurrency.iter().map(key).collect();
        for r in &fresh.serve_concurrency {
            let k = key(r);
            if !v.contains(&k) {
                v.push(k);
            }
        }
        v
    };
    for name in churn_keys {
        let find = |s: &BenchSummary| {
            s.serve_concurrency
                .iter()
                .find(|r| relcomp_bench::serve_probe::concurrency_key(r) == name)
                .map(|r| r.us_per_request)
        };
        // Per-request churn cost is microseconds-scale by design, so the
        // wall-time noise floor (milliseconds) cannot apply. Threaded
        // rows past the stock accept backlog (128) sit in the kernel's
        // SYN-retransmit regime — wall time there is quantized by ~1 s
        // timers, far too coarse to gate — so they are informational,
        // kept for the reactor-vs-threaded headline comparison.
        let info = name
            .strip_prefix("threaded/c")
            .and_then(|c| c.parse::<usize>().ok())
            .is_some_and(|c| c > 128);
        push(
            "serve_conc",
            name.clone(),
            "us/req",
            find(base),
            find(fresh),
            false,
            info,
        );
    }
    let cold_keys: Vec<String> = {
        let mut v: Vec<String> = base.cold_start.iter().map(|r| r.mode.clone()).collect();
        for r in &fresh.cold_start {
            if !v.contains(&r.mode) {
                v.push(r.mode.clone());
            }
        }
        v
    };
    for mode in cold_keys {
        let metric = |f: fn(&relcomp_bench::summary::ColdStartRow) -> f64| {
            let find = |s: &BenchSummary| s.cold_start.iter().find(|r| r.mode == mode).map(f);
            (find(base), find(fresh))
        };
        let (b, f) = metric(|r| r.load_ms);
        push(
            "cold_start",
            format!("{mode}/load"),
            "ms",
            b,
            f,
            true,
            false,
        );
        let (b, f) = metric(|r| r.first_query_ms);
        push(
            "cold_start",
            format!("{mode}/first_query"),
            "ms",
            b,
            f,
            true,
            false,
        );
        let (b, f) = metric(|r| r.peak_rss_bytes as f64 / (1024.0 * 1024.0));
        push(
            "cold_start",
            format!("{mode}/rss"),
            "MiB",
            b,
            f,
            false,
            false,
        );
    }
    rows
}

fn main() -> ExitCode {
    let opts = parse_options().unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!(
            "usage: bench_diff [--baseline PATH] [--summary PATH] [--tolerance F] \
             [--min-ms F] [--report-only]"
        );
        std::process::exit(2);
    });
    let base = load(&opts.baseline).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let fresh = load(&opts.summary).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let mut report = String::new();
    report.push_str(&format!(
        "bench_diff: {} (baseline) vs {} (fresh), tolerance +{:.0}%, noise floor {} ms\n\n",
        opts.baseline.display(),
        opts.summary.display(),
        opts.tolerance * 100.0,
        opts.min_ms,
    ));
    report.push_str(&format!(
        "{:<12} {:<24} {:>12} {:>12} {:>9}  {}\n",
        "section", "row", "baseline", "fresh", "delta", "status"
    ));
    let mut regressions = 0usize;
    for row in collect_rows(&base, &fresh) {
        let (base_s, fresh_s, delta_s, status) = match (row.base, row.fresh) {
            (Some(b), Some(f)) => {
                let delta = if b > 0.0 { (f - b) / b * 100.0 } else { 0.0 };
                let noise = row.floored && b < opts.min_ms && f < opts.min_ms;
                let status = if row.info {
                    "info"
                } else if noise {
                    "ok (below floor)"
                } else if f > b * (1.0 + opts.tolerance) {
                    regressions += 1;
                    "REGRESSED"
                } else if b > f * (1.0 + opts.tolerance) {
                    "improved"
                } else {
                    "ok"
                };
                (
                    format!("{b:.2} {}", row.unit),
                    format!("{f:.2} {}", row.unit),
                    format!("{delta:+.1}%"),
                    status,
                )
            }
            (None, Some(f)) => (
                "-".to_string(),
                format!("{f:.2} {}", row.unit),
                "-".to_string(),
                "new row",
            ),
            (Some(b), None) => (
                format!("{b:.2} {}", row.unit),
                "-".to_string(),
                "-".to_string(),
                "missing in fresh",
            ),
            (None, None) => continue,
        };
        report.push_str(&format!(
            "{:<12} {:<24} {:>12} {:>12} {:>9}  {}\n",
            row.section, row.name, base_s, fresh_s, delta_s, status
        ));
    }
    report.push('\n');
    if regressions > 0 {
        report.push_str(&format!(
            "{regressions} row(s) regressed beyond +{:.0}%",
            opts.tolerance * 100.0
        ));
        if opts.report_only {
            report.push_str(" (report-only mode: exit 0)");
        }
        report.push('\n');
    } else {
        report.push_str("no regressions\n");
    }
    relcomp_bench::emit("bench_diff", &report);
    if regressions > 0 && !opts.report_only {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
