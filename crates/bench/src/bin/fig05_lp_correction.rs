//! Regenerates Figure 5 (LP vs LP+ correction) of the paper. Usage: `fig05_lp_correction [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::fig05_lp_correction::run(cli.profile, cli.seed);
    relcomp_bench::emit("fig05_lp_correction", &report);
}
