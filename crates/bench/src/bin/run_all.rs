//! Regenerates every table and figure of the paper in one pass.
//! Usage: `run_all [quick|paper] [--seed N]`.
//!
//! Order follows the paper's Section 3. Each report is printed and
//! mirrored under `results/`.

use relcomp_eval::experiments as exp;
use relcomp_eval::RunProfile;

/// An experiment entry point: `(profile, seed) -> report text`.
type Job = fn(RunProfile, u64) -> String;

fn main() {
    let cli = relcomp_bench::cli();
    let (profile, seed) = (cli.profile, cli.seed);
    let jobs: Vec<(&str, Job)> = vec![
        ("table02_datasets", exp::table02_datasets::run),
        ("fig05_lp_correction", exp::fig05_lp_correction::run),
        ("fig07_variance", exp::fig07_variance::run),
        ("fig08_convergence_quality", exp::fig08_quality::run),
        ("fig09_11_tradeoff", exp::fig09_11_tradeoff::run),
        ("tables03_08_accuracy", exp::tables03_08_accuracy::run),
        ("tables09_14_runtime", exp::tables09_14_runtime::run),
        ("fig12_memory", exp::fig12_memory::run),
        ("fig13_indexing", exp::fig13_indexing::run),
        ("table15_index_update", exp::table15_index_update::run),
        ("table16_probtree_coupling", exp::table16_coupling::run),
        ("fig14_15_distance", exp::fig14_15_distance::run),
        ("fig16_threshold", exp::fig16_threshold::run),
        ("fig17_stratum", exp::fig17_stratum::run),
        ("table17_summary", exp::table17_summary::run),
        // Extensions beyond the paper, kept in the sweep so the weekly
        // CI smoke exercises every experiment module.
        ("ext_bounds", exp::ext_bounds::run),
        ("ext_topk", exp::ext_topk::run),
    ];
    for (name, job) in jobs {
        eprintln!(">>> running {name} ...");
        let start = std::time::Instant::now();
        let report = job(profile, seed);
        relcomp_bench::emit(name, &report);
        eprintln!(
            "<<< {name} finished in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
}
