//! Regenerates every table and figure of the paper in one pass.
//! Usage: `run_all [quick|paper] [--seed N]`.
//!
//! Order follows the paper's Section 3. Each report is printed and
//! mirrored under `results/`; a machine-readable `BENCH_summary.json`
//! (per-job wall time plus a per-estimator timing probe) lands at the
//! repo root so the perf trajectory across commits has data points.

use relcomp_bench::adaptive::{packed_speedup, per_sample_probe, timing_probe, workload_probe};
use relcomp_bench::summary::{BenchSummary, JobTiming};
use relcomp_eval::experiments as exp;
use relcomp_eval::{ExperimentEnv, RunProfile};
use relcomp_ugraph::Dataset;

/// An experiment entry point: `(profile, seed) -> report text`.
type Job = fn(RunProfile, u64) -> String;

fn main() {
    let cli = relcomp_bench::cli();
    let (profile, seed) = (cli.profile, cli.seed);
    let jobs: Vec<(&str, Job)> = vec![
        ("table02_datasets", exp::table02_datasets::run),
        ("fig05_lp_correction", exp::fig05_lp_correction::run),
        ("fig07_variance", exp::fig07_variance::run),
        ("fig08_convergence_quality", exp::fig08_quality::run),
        ("fig09_11_tradeoff", exp::fig09_11_tradeoff::run),
        ("tables03_08_accuracy", exp::tables03_08_accuracy::run),
        ("tables09_14_runtime", exp::tables09_14_runtime::run),
        ("fig12_memory", exp::fig12_memory::run),
        ("fig13_indexing", exp::fig13_indexing::run),
        ("table15_index_update", exp::table15_index_update::run),
        ("table16_probtree_coupling", exp::table16_coupling::run),
        ("fig14_15_distance", exp::fig14_15_distance::run),
        ("fig16_threshold", exp::fig16_threshold::run),
        ("fig17_stratum", exp::fig17_stratum::run),
        ("table17_summary", exp::table17_summary::run),
        // Extensions beyond the paper, kept in the sweep so the weekly
        // CI smoke exercises every experiment module.
        ("ext_bounds", exp::ext_bounds::run),
        ("ext_topk", exp::ext_topk::run),
    ];
    let sweep_start = std::time::Instant::now();
    let mut timings = Vec::new();
    for (name, job) in jobs {
        eprintln!(">>> running {name} ...");
        let start = std::time::Instant::now();
        let report = job(profile, seed);
        relcomp_bench::emit(name, &report);
        let secs = start.elapsed().as_secs_f64();
        eprintln!("<<< {name} finished in {secs:.1}s");
        timings.push(JobTiming {
            name: name.to_string(),
            secs,
        });
    }

    // Per-estimator probe: fixed K = 1000 over a small LastFM workload.
    eprintln!(">>> timing probe (paper six @ K = 1000, LastFM analog) ...");
    let mut env = ExperimentEnv::prepare(Dataset::LastFm, profile, 2, seed);
    env.workload.pairs.truncate(10);
    let estimators = timing_probe(&env, 1000);
    eprintln!(">>> workload probe (topk / dquery / maximize, fixed vs eps-adaptive) ...");
    let workloads = workload_probe(&env, 10_000, 0.05, 50_000);
    eprintln!(">>> per-sample probe (scalar vs packed sampling, five datasets) ...");
    let per_sample = per_sample_probe(profile, seed, 10_000);
    let mc_packed_speedup = packed_speedup(&per_sample).unwrap_or(0.0);
    eprintln!("    packed MC speedup (geomean): {mc_packed_speedup:.2}x");
    eprintln!(">>> serve metrics probe (mixed st/topk/dquery/maximize, registry percentiles) ...");
    let serve_metrics = relcomp_bench::serve_probe::serve_metrics_probe(profile, seed);
    eprintln!(">>> connection sweep (reactor vs threaded churn) ...");
    let serve_concurrency = relcomp_bench::serve_probe::connection_sweep(profile, seed);

    relcomp_bench::summary::write(&BenchSummary {
        profile: match profile {
            RunProfile::Quick => "quick".to_string(),
            RunProfile::Paper => "paper".to_string(),
        },
        seed,
        total_secs: sweep_start.elapsed().as_secs_f64(),
        jobs: timings,
        estimators,
        workloads,
        per_sample,
        mc_packed_speedup,
        serve_metrics,
        serve_concurrency,
        cold_start: Vec::new(),
    });
}
