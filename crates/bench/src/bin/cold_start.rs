//! Cold-start bench: how fast is a graph usable after process start?
//!
//! Generates a BA graph once (streamed straight to a v2 file, plus a v1
//! binary conversion), then spawns one fresh child process per load path
//! — `mmap` (v2 zero-copy), `heap_v2` (v2 full parse), `v1_binary`
//! (legacy bulk reader). Each child loads the file, answers one
//! distance-constrained query, and reports load latency, first-query
//! latency, and peak RSS (`VmHWM`). Generation happens before the
//! children run, so every child sees the same warm page cache — the
//! scenario the mmap path is built for (server restart on a box that
//! already served the graph).
//!
//! Rows are merged into `BENCH_summary.json` (preserving rows an earlier
//! `perf_probe`/`run_all` wrote) so `bench_diff` gates them against
//! `BENCH_baseline.json` in CI.
//!
//! Usage: `cold_start [quick|paper] [--seed N] [--nodes N] [--dir PATH]`
//! (plus the internal `--child MODE PATH` the parent uses to spawn
//! measurement processes).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_bench::summary::{BenchSummary, ColdStartRow};
use relcomp_core::SampleBudget;
use relcomp_eval::RunProfile;
use relcomp_ugraph::generators::{generate_v2_file, StreamSpec, StreamTopology};
use relcomp_ugraph::io::{load_graph_binary, save_graph_binary};
use relcomp_ugraph::{load_graph_v2, load_graph_v2_heap, NodeId, UncertainGraph};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Samples for the child's first query — small on purpose: the bench
/// measures time-to-first-answer after restart, not sampling throughput.
const FIRST_QUERY_SAMPLES: usize = 64;
/// Hop bound of the first query; keeps its cost bounded by the 2-ball
/// of the source rather than the giant component.
const FIRST_QUERY_D: usize = 2;

/// What a measurement child prints to stdout as one JSON line.
#[derive(Serialize, Deserialize)]
struct ChildReport {
    load_ms: f64,
    first_query_ms: f64,
    peak_rss_bytes: u64,
    /// Reliability estimate of the first query — crosses the parent
    /// boundary so the load paths can be checked against each other.
    reliability: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        let (mode, path) = (args[1].as_str(), Path::new(&args[2]));
        run_child(mode, path);
        return;
    }
    run_parent(args);
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Child: load `path` via `mode`, answer one query, print a JSON report.
fn run_child(mode: &str, path: &Path) {
    let load_start = Instant::now();
    let graph: UncertainGraph = match mode {
        "mmap" => {
            let loaded = load_graph_v2(path).expect("child: load v2");
            if !loaded.mmapped {
                eprintln!("warning: mmap mode fell back to the heap path");
            }
            loaded.graph
        }
        "heap_v2" => load_graph_v2_heap(path).expect("child: load v2 (heap)"),
        "v1_binary" => load_graph_binary(path).expect("child: load v1"),
        other => {
            eprintln!("unknown child mode: {other}");
            std::process::exit(2);
        }
    };
    let load_ms = load_start.elapsed().as_secs_f64() * 1e3;

    // Query from the highest-numbered node: in the BA stream that is the
    // last attached node, whose 2-ball is modest. Node 0 is the mega-hub
    // — querying from it would measure hub traversal, not cold start.
    let s = NodeId((graph.num_nodes() - 1) as u32);
    let t = NodeId((graph.num_nodes() / 2) as u32);
    let budget = SampleBudget::fixed(FIRST_QUERY_SAMPLES);
    let mut rng = ChaCha8Rng::seed_from_u64(0xc01d);
    let query_start = Instant::now();
    let est = relcomp_core::distance_constrained::distance_constrained_with(
        &graph,
        s,
        t,
        FIRST_QUERY_D,
        &budget,
        &mut rng,
    );
    let first_query_ms = query_start.elapsed().as_secs_f64() * 1e3;

    let report = ChildReport {
        load_ms,
        first_query_ms,
        peak_rss_bytes: peak_rss_bytes(),
        reliability: est.reliability,
    };
    println!(
        "{}",
        serde_json::to_string(&report).expect("serialize child report")
    );
}

struct Options {
    profile: RunProfile,
    seed: u64,
    nodes: Option<usize>,
    dir: Option<PathBuf>,
}

fn parse_options(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options {
        profile: RunProfile::Quick,
        seed: 42,
        nodes: None,
        dir: None,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--nodes" => {
                let v = value("--nodes")?;
                opts.nodes = Some(v.parse().map_err(|_| format!("bad node count: {v}"))?);
            }
            "--dir" => opts.dir = Some(PathBuf::from(value("--dir")?)),
            other => {
                opts.profile =
                    RunProfile::parse(other).ok_or_else(|| format!("unknown argument: {other}"))?;
            }
        }
    }
    Ok(opts)
}

fn spawn_child(mode: &str, path: &Path) -> Option<ChildReport> {
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .arg("--child")
        .arg(mode)
        .arg(path)
        .output()
        .expect("spawn cold-start child");
    if !out.status.success() {
        eprintln!(
            "warning: child `{mode}` failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        return None;
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().last().unwrap_or("");
    match serde_json::from_str::<ChildReport>(line) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("warning: child `{mode}` wrote unparseable report ({e}): {line}");
            None
        }
    }
}

fn run_parent(args: Vec<String>) {
    let opts = parse_options(args).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: cold_start [quick|paper] [--seed N] [--nodes N] [--dir PATH]");
        std::process::exit(2);
    });
    let nodes = opts.nodes.unwrap_or(match opts.profile {
        RunProfile::Quick => 100_000,
        RunProfile::Paper => 1_000_000,
    });
    let dir = opts
        .dir
        .unwrap_or_else(|| std::env::temp_dir().join("relcomp_cold_start"));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v2_path = dir.join(format!("ba_{nodes}.ug2"));
    let v1_path = dir.join(format!("ba_{nodes}.ugb"));

    eprintln!(">>> streaming BA graph ({nodes} nodes, attach 5) to v2 ...");
    let gen_start = Instant::now();
    let stats = generate_v2_file(
        &StreamSpec {
            topology: StreamTopology::BarabasiAlbert {
                n: nodes,
                m_attach: 5,
            },
            seed: opts.seed,
            prob_low: 0.05,
            prob_high: 0.5,
        },
        &v2_path,
    )
    .expect("generate v2 graph");
    eprintln!(
        "    {} nodes, {} edges, {:.1} MiB in {:.1} s",
        stats.num_nodes,
        stats.num_edges,
        stats.file_bytes as f64 / (1024.0 * 1024.0),
        gen_start.elapsed().as_secs_f64()
    );

    eprintln!(">>> converting to v1 binary (legacy-loader baseline) ...");
    let graph = load_graph_v2(&v2_path)
        .expect("reload v2 for conversion")
        .graph;
    save_graph_binary(&graph, &v1_path).expect("write v1 binary");
    drop(graph);

    let file_bytes = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    let modes: [(&str, &Path); 3] = [
        ("mmap", &v2_path),
        ("heap_v2", &v2_path),
        ("v1_binary", &v1_path),
    ];
    let mut rows = Vec::new();
    let mut reliabilities = Vec::new();
    for (mode, path) in modes {
        eprintln!(">>> cold start via {mode} ...");
        let Some(r) = spawn_child(mode, path) else {
            continue;
        };
        reliabilities.push((mode, r.reliability));
        rows.push(ColdStartRow {
            mode: mode.to_string(),
            file_bytes: file_bytes(path),
            load_ms: r.load_ms,
            first_query_ms: r.first_query_ms,
            peak_rss_bytes: r.peak_rss_bytes,
        });
    }
    // The two v2 paths sample the same coin stream from the same bytes,
    // so their first answers must agree exactly.
    if let (Some((_, a)), Some((_, b))) = (
        reliabilities.iter().find(|(m, _)| *m == "mmap"),
        reliabilities.iter().find(|(m, _)| *m == "heap_v2"),
    ) {
        assert_eq!(a, b, "mmap and heap answers diverged");
    }

    let mut report = String::from("cold_start: first query after process restart\n\n");
    report.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>9}\n",
        "mode", "load", "query", "peak RSS", "file", "RSS/file"
    ));
    for row in &rows {
        report.push_str(&format!(
            "{:<10} {:>7.1} ms {:>7.1} ms {:>8.1} MiB {:>8.1} MiB {:>8.2}x\n",
            row.mode,
            row.load_ms,
            row.first_query_ms,
            row.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            row.file_bytes as f64 / (1024.0 * 1024.0),
            row.peak_rss_bytes as f64 / row.file_bytes.max(1) as f64,
        ));
    }
    relcomp_bench::emit("cold_start", &report);

    // Merge into an existing summary so perf_probe rows survive; start a
    // fresh probe-only summary when none exists.
    let summary_path = relcomp_bench::repo_root().join("BENCH_summary.json");
    let mut summary = relcomp_bench::summary::load(&summary_path).unwrap_or(BenchSummary {
        profile: match opts.profile {
            RunProfile::Quick => "quick".to_string(),
            RunProfile::Paper => "paper".to_string(),
        },
        seed: opts.seed,
        total_secs: 0.0,
        jobs: Vec::new(),
        estimators: Vec::new(),
        workloads: Vec::new(),
        per_sample: Vec::new(),
        mc_packed_speedup: 0.0,
        serve_metrics: Vec::new(),
        serve_concurrency: Vec::new(),
        cold_start: Vec::new(),
    });
    summary.cold_start = rows;
    relcomp_bench::summary::write(&summary);
}
