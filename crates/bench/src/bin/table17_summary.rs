//! Regenerates Table 17 + Figure 18 (summary and recommendation) of the paper. Usage: `table17_summary [quick|paper] [--seed N]`.
fn main() {
    let cli = relcomp_bench::cli();
    let report = relcomp_eval::experiments::table17_summary::run(cli.profile, cli.seed);
    relcomp_bench::emit("table17_summary", &report);
}
