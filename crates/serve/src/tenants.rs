//! Multi-graph tenancy: a registry of named, independently resident
//! [`QueryEngine`]s.
//!
//! Each tenant is a full engine — its own graph lineage and epoch, its
//! own resident estimator indexes, its own cache shard set, its own
//! admission quota — so tenants cannot observe each other's answers or
//! starve each other's caches. The wire verbs `load`/`unload`/`use`
//! map 1:1 onto [`TenantRegistry::load`], [`TenantRegistry::unload`],
//! and [`TenantRegistry::get`] plus a per-connection current-tenant
//! name held by the session.
//!
//! When warm-cache persistence is configured, `load` first tries to
//! re-admit the tenant's on-disk snapshot (fingerprint- and
//! epoch-checked, see [`crate::persist`]) and `unload` flushes one last
//! snapshot so the answers survive the tenancy gap.

use crate::engine::{EngineConfig, QueryEngine};
use crate::persist::{self, PersistConfig};
use crate::protocol::LoadResponse;
use relcomp_ugraph::io::load_graph_auto;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Name of the tenant every connection starts on (the graph given on
/// the `serve` command line).
pub const DEFAULT_TENANT: &str = "default";

/// A registry of named resident graphs.
pub struct TenantRegistry {
    tenants: RwLock<HashMap<String, Arc<QueryEngine>>>,
    /// Config newly loaded tenants inherit (quota may override
    /// `max_inflight` per tenant).
    template: EngineConfig,
    persist: Option<PersistConfig>,
}

/// Tenant names double as snapshot file names and metric label values,
/// so keep them to a conservative charset.
fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("tenant name must be 1..=64 characters".into());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
    {
        return Err(format!(
            "tenant name `{name}` may only contain ASCII letters, digits, `_`, `-`, `.`"
        ));
    }
    Ok(())
}

impl TenantRegistry {
    /// An empty registry; tenants loaded later inherit `template`.
    pub fn new(template: EngineConfig, persist: Option<PersistConfig>) -> Self {
        TenantRegistry {
            tenants: RwLock::new(HashMap::new()),
            template,
            persist,
        }
    }

    /// Wrap one pre-built engine as the [`DEFAULT_TENANT`] — the
    /// compatibility path for `Server::bind(addr, engine)` callers.
    pub fn single(engine: Arc<QueryEngine>) -> Self {
        let registry = TenantRegistry::new(*engine.config(), None);
        registry
            .insert(DEFAULT_TENANT, engine)
            .expect("fresh registry accepts the default tenant");
        registry
    }

    /// Register an already-built engine under `name`. Errors if the
    /// name is taken or invalid.
    pub fn insert(&self, name: &str, engine: Arc<QueryEngine>) -> Result<(), String> {
        validate_name(name)?;
        let mut tenants = self.tenants.write().expect("tenant registry poisoned");
        if tenants.contains_key(name) {
            return Err(format!(
                "graph `{name}` is already loaded (unload it first)"
            ));
        }
        tenants.insert(name.to_string(), engine);
        Ok(())
    }

    /// Look up a tenant by name.
    pub fn get(&self, name: &str) -> Option<Arc<QueryEngine>> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .get(name)
            .cloned()
    }

    /// Number of resident tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().expect("tenant registry poisoned").len()
    }

    /// Whether no tenant is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tenants
            .read()
            .expect("tenant registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// A point-in-time `(name, engine)` listing, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Arc<QueryEngine>)> {
        let mut all: Vec<(String, Arc<QueryEngine>)> = self
            .tenants
            .read()
            .expect("tenant registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Load the graph at `path` as tenant `name`.
    ///
    /// `quota` caps the tenant's concurrent queries (its engine's
    /// `max_inflight`); `None` inherits the registry template. If warm
    /// persistence is configured and a valid snapshot of this tenant
    /// exists, the engine restarts at the snapshot epoch with its cache
    /// re-admitted; an invalid snapshot is logged and ignored.
    pub fn load(
        &self,
        name: &str,
        path: &str,
        quota: Option<usize>,
    ) -> Result<LoadResponse, String> {
        validate_name(name)?;
        if self.get(name).is_some() {
            return Err(format!(
                "graph `{name}` is already loaded (unload it first)"
            ));
        }
        if let Some(q) = quota {
            if q == 0 {
                return Err("quota must be positive".into());
            }
        }
        let load_start = Instant::now();
        let (graph, report) = load_graph_auto(path).map_err(|e| e.to_string())?;
        let load_micros = load_start.elapsed().as_micros() as u64;
        let graph = Arc::new(graph);

        let mut config = self.template;
        if let Some(q) = quota {
            config.max_inflight = q;
        }

        let mut warm_entries = 0usize;
        let engine = match self.persist.as_ref() {
            Some(persist_cfg) => {
                let snap_path = persist::snapshot_path(&persist_cfg.dir, name);
                match persist::read_snapshot_for(&graph, &snap_path) {
                    Ok((epoch, entries)) => {
                        let engine = QueryEngine::with_epoch(Arc::clone(&graph), config, epoch);
                        warm_entries = engine.import_cache(entries);
                        eprintln!(
                            "tenant `{name}`: warm cache re-admitted {warm_entries} entries at epoch {epoch}"
                        );
                        engine
                    }
                    Err(reason) => {
                        if snap_path.exists() {
                            eprintln!(
                                "tenant `{name}`: warm cache rejected ({reason}); starting cold"
                            );
                        }
                        QueryEngine::new(Arc::clone(&graph), config)
                    }
                }
            }
            None => QueryEngine::new(Arc::clone(&graph), config),
        };
        engine.set_source(path);
        engine.record_load(report.mmapped, load_micros);
        let response = LoadResponse {
            name: name.to_string(),
            nodes: graph.num_nodes(),
            edges: graph.num_edges(),
            epoch: engine.epoch(),
            load_path: if report.mmapped { "mmap" } else { "heap" }.to_string(),
            load_micros,
            warm_entries,
            quota: config.max_inflight,
        };
        // Double-checked under the write lock: a racing load of the same
        // name may have won while we were reading the file.
        self.insert(name, Arc::new(engine))?;
        Ok(response)
    }

    /// Drop tenant `name`, flushing a final warm snapshot first when
    /// persistence is on (so a later `load` of the same name restarts
    /// warm). The engine itself dies when the last in-flight query
    /// drops its `Arc`.
    pub fn unload(&self, name: &str) -> Result<(), String> {
        let engine = {
            let mut tenants = self.tenants.write().expect("tenant registry poisoned");
            tenants
                .remove(name)
                .ok_or_else(|| format!("graph `{name}` is not loaded"))?
        };
        if let Some(persist_cfg) = self.persist.as_ref() {
            let snap_path = persist::snapshot_path(&persist_cfg.dir, name);
            if let Err(e) = persist::flush_engine(&engine, &snap_path) {
                eprintln!("tenant `{name}`: final warm-cache flush failed: {e}");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::QueryRequest;
    use relcomp_ugraph::{write_graph_v2, GraphBuilder, NodeId};

    fn diamond_file(tag: &str) -> std::path::PathBuf {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.8).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.6).unwrap();
        let path =
            std::env::temp_dir().join(format!("relcomp_tenants_{}_{tag}.ug2", std::process::id()));
        write_graph_v2(&b.build(), &path).unwrap();
        path
    }

    fn config() -> EngineConfig {
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn load_use_unload_lifecycle() {
        let path = diamond_file("lifecycle");
        let reg = TenantRegistry::new(config(), None);
        let resp = reg.load("g1", path.to_str().unwrap(), None).unwrap();
        assert_eq!((resp.nodes, resp.edges), (4, 4));
        assert_eq!(resp.warm_entries, 0);
        assert!(reg.get("g1").is_some());
        assert_eq!(reg.names(), vec!["g1".to_string()]);

        // Same name again: refused until unloaded.
        let err = reg.load("g1", path.to_str().unwrap(), None).unwrap_err();
        assert!(err.contains("already loaded"), "unexpected: {err}");

        reg.unload("g1").unwrap();
        assert!(reg.get("g1").is_none());
        assert!(reg.unload("g1").is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tenant_caches_are_isolated() {
        let path = diamond_file("isolated");
        let reg = TenantRegistry::new(config(), None);
        reg.load("a", path.to_str().unwrap(), None).unwrap();
        reg.load("b", path.to_str().unwrap(), None).unwrap();
        let a = reg.get("a").unwrap();
        let b = reg.get("b").unwrap();
        let first = a.execute(&QueryRequest::new(0, 3)).unwrap();
        assert!(!first.cached);
        // Tenant b never saw the query: its cache must miss even though
        // the graphs are identical.
        let other = b.execute(&QueryRequest::new(0, 3)).unwrap();
        assert!(!other.cached, "tenant caches must not be shared");
        // Determinism still holds across tenants of the same graph.
        assert_eq!(first.reliability.to_bits(), other.reliability.to_bits());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn quota_overrides_max_inflight() {
        let path = diamond_file("quota");
        let reg = TenantRegistry::new(config(), None);
        let resp = reg.load("q", path.to_str().unwrap(), Some(2)).unwrap();
        assert_eq!(resp.quota, 2);
        assert_eq!(reg.get("q").unwrap().config().max_inflight, 2);
        assert!(reg.load("z", path.to_str().unwrap(), Some(0)).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_names_are_rejected() {
        let reg = TenantRegistry::new(config(), None);
        for name in ["", "../evil", "a b", "x/y", &"n".repeat(65)] {
            assert!(reg.load(name, "/nonexistent", None).is_err(), "{name:?}");
        }
    }

    #[test]
    fn warm_snapshot_survives_unload_load() {
        let path = diamond_file("warm");
        let dir = std::env::temp_dir().join(format!("relcomp_tenants_warm_{}", std::process::id()));
        let reg = TenantRegistry::new(config(), Some(PersistConfig::new(&dir)));
        reg.load("w", path.to_str().unwrap(), None).unwrap();
        let first = reg
            .get("w")
            .unwrap()
            .execute(&QueryRequest::new(0, 3))
            .unwrap();
        reg.unload("w").unwrap();

        let resp = reg.load("w", path.to_str().unwrap(), None).unwrap();
        assert_eq!(resp.warm_entries, 1, "snapshot should re-admit the entry");
        let warm = reg
            .get("w")
            .unwrap()
            .execute(&QueryRequest::new(0, 3))
            .unwrap();
        assert!(warm.cached);
        assert_eq!(warm.reliability.to_bits(), first.reliability.to_bits());
        std::fs::remove_file(path).ok();
        std::fs::remove_dir_all(dir).ok();
    }
}
