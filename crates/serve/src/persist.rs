//! Warm-cache persistence: versioned on-disk snapshots of the result
//! cache, so a restarted server answers its hot queries from byte one.
//!
//! A snapshot file carries a magic/version header, a fingerprint of the
//! graph the answers were computed against, the epoch at flush time,
//! the entries themselves, and a trailing checksum over everything. On
//! startup the snapshot is *validated, not trusted*: a wrong magic,
//! fingerprint mismatch, checksum failure, or truncated entry rejects
//! the whole file (with a log line saying why), and entries are only
//! re-admitted when their recorded epoch matches the epoch the engine
//! restarts at — the same epoch-keyed rule the live cache enforces.
//!
//! Writes are atomic (temp file + rename), so a crash mid-flush leaves
//! the previous snapshot intact. A background [`spawn_flusher`] thread
//! rewrites each tenant's snapshot on a fixed interval and once more on
//! shutdown.

use crate::engine::{CachedAnswer, MaximizeAnswer, QueryEngine, QueryKey, WorkloadKind};
use crate::protocol::UpgradeRow;
use crate::tenants::TenantRegistry;
use relcomp_core::{EstimatorKind, StopReason};
use relcomp_ugraph::UncertainGraph;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where and how often warm-cache snapshots are written.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// Directory holding one `<tenant>.warm` file per tenant.
    pub dir: PathBuf,
    /// How often the background flusher rewrites the snapshots.
    pub flush_interval: Duration,
}

impl PersistConfig {
    /// Persist into `dir`, flushing every 5 seconds.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            flush_interval: Duration::from_secs(5),
        }
    }
}

/// File magic; the trailing digits version the format. Readers reject
/// anything else wholesale — there is no cross-version migration, a
/// stale snapshot just means a cold cache.
const MAGIC: &[u8; 8] = b"RCWARM01";

/// Snapshot file name for one tenant.
pub(crate) fn snapshot_path(dir: &Path, tenant: &str) -> PathBuf {
    dir.join(format!("{tenant}.warm"))
}

/// Stable on-disk tags for [`EstimatorKind`]; the array index is the
/// tag, so order here is append-only.
const KIND_TAGS: [EstimatorKind; 10] = [
    EstimatorKind::Mc,
    EstimatorKind::BfsSharing,
    EstimatorKind::ProbTree,
    EstimatorKind::LpPlus,
    EstimatorKind::LpOriginal,
    EstimatorKind::Rhh,
    EstimatorKind::Rss,
    EstimatorKind::ProbTreeLpPlus,
    EstimatorKind::ProbTreeRhh,
    EstimatorKind::ProbTreeRss,
];

fn kind_tag(kind: EstimatorKind) -> u8 {
    KIND_TAGS
        .iter()
        .position(|&k| k == kind)
        .expect("every estimator kind is tagged") as u8
}

fn kind_from_tag(tag: u8) -> Option<EstimatorKind> {
    KIND_TAGS.get(tag as usize).copied()
}

/// Cached answers label their estimator with a display name; recover
/// the `&'static str` by matching against the known set so decoded
/// entries are bit-identical to freshly computed ones.
fn estimator_label(name: &str) -> Option<&'static str> {
    KIND_TAGS
        .iter()
        .map(|k| k.display_name())
        .find(|&label| label == name)
}

const STOP_TAGS: [StopReason; 4] = [
    StopReason::FixedK,
    StopReason::Converged,
    StopReason::MaxSamples,
    StopReason::TimeLimit,
];

fn stop_tag(reason: StopReason) -> u8 {
    STOP_TAGS
        .iter()
        .position(|&r| r == reason)
        .expect("every stop reason is tagged") as u8
}

/// FNV-1a over 64-bit words — the same cheap, dependency-free hash the
/// rest of the codebase leans on where cryptographic strength is not
/// the point (this guards against *accidental* graph swaps, not
/// adversarial ones).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a graph's full structure: node/edge counts plus every
/// edge's endpoints and exact probability bits. Two graphs fingerprint
/// equal iff cached answers computed on one are valid on the other.
pub(crate) fn graph_fingerprint(graph: &UncertainGraph) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(graph.num_nodes() as u64);
    h.write_u64(graph.num_edges() as u64);
    for (_, s, t, p) in graph.edges() {
        h.write_u64(s.0 as u64);
        h.write_u64(t.0 as u64);
        h.write_u64(p.value().to_bits());
    }
    h.finish()
}

// --- binary encoding helpers -------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(buf, 0),
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
    }
}

fn put_opt_f64(buf: &mut Vec<u8>, v: Option<f64>) {
    put_opt_u64(buf, v.map(f64::to_bits));
}

/// Cursor over the snapshot bytes; every read is bounds-checked so a
/// truncated file fails cleanly instead of panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "snapshot truncated".to_string())?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(format!("bad option tag {t}")),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, String> {
        Ok(self.opt_u64()?.map(f64::from_bits))
    }
}

fn encode_entry(buf: &mut Vec<u8>, key: &QueryKey, answer: &CachedAnswer) {
    match key.workload {
        WorkloadKind::St => {
            put_u8(buf, 0);
            put_u64(buf, 0);
        }
        WorkloadKind::TopK { k } => {
            put_u8(buf, 1);
            put_u64(buf, k as u64);
        }
        WorkloadKind::Distance { d } => {
            put_u8(buf, 2);
            put_u64(buf, d as u64);
        }
        WorkloadKind::Maximize {
            k,
            boost_bits,
            candidates,
        } => {
            put_u8(buf, 3);
            put_u64(buf, k as u64);
            put_u64(buf, boost_bits);
            put_u64(buf, candidates as u64);
        }
    }
    put_u64(buf, key.epoch);
    put_u32(buf, key.s);
    put_u32(buf, key.t);
    put_u8(buf, kind_tag(key.kind));
    put_u64(buf, key.samples as u64);
    put_u64(buf, key.seed);
    put_opt_u64(buf, key.eps_bits);
    put_opt_u64(buf, key.confidence_bits);
    put_opt_u64(buf, key.time_budget_ms);

    put_f64(buf, answer.reliability);
    put_u64(buf, answer.samples as u64);
    let label = answer.estimator.as_bytes();
    put_u32(buf, label.len() as u32);
    buf.extend_from_slice(label);
    put_u8(buf, stop_tag(answer.stop_reason));
    put_opt_f64(buf, answer.half_width);
    put_opt_f64(buf, answer.variance);
    match &answer.targets {
        None => put_u8(buf, 0),
        Some(targets) => {
            put_u8(buf, 1);
            put_u32(buf, targets.len() as u32);
            for &(node, rel) in targets {
                put_u32(buf, node);
                put_f64(buf, rel);
            }
        }
    }
    // The maximize payload trails the entry only for maximize keys, so
    // files written before the workload existed still decode byte-for-
    // byte (and old readers reject new files at the workload tag, never
    // mid-entry).
    if matches!(key.workload, WorkloadKind::Maximize { .. }) {
        let m = answer
            .upgrades
            .as_ref()
            .expect("maximize entries carry their payload");
        put_f64(buf, m.base_reliability);
        put_f64(buf, m.gain);
        put_u64(buf, m.candidates as u64);
        put_u64(buf, m.evaluations as u64);
        put_u32(buf, m.chosen.len() as u32);
        for row in &m.chosen {
            put_u32(buf, row.s);
            put_u32(buf, row.t);
            put_f64(buf, row.old_prob);
            put_f64(buf, row.new_prob);
            put_f64(buf, row.gain);
            put_f64(buf, row.reliability);
        }
    }
}

fn decode_entry(r: &mut Reader<'_>) -> Result<(QueryKey, CachedAnswer), String> {
    let workload = match r.u8()? {
        0 => {
            r.u64()?;
            WorkloadKind::St
        }
        1 => WorkloadKind::TopK {
            k: r.u64()? as usize,
        },
        2 => WorkloadKind::Distance {
            d: r.u64()? as usize,
        },
        3 => WorkloadKind::Maximize {
            k: r.u64()? as usize,
            boost_bits: r.u64()?,
            candidates: r.u64()? as usize,
        },
        t => return Err(format!("bad workload tag {t}")),
    };
    let epoch = r.u64()?;
    let s = r.u32()?;
    let t = r.u32()?;
    let kind_tag = r.u8()?;
    let kind = kind_from_tag(kind_tag).ok_or_else(|| format!("bad estimator tag {kind_tag}"))?;
    let key = QueryKey {
        workload,
        epoch,
        s,
        t,
        kind,
        samples: r.u64()? as usize,
        seed: r.u64()?,
        eps_bits: r.opt_u64()?,
        confidence_bits: r.opt_u64()?,
        time_budget_ms: r.opt_u64()?,
    };

    let reliability = r.f64()?;
    let samples = r.u64()? as usize;
    let label_len = r.u32()? as usize;
    let label = std::str::from_utf8(r.take(label_len)?)
        .map_err(|_| "estimator label is not utf-8".to_string())?;
    let estimator =
        estimator_label(label).ok_or_else(|| format!("unknown estimator label `{label}`"))?;
    let stop_tag = r.u8()?;
    let stop_reason = STOP_TAGS
        .get(stop_tag as usize)
        .copied()
        .ok_or_else(|| format!("bad stop-reason tag {stop_tag}"))?;
    let half_width = r.opt_f64()?;
    let variance = r.opt_f64()?;
    let targets = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u32()? as usize;
            let mut targets = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let node = r.u32()?;
                let rel = r.f64()?;
                targets.push((node, rel));
            }
            Some(targets)
        }
        t => return Err(format!("bad targets tag {t}")),
    };
    let upgrades = if matches!(key.workload, WorkloadKind::Maximize { .. }) {
        let base_reliability = r.f64()?;
        let gain = r.f64()?;
        let candidates = r.u64()? as usize;
        let evaluations = r.u64()? as usize;
        let n = r.u32()? as usize;
        let mut chosen = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            chosen.push(UpgradeRow {
                s: r.u32()?,
                t: r.u32()?,
                old_prob: r.f64()?,
                new_prob: r.f64()?,
                gain: r.f64()?,
                reliability: r.f64()?,
            });
        }
        Some(MaximizeAnswer {
            base_reliability,
            gain,
            chosen,
            candidates,
            evaluations,
        })
    } else {
        None
    };
    Ok((
        key,
        CachedAnswer {
            reliability,
            samples,
            estimator,
            stop_reason,
            half_width,
            variance,
            targets,
            upgrades,
        },
    ))
}

/// Serialize the current-epoch slice of `engine`'s cache into snapshot
/// bytes. Exposed separately from the file write for tests.
pub(crate) fn encode_snapshot(engine: &QueryEngine) -> (Vec<u8>, usize) {
    let (epoch, entries) = engine.export_cache();
    let fingerprint = graph_fingerprint(&engine.graph());
    let mut buf = Vec::with_capacity(64 + entries.len() * 96);
    buf.extend_from_slice(MAGIC);
    put_u64(&mut buf, fingerprint);
    put_u64(&mut buf, epoch);
    put_u64(&mut buf, entries.len() as u64);
    for (key, answer) in &entries {
        encode_entry(&mut buf, key, answer);
    }
    let mut h = Fnv::new();
    h.write_bytes(&buf);
    let checksum = h.finish();
    put_u64(&mut buf, checksum);
    (buf, entries.len())
}

/// A validated snapshot, ready for epoch-checked re-admission.
#[derive(Debug)]
pub(crate) struct Snapshot {
    /// Fingerprint of the graph the entries were computed on.
    pub fingerprint: u64,
    /// Epoch the flush observed; the restarted engine resumes from it.
    pub epoch: u64,
    /// The persisted entries.
    pub entries: Vec<(QueryKey, CachedAnswer)>,
}

/// Parse and validate snapshot bytes. Any structural defect — bad
/// magic, truncation, checksum mismatch, unknown tags — rejects the
/// whole file; persistence is an optimization and a suspect snapshot
/// is worth less than a cold cache.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, String> {
    if bytes.len() < MAGIC.len() + 8 * 3 + 8 {
        return Err("snapshot too short".into());
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err("bad magic (wrong file type or snapshot version)".into());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let mut h = Fnv::new();
    h.write_bytes(body);
    if h.finish() != stored {
        return Err("checksum mismatch (corrupted snapshot)".into());
    }
    let mut r = Reader {
        bytes: body,
        pos: MAGIC.len(),
    };
    let fingerprint = r.u64()?;
    let epoch = r.u64()?;
    let count = r.u64()? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        entries.push(decode_entry(&mut r)?);
    }
    if r.pos != body.len() {
        return Err("trailing bytes after final entry".into());
    }
    Ok(Snapshot {
        fingerprint,
        epoch,
        entries,
    })
}

/// Atomically write `engine`'s warm snapshot to `path`. Returns the
/// number of entries flushed.
pub(crate) fn flush_engine(engine: &QueryEngine, path: &Path) -> std::io::Result<usize> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let (bytes, count) = encode_snapshot(engine);
    let tmp = path.with_extension("warm.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(count)
}

/// Read, validate, and epoch-check `path` against `graph`; on success
/// returns `(epoch, entries)` for the engine to restart from. The `Err`
/// string says why the snapshot was rejected.
pub(crate) fn read_snapshot_for(
    graph: &UncertainGraph,
    path: &Path,
) -> Result<(u64, Vec<(QueryKey, CachedAnswer)>), String> {
    let bytes = fs::read(path).map_err(|e| format!("unreadable snapshot: {e}"))?;
    let snap = decode_snapshot(&bytes)?;
    let actual = graph_fingerprint(graph);
    if snap.fingerprint != actual {
        return Err(format!(
            "graph fingerprint mismatch (snapshot {:#018x}, loaded graph {:#018x})",
            snap.fingerprint, actual
        ));
    }
    Ok((snap.epoch, snap.entries))
}

/// Flush every tenant's snapshot into `dir`, logging per-tenant errors
/// without aborting the sweep.
pub(crate) fn flush_all(tenants: &TenantRegistry, dir: &Path) {
    for (name, engine) in tenants.snapshot() {
        let path = snapshot_path(dir, &name);
        if let Err(e) = flush_engine(&engine, &path) {
            eprintln!("warm-cache flush failed for `{name}`: {e}");
        }
    }
}

/// Start the periodic background flusher. It re-checks `stop` every
/// 50 ms so shutdown is prompt even with long flush intervals, and the
/// caller does one final [`flush_all`] after joining.
pub(crate) fn spawn_flusher(
    tenants: Arc<TenantRegistry>,
    config: PersistConfig,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let tick = Duration::from_millis(50);
        let mut elapsed = Duration::ZERO;
        loop {
            std::thread::sleep(tick);
            if stop.load(Ordering::Acquire) {
                return;
            }
            elapsed += tick;
            if elapsed >= config.flush_interval {
                elapsed = Duration::ZERO;
                flush_all(&tenants, &config.dir);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::QueryRequest;
    use rand::RngCore;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::{GraphBuilder, NodeId};

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.8).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.6).unwrap();
        Arc::new(b.build())
    }

    fn engine() -> QueryEngine {
        QueryEngine::new(
            diamond(),
            EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
        )
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("relcomp_persist_{}_{name}", std::process::id()))
    }

    #[test]
    fn flush_restart_round_trip_is_bit_identical() {
        let e = engine();
        let first = e.execute(&QueryRequest::new(0, 3)).unwrap();
        assert!(!first.cached);
        let path = temp_path("round_trip.warm");
        let flushed = flush_engine(&e, &path).unwrap();
        assert_eq!(flushed, 1);

        // "Restart": a fresh engine over a freshly built (identical)
        // graph, seeded with the snapshot epoch.
        let (epoch, entries) = read_snapshot_for(&diamond(), &path).unwrap();
        let e2 = QueryEngine::with_epoch(
            diamond(),
            EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
            epoch,
        );
        assert_eq!(e2.import_cache(entries), 1);
        let warm = e2.execute(&QueryRequest::new(0, 3)).unwrap();
        assert!(warm.cached, "restarted engine should hit the warm cache");
        assert_eq!(
            warm.reliability.to_bits(),
            first.reliability.to_bits(),
            "warm answer must be bit-identical to the original"
        );
        assert_eq!(warm.samples, first.samples);
        fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let e = engine();
        e.execute(&QueryRequest::new(0, 3)).unwrap();
        let (bytes, _) = encode_snapshot(&e);
        // Flip one byte anywhere in the body: the checksum must catch it.
        let mut corrupt = bytes.clone();
        corrupt[MAGIC.len() + 3] ^= 0xff;
        let err = decode_snapshot(&corrupt).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");
        // Truncation is caught too (checksum no longer lines up).
        assert!(decode_snapshot(&bytes[..bytes.len() - 5]).is_err());
        // Wrong magic: rejected before anything else is believed.
        let mut wrong = bytes;
        wrong[0] = b'X';
        let err = decode_snapshot(&wrong).unwrap_err();
        assert!(err.contains("magic"), "unexpected error: {err}");
    }

    #[test]
    fn fingerprint_mismatch_rejects_snapshot() {
        let e = engine();
        e.execute(&QueryRequest::new(0, 3)).unwrap();
        let path = temp_path("fingerprint.warm");
        flush_engine(&e, &path).unwrap();
        // A different graph (one probability nudged) must not accept it.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.8).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.61).unwrap();
        let err = read_snapshot_for(&b.build(), &path).unwrap_err();
        assert!(err.contains("fingerprint"), "unexpected error: {err}");
        fs::remove_file(path).ok();
    }

    #[test]
    fn stale_epoch_entries_are_not_readmitted() {
        let e = engine();
        e.execute(&QueryRequest::new(0, 3)).unwrap();
        let path = temp_path("stale.warm");
        flush_engine(&e, &path).unwrap();
        let (epoch, entries) = read_snapshot_for(&diamond(), &path).unwrap();
        // The restarted engine has moved past the snapshot epoch (an
        // update replayed at boot): nothing may be admitted.
        let e2 = QueryEngine::with_epoch(diamond(), EngineConfig::default(), epoch + 1);
        assert_eq!(e2.import_cache(entries), 0);
        assert_eq!(e2.stats().cache_entries, 0);
        fs::remove_file(path).ok();
    }

    #[test]
    fn random_entries_round_trip_exactly() {
        // Property-style: arbitrary keys/answers survive encode/decode
        // bit-for-bit, including every optional field shape.
        let mut rng = ChaCha8Rng::seed_from_u64(0x9e3779b97f4a7c15);
        for _ in 0..500 {
            let workload = match rng.next_u32() % 4 {
                0 => WorkloadKind::St,
                1 => WorkloadKind::TopK {
                    k: (rng.next_u32() % 100) as usize,
                },
                2 => WorkloadKind::Distance {
                    d: (rng.next_u32() % 16) as usize,
                },
                _ => WorkloadKind::Maximize {
                    k: (rng.next_u32() % 8) as usize,
                    boost_bits: rng.next_u64(),
                    candidates: (rng.next_u32() % 64) as usize,
                },
            };
            let kind = KIND_TAGS[(rng.next_u32() % 10) as usize];
            let maybe_u64 =
                |rng: &mut ChaCha8Rng| (rng.next_u32() % 2 == 0).then(|| rng.next_u64());
            let key = QueryKey {
                workload,
                epoch: rng.next_u64(),
                s: rng.next_u32(),
                t: rng.next_u32(),
                kind,
                samples: rng.next_u32() as usize,
                seed: rng.next_u64(),
                eps_bits: maybe_u64(&mut rng),
                confidence_bits: maybe_u64(&mut rng),
                time_budget_ms: maybe_u64(&mut rng),
            };
            let targets = (rng.next_u32() % 2 == 0).then(|| {
                (0..rng.next_u32() % 8)
                    .map(|_| (rng.next_u32(), rng.next_u64() as f64 / u64::MAX as f64))
                    .collect::<Vec<_>>()
            });
            let upgrades = matches!(workload, WorkloadKind::Maximize { .. }).then(|| {
                let unit = |rng: &mut ChaCha8Rng| rng.next_u64() as f64 / u64::MAX as f64;
                MaximizeAnswer {
                    base_reliability: unit(&mut rng),
                    gain: unit(&mut rng),
                    chosen: (0..rng.next_u32() % 5)
                        .map(|_| UpgradeRow {
                            s: rng.next_u32(),
                            t: rng.next_u32(),
                            old_prob: unit(&mut rng),
                            new_prob: unit(&mut rng),
                            gain: unit(&mut rng),
                            reliability: unit(&mut rng),
                        })
                        .collect(),
                    candidates: (rng.next_u32() % 64) as usize,
                    evaluations: (rng.next_u32() % 512) as usize,
                }
            });
            let answer = CachedAnswer {
                reliability: rng.next_u64() as f64 / u64::MAX as f64,
                samples: rng.next_u32() as usize,
                estimator: kind.display_name(),
                stop_reason: STOP_TAGS[(rng.next_u32() % 4) as usize],
                half_width: maybe_u64(&mut rng).map(|v| v as f64 / u64::MAX as f64),
                variance: maybe_u64(&mut rng).map(|v| v as f64 / u64::MAX as f64),
                targets,
                upgrades,
            };
            let mut buf = Vec::new();
            encode_entry(&mut buf, &key, &answer);
            let mut r = Reader {
                bytes: &buf,
                pos: 0,
            };
            let (key2, answer2) = decode_entry(&mut r).unwrap();
            assert_eq!(key, key2);
            assert_eq!(answer, answer2);
            assert_eq!(r.pos, buf.len());
        }
    }

    #[test]
    fn fingerprint_tracks_structure_and_probabilities() {
        let a = graph_fingerprint(&diamond());
        let b = graph_fingerprint(&diamond());
        assert_eq!(a, b, "fingerprint must be deterministic");
        let mut gb = GraphBuilder::new(4);
        gb.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        gb.add_edge(NodeId(0), NodeId(2), 0.8).unwrap();
        gb.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        gb.add_edge(NodeId(2), NodeId(3), 0.6000000001).unwrap();
        assert_ne!(a, graph_fingerprint(&gb.build()));
    }
}
