//! # relcomp-serve — a concurrent s-t reliability query service
//!
//! Turns the paper reproduction into a long-lived server: load a graph
//! once, then answer s-t reliability queries over TCP with a
//! line-delimited JSON protocol ([`protocol`]), a sharded LRU result
//! cache ([`cache`]), admission control plus per-query estimator
//! planning ([`engine`]), and deterministic multi-threaded sampling
//! (`relcomp_core::parallel`).
//!
//! ```no_run
//! use relcomp_serve::engine::{EngineConfig, QueryEngine};
//! use relcomp_serve::protocol::QueryRequest;
//! use relcomp_serve::server::Server;
//! use relcomp_serve::client::Client;
//! use relcomp_ugraph::{GraphBuilder, NodeId};
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
//! let engine = Arc::new(QueryEngine::new(Arc::new(b.build()), EngineConfig::default()));
//!
//! let server = Server::bind("127.0.0.1:0", engine).unwrap();
//! let (addr, _handle) = server.spawn().unwrap();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let answer = client.query(QueryRequest::new(0, 2)).unwrap();
//! assert!((0.0..=1.0).contains(&answer.reliability));
//! client.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod persist;
pub mod protocol;
#[cfg(target_os = "linux")]
mod reactor;
pub mod server;
pub mod tenants;

pub use client::{Client, ClientError};
pub use engine::{EngineConfig, QueryEngine};
pub use persist::PersistConfig;
pub use protocol::{
    DistanceQueryRequest, DistanceQueryResponse, LoadResponse, MaximizeRequest, MaximizeResponse,
    MetricsFormat, MetricsReport, QueryRequest, QueryResponse, Request, Response, StatsResponse,
    TopKRequest, TopKResponse, TraceRow, UpgradeRow, UseResponse, DEFAULT_PORT,
};
pub use server::{Server, ServerMode, ServerOptions};
pub use tenants::{TenantRegistry, DEFAULT_TENANT};
