//! Sharded LRU result cache.
//!
//! Reliability queries are expensive (thousands of BFS passes) and
//! serving workloads repeat: hot (s, t) pairs recur across users. The
//! cache memoizes finished estimates keyed by everything that determines
//! the answer bit-for-bit — graph epoch, endpoints, estimator, sample
//! budget, seed — so a hit is *exactly* the answer a recomputation would
//! produce.
//!
//! Concurrency: the key space is split across `S` independent shards,
//! each a mutex around a classic O(1) LRU (hash map + intrusive doubly
//! linked list over a slab). Threads querying different shards never
//! contend; hit/miss counters are lock-free atomics.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: an O(1) LRU over a slab of slots.
struct LruShard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used slot, or `NIL` when empty.
    head: usize,
    /// Least recently used slot, or `NIL` when empty.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruShard<K, V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i].value.clone())
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Evict the LRU slot and reuse it in place.
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.slots[i].key);
            self.slots[i].key = key.clone();
            self.slots[i].value = value;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

/// A concurrent LRU cache sharded by key hash.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache holding up to `capacity` entries split over `shards`
    /// shards (clamped to at least 1 shard; per-shard capacity rounds
    /// up, so the effective total can slightly exceed `capacity`).
    /// A `capacity` of 0 disables caching: every `get` misses and
    /// `insert` is a no-op.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// Look up `key`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert (or refresh) `key`, evicting the shard's LRU entry if full.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshot every resident entry, most recently used first within
    /// each shard. Does not touch recency or the hit/miss counters —
    /// this is the export path for warm-cache persistence, not a read.
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            let mut i = shard.head;
            while i != NIL {
                let slot = &shard.slots[i];
                out.push((slot.key.clone(), slot.value.clone()));
                i = slot.next;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_inserted_value_and_counts() {
        let c: ShardedLru<u64, String> = ShardedLru::new(8, 2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".into());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn insert_refreshes_existing_key() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(4, 1);
        c.insert(1, 10);
        c.insert(1, 20);
        assert_eq!(c.get(&1), Some(20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(3, 1);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(c.get(&1), Some(1));
        c.insert(4, 4);
        assert_eq!(c.get(&2), None, "LRU entry should have been evicted");
        assert_eq!(c.get(&1), Some(1));
        assert_eq!(c.get(&3), Some(3));
        assert_eq!(c.get(&4), Some(4));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn eviction_chains_stay_consistent() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(4, 1);
        for round in 0..50u64 {
            for k in 0..8 {
                c.insert(round * 8 + k, k);
            }
        }
        assert_eq!(c.len(), 4);
        // The last four inserted survive, most recent first.
        for k in 49 * 8 + 4..49 * 8 + 8 {
            assert!(c.get(&k).is_some(), "key {k} missing");
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(0, 8);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!((c.hits(), c.misses()), (0, 1));
    }

    #[test]
    fn shards_split_capacity() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(64, 8);
        for k in 0..64 {
            c.insert(k, k);
        }
        // No shard may exceed its slice of the capacity, so at most
        // ceil(64/8) entries per shard survive and total <= 64.
        assert!(c.len() <= 64);
        assert!(c.len() >= 8, "every shard should hold something");
    }

    #[test]
    fn entries_snapshots_without_touching_recency() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(4, 1);
        c.insert(1, 10);
        c.insert(2, 20);
        let mut entries = c.entries();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (2, 20)]);
        assert_eq!((c.hits(), c.misses()), (0, 0));
        // LRU order unchanged: 1 is still the eviction candidate.
        c.insert(3, 30);
        c.insert(4, 40);
        c.insert(5, 50);
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(ShardedLru::<u64, u64>::new(128, 8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.insert(t * 1000 + i, i);
                        let _ = c.get(&(t * 1000 + i / 2));
                    }
                });
            }
        });
        assert!(c.hits() + c.misses() == 8000);
        assert!(c.len() <= 128);
    }
}
