//! Readiness-driven event loop for the query server (Linux only).
//!
//! One reactor thread owns the listener and every connection socket
//! through a raw `epoll` instance (no crates — the three syscalls are
//! declared `extern "C"` just like the mmap wrapper in
//! `relcomp_ugraph::mmap`). Sockets are nonblocking; the reactor
//! re-assembles request lines from read buffers, hands complete lines to
//! a small worker pool, and writes finished responses back as sockets
//! become writable. Workers wake the reactor through an `eventfd`, which
//! doubles as the shutdown wakeup, so shutdown is level-triggered: the
//! flag is re-checked at the top of every loop iteration and a stuck
//! `epoll_wait` can always be interrupted.
//!
//! Each connection runs at most one request at a time (responses on a
//! connection must come back in request order), so pipelined lines queue
//! in the connection until the in-flight one completes. Concurrency
//! comes from many connections, exactly like the thread-per-connection
//! model — minus the per-connection stack and scheduler churn.

#![allow(unsafe_code)]

use crate::server::{dispatch_session, ServeCtx, Session};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Raw syscall surface. Constants from the Linux UAPI headers; the
/// event struct is packed on x86 to match the kernel ABI.
mod sys {
    use std::os::raw::{c_int, c_uint};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn listen(fd: c_int, backlog: c_int) -> c_int;
    }
}

/// Deepen an already-listening socket's accept backlog — Linux applies a
/// repeated `listen` to the live socket. The standard library listens
/// with a fixed backlog of 128; a burst of 256+ concurrent connects
/// overflows that, and each dropped SYN costs the client a ~1 s
/// retransmit. The reactor is built for exactly that connection scale,
/// so it asks for a deeper queue before serving; the threaded model
/// keeps the stock backlog. Best-effort: on failure the socket keeps
/// its original backlog.
fn deepen_backlog(listener: &TcpListener, backlog: i32) {
    unsafe { sys::listen(listener.as_raw_fd(), backlog) };
}

/// Token values for the two non-connection registrations. Connection
/// tokens are slab indexes, which stay far below these.
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// How long `epoll_wait` may sleep. The waker makes wakeups prompt;
/// the timeout is belt-and-braces so a lost wakeup can only delay
/// shutdown, never hang it.
const WAIT_TIMEOUT_MS: i32 = 500;

/// A request line longer than this closes the connection (it is not a
/// plausible query, and buffering it unbounded invites OOM).
const MAX_LINE_BYTES: usize = 16 << 20;

/// An `eventfd`-backed wakeup channel: any thread can `wake()` the
/// reactor out of `epoll_wait`. Nonblocking, so `drain` never stalls
/// the loop. The fd closes via `File`'s Drop.
pub(crate) struct Waker {
    file: File,
}

impl Waker {
    pub(crate) fn new() -> io::Result<Waker> {
        // SAFETY: eventfd allocates a new fd; -1 signals failure.
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd is a freshly created eventfd we own.
        Ok(Waker {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    pub(crate) fn wake(&self) {
        // Failure here is benign: the 500 ms epoll timeout still
        // guarantees forward progress.
        let _ = (&self.file).write_all(&1u64.to_ne_bytes());
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }

    fn fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }
}

/// Thin RAII wrapper over an epoll instance.
struct Epoll {
    file: File,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 allocates a new fd; -1 signals failure.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd is a freshly created epoll instance we own.
        Ok(Epoll {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: std::os::raw::c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        // SAFETY: ev lives across the call; fd and op are valid.
        let rc = unsafe { sys::epoll_ctl(self.file.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn del(&self, fd: RawFd) {
        // The event argument is ignored for DEL (passing one anyway keeps
        // pre-2.6.9 kernel semantics happy, per the man page).
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the buffer outlives the call and maxevents matches it.
        let rc = unsafe {
            sys::epoll_wait(
                self.file.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as std::os::raw::c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    session: Arc<Session>,
    /// Guards completions against slab-slot reuse: a worker finishing a
    /// request for a connection that already closed must not write into
    /// whichever new connection inherited the slot.
    generation: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Complete request lines waiting behind the in-flight one.
    pending: VecDeque<String>,
    inflight: bool,
    /// Close once the write buffer drains (set by `shutdown` responses
    /// and protocol violations that still get an error reply).
    closing: bool,
    /// Whether the socket is currently registered for EPOLLOUT.
    want_write: bool,
    /// A final error line to send after the in-flight response (a fatal
    /// protocol violation noticed mid-request); closes the connection
    /// once written.
    farewell: Option<String>,
}

/// A parsed request line travelling to the worker pool.
struct Job {
    index: usize,
    generation: u64,
    line: String,
    session: Arc<Session>,
}

/// A serialized response travelling back to the reactor.
struct Completion {
    index: usize,
    generation: u64,
    text: String,
    is_bye: bool,
}

/// Run the event loop until `shutdown` is observed. Consumes the
/// calling thread; workers are joined before returning.
pub(crate) fn run(
    listener: Arc<TcpListener>,
    ctx: ServeCtx,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    workers: usize,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    deepen_backlog(&listener, 1024);
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(waker.fd(), sys::EPOLLIN, TOKEN_WAKER)?;

    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&jobs_rx);
        let done = Arc::clone(&completions);
        let waker = Arc::clone(&waker);
        let ctx = ctx.clone();
        worker_handles.push(std::thread::spawn(move || loop {
            // Holding the lock only for recv keeps workers from
            // serializing on each other's dispatch time.
            let job = match rx.lock() {
                Ok(rx) => rx.recv(),
                Err(_) => break,
            };
            let Ok(job) = job else { break };
            let (text, is_bye) = dispatch_session(&job.line, &ctx, &job.session);
            if let Ok(mut done) = done.lock() {
                done.push(Completion {
                    index: job.index,
                    generation: job.generation,
                    text,
                    is_bye,
                });
            }
            waker.wake();
        }));
    }

    let mut loop_state = LoopState {
        epoll,
        slab: Vec::new(),
        free: Vec::new(),
        next_generation: 0,
        jobs_tx,
        ctx,
    };
    let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];

    loop {
        // Level-triggered shutdown: the flag is authoritative and
        // re-checked every iteration, so a wakeup can be lost (or land
        // before this check) without wedging the loop.
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let n = match loop_state.epoll.wait(&mut events, WAIT_TIMEOUT_MS) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                // Tear down workers before surfacing the error.
                drop(loop_state.jobs_tx);
                for h in worker_handles {
                    let _ = h.join();
                }
                return Err(e);
            }
        };
        for ev in &events[..n] {
            let token = ev.data;
            let bits = ev.events;
            match token {
                TOKEN_LISTENER => loop_state.accept_ready(&listener),
                TOKEN_WAKER => waker.drain(),
                _ => loop_state.conn_ready(token as usize, bits),
            }
        }
        let finished: Vec<Completion> = match completions.lock() {
            Ok(mut done) => done.drain(..).collect(),
            Err(_) => break,
        };
        for completion in finished {
            loop_state.complete(completion, &shutdown);
        }
    }

    // Closing the channel stops the workers; in-flight dispatches finish
    // first, their completions are simply never delivered.
    drop(loop_state.jobs_tx);
    for h in worker_handles {
        let _ = h.join();
    }
    let open = loop_state.slab.iter().filter(|s| s.is_some()).count() as u64;
    loop_state.ctx.gauges().note_closed(open);
    Ok(())
}

/// Everything the loop body mutates, grouped so helpers can borrow it
/// without fighting the borrow checker over individual locals.
struct LoopState {
    epoll: Epoll,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    jobs_tx: mpsc::Sender<Job>,
    ctx: ServeCtx,
}

impl LoopState {
    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED
                // and friends) must not kill the server.
                Err(_) => continue,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            self.next_generation += 1;
            let conn = Conn {
                stream,
                session: Arc::new(Session::new()),
                generation: self.next_generation,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                pending: VecDeque::new(),
                inflight: false,
                closing: false,
                want_write: false,
                farewell: None,
            };
            let index = match self.free.pop() {
                Some(i) => {
                    self.slab[i] = Some(conn);
                    i
                }
                None => {
                    self.slab.push(Some(conn));
                    self.slab.len() - 1
                }
            };
            let fd = self.slab[index]
                .as_ref()
                .expect("just placed")
                .stream
                .as_raw_fd();
            if self.epoll.add(fd, sys::EPOLLIN, index as u64).is_err() {
                self.slab[index] = None;
                self.free.push(index);
                continue;
            }
            self.ctx.gauges().note_opened();
        }
    }

    fn conn_ready(&mut self, index: usize, bits: u32) {
        if self.slab.get(index).map(|s| s.is_none()).unwrap_or(true) {
            return;
        }
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close(index);
            return;
        }
        if bits & sys::EPOLLIN != 0 && !self.read_ready(index) {
            self.close(index);
            return;
        }
        if bits & sys::EPOLLOUT != 0 {
            self.flush_writes(index);
        }
    }

    /// Pull everything readable into the connection buffer and queue any
    /// complete lines. Returns false when the connection should close.
    fn read_ready(&mut self, index: usize) -> bool {
        let conn = match self.slab[index].as_mut() {
            Some(c) => c,
            None => return true,
        };
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                // Orderly peer close. Anything already buffered can no
                // longer be answered to anyone, so just drop.
                Ok(0) => return false,
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        // Split out complete lines; the tail stays buffered.
        let mut start = 0usize;
        while let Some(pos) = conn.read_buf[start..].iter().position(|&b| b == b'\n') {
            let end = start + pos;
            let line = String::from_utf8_lossy(&conn.read_buf[start..end]);
            let line = line.trim();
            if !line.is_empty() {
                conn.pending.push_back(line.to_owned());
            }
            start = end + 1;
        }
        if start > 0 {
            conn.read_buf.drain(..start);
        }
        if conn.read_buf.len() > MAX_LINE_BYTES {
            // Tell the peer *why* before closing instead of silently
            // dropping the connection: queue a structured error line and
            // let the normal write path flush it, closing after the
            // drain. Anything pipelined behind the oversized line can no
            // longer be trusted (we are mid-frame), so it is dropped;
            // an in-flight request still answers first (responses stay
            // in request order), then the error goes out and the
            // connection closes.
            conn.read_buf.clear();
            conn.read_buf.shrink_to_fit();
            conn.pending.clear();
            let error = crate::protocol::Response::Error(format!(
                "request line exceeds the {} MiB limit",
                MAX_LINE_BYTES >> 20
            ));
            let text = serde_json::to_string(&error)
                .unwrap_or_else(|_| r#"{"ok":false,"error":"request line too long"}"#.into());
            if conn.inflight {
                conn.farewell = Some(text);
            } else {
                conn.write_buf.extend_from_slice(text.as_bytes());
                conn.write_buf.push(b'\n');
                conn.closing = true;
                self.flush_writes(index);
            }
            return true;
        }
        self.submit_next(index);
        true
    }

    /// Hand the connection's next pending line to the worker pool,
    /// respecting the one-in-flight-per-connection ordering rule.
    fn submit_next(&mut self, index: usize) {
        let Some(conn) = self.slab[index].as_mut() else {
            return;
        };
        if conn.inflight || conn.closing {
            return;
        }
        let Some(line) = conn.pending.pop_front() else {
            return;
        };
        conn.inflight = true;
        let job = Job {
            index,
            generation: conn.generation,
            line,
            session: Arc::clone(&conn.session),
        };
        // A send failure means the workers are gone, which only happens
        // during teardown; the connection is about to close anyway.
        let _ = self.jobs_tx.send(job);
    }

    /// Deliver a worker's response into its connection, if it still exists.
    fn complete(&mut self, completion: Completion, shutdown: &AtomicBool) {
        let Some(conn) = self.slab.get_mut(completion.index).and_then(|s| s.as_mut()) else {
            return;
        };
        if conn.generation != completion.generation {
            return;
        }
        conn.inflight = false;
        conn.write_buf.extend_from_slice(completion.text.as_bytes());
        conn.write_buf.push(b'\n');
        // A fatal protocol error noticed while this request was in
        // flight (e.g. an oversized next line) goes out right after the
        // answer, then the connection closes.
        if let Some(farewell) = conn.farewell.take() {
            conn.write_buf.extend_from_slice(farewell.as_bytes());
            conn.write_buf.push(b'\n');
            conn.closing = true;
        }
        if completion.is_bye {
            // Flush the farewell, then close; the flag stops the loop on
            // its next iteration (level-triggered, so no wakeup race).
            conn.closing = true;
            shutdown.store(true, Ordering::Release);
        }
        self.submit_next(completion.index);
        self.flush_writes(completion.index);
    }

    /// Write as much buffered response as the socket accepts, toggling
    /// EPOLLOUT registration so the reactor neither busy-spins on a full
    /// socket nor gets spurious writable events when idle.
    fn flush_writes(&mut self, index: usize) {
        enum After {
            Keep,
            RegisterWrite,
            Drained { deregister: bool, closing: bool },
            Close,
        }
        let after = {
            let Some(conn) = self.slab.get_mut(index).and_then(|s| s.as_mut()) else {
                return;
            };
            loop {
                if conn.write_pos >= conn.write_buf.len() {
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    let deregister = conn.want_write;
                    conn.want_write = false;
                    break After::Drained {
                        deregister,
                        closing: conn.closing,
                    };
                }
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => break After::Close,
                    Ok(n) => conn.write_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if conn.want_write {
                            break After::Keep;
                        }
                        conn.want_write = true;
                        break After::RegisterWrite;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break After::Close,
                }
            }
        };
        let fd_of = |slab: &[Option<Conn>]| slab[index].as_ref().map(|c| c.stream.as_raw_fd());
        match after {
            After::Keep => {}
            After::RegisterWrite => {
                if let Some(fd) = fd_of(&self.slab) {
                    let _ = self
                        .epoll
                        .modify(fd, sys::EPOLLIN | sys::EPOLLOUT, index as u64);
                }
            }
            After::Drained {
                deregister,
                closing,
            } => {
                if deregister {
                    if let Some(fd) = fd_of(&self.slab) {
                        let _ = self.epoll.modify(fd, sys::EPOLLIN, index as u64);
                    }
                }
                if closing {
                    self.close(index);
                }
            }
            After::Close => self.close(index),
        }
    }

    fn close(&mut self, index: usize) {
        if let Some(conn) = self.slab.get_mut(index).and_then(|s| s.take()) {
            self.epoll.del(conn.stream.as_raw_fd());
            self.free.push(index);
            self.ctx.gauges().note_closed(1);
            // conn drops here, closing the socket.
        }
    }
}
