//! The query engine: admission control, per-query estimator planning,
//! result caching, and batched execution over the parallel sampler.
//!
//! One engine serves one graph. Answers are independent of the worker
//! thread count and keyed by `(graph epoch, s, t, estimator, samples,
//! seed)`:
//!
//! * MC and BFS-Sharing queries run on the [`ParallelSampler`], whose
//!   sharded RNG streams make the estimate independent of the worker
//!   thread count;
//! * the remaining estimators (ProbTree, LP/LP+, RHH, RSS, couplings)
//!   are built once, parked behind per-kind mutexes, and queried with an
//!   RNG derived from the cache key.
//!
//! Batches amortize sampling: MC queries sharing `(s, samples, seed)`
//! are answered from **one** stream of possible worlds via
//! [`ParallelSampler::estimate_mc_multi`] — n queries for the sampling
//! cost of one. A batch group of one degenerates to exactly the
//! single-query stream, so cache entries never depend on whether a query
//! arrived alone or in a batch of one. A group of two or more draws from
//! the group's shared stream, which differs bit-wise from the
//! early-terminating single-query stream (both unbiased, both
//! thread-count-deterministic): the first computation of a key — alone
//! or inside some batch — is the answer the cache replays thereafter.

use crate::cache::ShardedLru;
use crate::protocol::{QueryRequest, QueryResponse, StatsResponse};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::parallel::{shard_rng, ParallelSampler};
use relcomp_core::{build_estimator, Estimator, EstimatorKind, SuiteParams};
use relcomp_eval::recommend::{recommend, MemoryBudget, SpeedNeed, VarianceNeed};
use relcomp_ugraph::{NodeId, UncertainGraph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tunable knobs of a [`QueryEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Sampling worker threads per query (0 = all available cores).
    pub threads: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Sample budget used when a query does not specify one.
    pub default_samples: usize,
    /// Admission control: largest accepted per-query sample budget.
    pub max_samples: usize,
    /// Admission control: largest accepted batch.
    pub max_batch: usize,
    /// Admission control: most queries/batches computed concurrently.
    pub max_inflight: usize,
    /// Seed used when a query does not specify one.
    pub default_seed: u64,
    /// Estimator used when a query does not specify one.
    pub default_estimator: EstimatorKind,
    /// `estimator:"auto"` policy: memory budget handed to Fig. 18.
    pub memory: MemoryBudget,
    /// `estimator:"auto"` policy: variance need handed to Fig. 18.
    pub variance: VarianceNeed,
    /// `estimator:"auto"` policy: speed need handed to Fig. 18.
    pub speed: SpeedNeed,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        EngineConfig {
            threads: cores,
            cache_capacity: 4096,
            cache_shards: 16,
            default_samples: 2000,
            max_samples: 1_000_000,
            max_batch: 1024,
            max_inflight: 4 * cores,
            default_seed: 42,
            default_estimator: EstimatorKind::Mc,
            memory: MemoryBudget::Larger,
            variance: VarianceNeed::Higher,
            speed: SpeedNeed::Faster,
        }
    }
}

/// Everything that determines an answer bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Graph epoch (bumped when the served graph is replaced).
    pub epoch: u64,
    /// Source node.
    pub s: u32,
    /// Target node.
    pub t: u32,
    /// Estimator that answers.
    pub kind: EstimatorKind,
    /// Sample budget.
    pub samples: usize,
    /// Master seed.
    pub seed: u64,
}

/// A validated, defaulted query ready to execute.
#[derive(Clone, Copy, Debug)]
pub struct PlannedQuery {
    /// Source node (validated against the graph).
    pub s: NodeId,
    /// Target node (validated against the graph).
    pub t: NodeId,
    /// Chosen estimator.
    pub kind: EstimatorKind,
    /// Sample budget after defaulting and admission checks.
    pub samples: usize,
    /// Seed after defaulting.
    pub seed: u64,
}

/// Per-query outcomes of a batch, in request order.
pub type BatchResults = Vec<Result<QueryResponse, String>>;

#[derive(Clone, Debug)]
struct CachedAnswer {
    reliability: f64,
    samples: usize,
    estimator: &'static str,
}

/// Decrements the in-flight counter on drop (panic-safe admission).
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// A long-lived, thread-safe s-t reliability query engine over one graph.
pub struct QueryEngine {
    graph: Arc<UncertainGraph>,
    config: EngineConfig,
    epoch: u64,
    sampler: ParallelSampler,
    cache: ShardedLru<QueryKey, CachedAnswer>,
    /// Lazily built sequential estimators (everything the parallel
    /// sampler does not cover), shared across connections. The outer
    /// mutex guards only the registry; each estimator has its own lock.
    #[allow(clippy::type_complexity)]
    resident: Mutex<HashMap<EstimatorKind, Arc<Mutex<Box<dyn Estimator + Send>>>>>,
    inflight: AtomicUsize,
    queries: AtomicU64,
    rejected: AtomicU64,
    started: Instant,
}

impl QueryEngine {
    /// Build an engine serving `graph` at epoch 0.
    pub fn new(graph: Arc<UncertainGraph>, config: EngineConfig) -> Self {
        Self::with_epoch(graph, config, 0)
    }

    /// Build an engine serving `graph` tagged with `epoch`.
    ///
    /// The epoch is part of every cache key and of the wire `stats`
    /// answer. Operators that replace the served graph by standing up a
    /// new engine should bump it, so answers recorded by clients (or any
    /// cache state shared beyond one engine) can never be confused
    /// across graph versions.
    pub fn with_epoch(graph: Arc<UncertainGraph>, config: EngineConfig, epoch: u64) -> Self {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        QueryEngine {
            sampler: ParallelSampler::new(Arc::clone(&graph), threads),
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            graph,
            config,
            epoch,
            resident: Mutex::new(HashMap::new()),
            inflight: AtomicUsize::new(0),
            queries: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The served graph.
    pub fn graph(&self) -> &Arc<UncertainGraph> {
        &self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current graph epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Resolve defaults, pick an estimator, and validate one request.
    pub fn plan(&self, req: &QueryRequest) -> Result<PlannedQuery, String> {
        let n = self.graph.num_nodes();
        for (what, id) in [("source", req.s), ("target", req.t)] {
            if !self.graph.contains_node(NodeId(id)) {
                return Err(format!(
                    "{what} node {id} out of range (graph has {n} nodes)"
                ));
            }
        }
        let samples = req.samples.unwrap_or(self.config.default_samples);
        if samples == 0 {
            return Err("samples must be positive".into());
        }
        if samples > self.config.max_samples {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(format!(
                "samples {samples} exceeds the admission limit {}",
                self.config.max_samples
            ));
        }
        let kind = match req.estimator.as_deref() {
            None => self.config.default_estimator,
            Some("auto") => recommend(self.config.memory, self.config.variance, self.config.speed)
                .first()
                .copied()
                .unwrap_or(self.config.default_estimator),
            Some(name) => {
                EstimatorKind::parse(name).ok_or_else(|| format!("unknown estimator `{name}`"))?
            }
        };
        Ok(PlannedQuery {
            s: NodeId(req.s),
            t: NodeId(req.t),
            kind,
            samples,
            seed: req.seed.unwrap_or(self.config.default_seed),
        })
    }

    fn admit(&self) -> Result<InflightGuard<'_>, String> {
        let prev = self.inflight.fetch_add(1, Ordering::Acquire);
        if prev >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::Release);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(format!(
                "server overloaded: {} queries in flight (limit {})",
                prev, self.config.max_inflight
            ));
        }
        Ok(InflightGuard(&self.inflight))
    }

    fn key(&self, p: &PlannedQuery) -> QueryKey {
        QueryKey {
            epoch: self.epoch,
            s: p.s.0,
            t: p.t.0,
            kind: p.kind,
            samples: p.samples,
            seed: p.seed,
        }
    }

    fn respond(
        &self,
        p: &PlannedQuery,
        a: &CachedAnswer,
        cached: bool,
        start: Instant,
    ) -> QueryResponse {
        self.queries.fetch_add(1, Ordering::Relaxed);
        QueryResponse {
            s: p.s.0,
            t: p.t.0,
            reliability: a.reliability,
            samples: a.samples,
            estimator: a.estimator.to_owned(),
            micros: start.elapsed().as_micros() as u64,
            cached,
        }
    }

    /// Fetch (building on first use) the shared estimator for `kind`.
    /// The registry lock is held only for the map lookup/insert; queries
    /// then contend on the per-kind mutex alone, so e.g. a slow first
    /// ProbTree index build never stalls concurrent RSS queries.
    fn resident_estimator(&self, kind: EstimatorKind) -> Arc<Mutex<Box<dyn Estimator + Send>>> {
        if let Some(est) = self
            .resident
            .lock()
            .expect("resident registry poisoned")
            .get(&kind)
        {
            return Arc::clone(est);
        }
        // Build outside the registry lock. Two racing first queries may
        // both build; the entry API keeps the first and drops the other —
        // harmless, since builds are deterministic in the engine seed (a
        // restarted server rebuilds identical indexes).
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.default_seed);
        let built = Arc::new(Mutex::new(build_estimator(
            kind,
            Arc::clone(&self.graph),
            SuiteParams::default(),
            &mut rng,
        )));
        let mut registry = self.resident.lock().expect("resident registry poisoned");
        Arc::clone(registry.entry(kind).or_insert(built))
    }

    /// Compute a planned query, bypassing the cache.
    fn compute(&self, p: &PlannedQuery) -> CachedAnswer {
        match p.kind {
            EstimatorKind::Mc => {
                let est = self.sampler.estimate_mc(p.s, p.t, p.samples, p.seed);
                CachedAnswer {
                    reliability: est.reliability,
                    samples: est.samples,
                    estimator: "MC",
                }
            }
            EstimatorKind::BfsSharing => {
                let est = self
                    .sampler
                    .estimate_bfs_sharing(p.s, p.t, p.samples, p.seed);
                CachedAnswer {
                    reliability: est.reliability,
                    samples: est.samples,
                    estimator: "BFS Sharing",
                }
            }
            kind => {
                let shared = self.resident_estimator(kind);
                let mut est = shared.lock().expect("resident estimator poisoned");
                // Derive the query stream from the cache key so identical
                // keys replay identical randomness.
                let mut rng = shard_rng(p.seed, ((p.s.0 as u64) << 32) | p.t.0 as u64);
                est.refresh(&mut rng);
                let e = est.estimate(p.s, p.t, p.samples, &mut rng);
                CachedAnswer {
                    reliability: e.reliability,
                    samples: e.samples,
                    estimator: kind.display_name(),
                }
            }
        }
    }

    /// Answer one query (admission → plan → cache → compute).
    pub fn execute(&self, req: &QueryRequest) -> Result<QueryResponse, String> {
        let _guard = self.admit()?;
        let plan = self.plan(req)?;
        let start = Instant::now();
        let key = self.key(&plan);
        if let Some(hit) = self.cache.get(&key) {
            return Ok(self.respond(&plan, &hit, true, start));
        }
        let answer = self.compute(&plan);
        self.cache.insert(key, answer.clone());
        Ok(self.respond(&plan, &answer, false, start))
    }

    /// Answer a batch in one pass, amortizing MC world sampling across
    /// queries that share `(s, samples, seed)`. Results keep input order;
    /// per-query failures do not fail the batch.
    pub fn execute_batch(&self, reqs: &[QueryRequest]) -> Result<BatchResults, String> {
        let _guard = self.admit()?;
        if reqs.len() > self.config.max_batch {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(format!(
                "batch of {} exceeds the admission limit {}",
                reqs.len(),
                self.config.max_batch
            ));
        }
        let start = Instant::now();
        let mut out: Vec<Option<Result<QueryResponse, String>>> = vec![None; reqs.len()];
        // (group key -> indices of cache-missing MC queries to batch).
        let mut mc_groups: HashMap<(u32, usize, u64), Vec<usize>> = HashMap::new();
        let mut plans: Vec<Option<PlannedQuery>> = vec![None; reqs.len()];

        for (i, req) in reqs.iter().enumerate() {
            match self.plan(req) {
                Err(e) => out[i] = Some(Err(e)),
                Ok(plan) => {
                    let key = self.key(&plan);
                    if let Some(hit) = self.cache.get(&key) {
                        out[i] = Some(Ok(self.respond(&plan, &hit, true, start)));
                    } else if plan.kind == EstimatorKind::Mc {
                        mc_groups
                            .entry((plan.s.0, plan.samples, plan.seed))
                            .or_default()
                            .push(i);
                        plans[i] = Some(plan);
                    } else {
                        let answer = self.compute(&plan);
                        self.cache.insert(key, answer.clone());
                        out[i] = Some(Ok(self.respond(&plan, &answer, false, start)));
                    }
                }
            }
        }

        for ((s, samples, seed), indices) in mc_groups {
            let targets: Vec<NodeId> = indices
                .iter()
                .map(|&i| plans[i].expect("planned").t)
                .collect();
            let estimates = self
                .sampler
                .estimate_mc_multi(NodeId(s), &targets, samples, seed);
            for (&i, est) in indices.iter().zip(&estimates) {
                let plan = plans[i].expect("planned");
                let answer = CachedAnswer {
                    reliability: est.reliability,
                    samples: est.samples,
                    estimator: "MC",
                };
                self.cache.insert(self.key(&plan), answer.clone());
                out[i] = Some(Ok(self.respond(&plan, &answer, false, start)));
            }
        }

        Ok(out
            .into_iter()
            .map(|r| r.expect("every slot answered"))
            .collect())
    }

    /// Current counters.
    pub fn stats(&self) -> StatsResponse {
        StatsResponse {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.cache.len(),
            rejected: self.rejected.load(Ordering::Relaxed),
            threads: self.sampler.threads(),
            epoch: self.epoch,
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            uptime_micros: self.started.elapsed().as_micros() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_core::exact::exact_reliability;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        Arc::new(b.build())
    }

    fn engine() -> QueryEngine {
        QueryEngine::new(
            diamond(),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        )
    }

    fn q(s: u32, t: u32) -> QueryRequest {
        QueryRequest {
            s,
            t,
            estimator: Some("mc".into()),
            samples: Some(4000),
            seed: Some(7),
        }
    }

    #[test]
    fn repeated_query_hits_cache_with_identical_answer() {
        let e = engine();
        let first = e.execute(&q(0, 3)).unwrap();
        assert!(!first.cached);
        let second = e.execute(&q(0, 3)).unwrap();
        assert!(second.cached);
        assert_eq!(first.reliability.to_bits(), second.reliability.to_bits());
        assert_eq!(e.stats().cache_hits, 1);
        assert!(e.stats().queries >= 2);
    }

    #[test]
    fn engine_answers_match_exact_roughly() {
        let e = engine();
        let exact = exact_reliability(e.graph(), NodeId(0), NodeId(3));
        let mut req = q(0, 3);
        req.samples = Some(60_000);
        let resp = e.execute(&req).unwrap();
        assert!((resp.reliability - exact).abs() < 0.02);
    }

    #[test]
    fn thread_count_does_not_change_engine_answer() {
        let answers: Vec<u64> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let e = QueryEngine::new(
                    diamond(),
                    EngineConfig {
                        threads,
                        ..Default::default()
                    },
                );
                e.execute(&q(0, 3)).unwrap().reliability.to_bits()
            })
            .collect();
        assert_eq!(answers[0], answers[1]);
    }

    #[test]
    fn single_query_and_batch_of_one_share_cache_entries() {
        // A batch group of one must reproduce the single-query stream, so
        // the cache stays path-independent.
        let e1 = engine();
        let single = e1.execute(&q(0, 3)).unwrap();
        let e2 = engine();
        let batch = e2.execute_batch(&[q(0, 3)]).unwrap();
        let batched = batch[0].as_ref().unwrap();
        assert_eq!(single.reliability.to_bits(), batched.reliability.to_bits());
    }

    #[test]
    fn batch_amortizes_and_answers_every_query() {
        let e = engine();
        let reqs = vec![q(0, 1), q(0, 2), q(0, 3), q(1, 3)];
        let results = e.execute_batch(&reqs).unwrap();
        assert_eq!(results.len(), 4);
        for (req, res) in reqs.iter().zip(&results) {
            let r = res.as_ref().unwrap();
            assert_eq!((r.s, r.t), (req.s, req.t));
            assert!((0.0..=1.0).contains(&r.reliability));
        }
        // Batch answers are now cached for singles.
        assert!(e.execute(&q(0, 2)).unwrap().cached);
    }

    #[test]
    fn batch_with_bad_query_still_answers_the_rest() {
        let e = engine();
        let results = e.execute_batch(&[q(0, 3), q(0, 99)]).unwrap();
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn planning_validates_and_defaults() {
        let e = engine();
        assert!(e.plan(&QueryRequest::new(0, 99)).is_err());
        assert!(e
            .plan(&QueryRequest {
                estimator: Some("mcmc".into()),
                ..QueryRequest::new(0, 1)
            })
            .is_err());
        let plan = e.plan(&QueryRequest::new(0, 1)).unwrap();
        assert_eq!(plan.kind, EstimatorKind::Mc);
        assert_eq!(plan.samples, e.config().default_samples);
        assert_eq!(plan.seed, e.config().default_seed);
        // auto goes through Fig. 18 under the default (Larger, Higher,
        // Faster) policy → LP+.
        let auto = e
            .plan(&QueryRequest {
                estimator: Some("auto".into()),
                ..QueryRequest::new(0, 1)
            })
            .unwrap();
        assert_eq!(auto.kind, EstimatorKind::LpPlus);
    }

    #[test]
    fn admission_rejects_oversized_budgets_and_batches() {
        let e = QueryEngine::new(
            diamond(),
            EngineConfig {
                max_samples: 100,
                max_batch: 2,
                ..Default::default()
            },
        );
        let mut req = QueryRequest::new(0, 1);
        req.samples = Some(101);
        assert!(e.execute(&req).unwrap_err().contains("admission"));
        let batch = vec![QueryRequest::new(0, 1); 3];
        assert!(e.execute_batch(&batch).unwrap_err().contains("admission"));
        assert_eq!(
            e.stats().rejected,
            2,
            "admission rejections must show up in stats"
        );
    }

    #[test]
    fn resident_estimators_answer_and_cache() {
        let e = engine();
        for name in ["probtree", "lp+", "rhh", "rss"] {
            let req = QueryRequest {
                estimator: Some(name.into()),
                samples: Some(2000),
                ..QueryRequest::new(0, 3)
            };
            let first = e.execute(&req).unwrap();
            assert!((0.0..=1.0).contains(&first.reliability), "{name}");
            let second = e.execute(&req).unwrap();
            assert!(second.cached, "{name} should cache");
            assert_eq!(first.reliability.to_bits(), second.reliability.to_bits());
        }
    }
}
