//! The query engine: admission control, per-query estimator planning,
//! result caching, batched execution over the parallel sampler, and
//! **live graph epochs** — edge-probability updates and wholesale
//! reloads swap the served graph without restarting the process.
//!
//! One engine serves one graph *lineage*. Answers are independent of the
//! worker thread count and keyed by `(graph epoch, s, t, estimator,
//! samples, seed, budget)` — the budget being the adaptive-session
//! fields `eps`/`confidence`/`time_budget_ms` (see [`QueryKey`]):
//!
//! * MC and BFS-Sharing queries run on the [`ParallelSampler`], whose
//!   sharded RNG streams make the estimate independent of the worker
//!   thread count;
//! * the remaining estimators (ProbTree, LP/LP+, RHH, RSS, couplings)
//!   are built once, parked in an epoch-tagged registry behind per-kind
//!   mutexes, and queried with an RNG derived from the cache key.
//!
//! Batches amortize sampling: MC queries sharing `(s, samples, seed)`
//! are answered from **one** stream of possible worlds via
//! [`ParallelSampler::estimate_mc_multi`] — n queries for the sampling
//! cost of one. A batch group of one degenerates to exactly the
//! single-query stream, so cache entries never depend on whether a query
//! arrived alone or in a batch of one.
//!
//! ## Epoch swaps
//!
//! [`QueryEngine::apply_updates`] resolves a batch of `(s, t, prob)`
//! updates against the current graph, snapshots a new epoch via
//! [`UncertainGraph::with_updated_probs`] (topology shared,
//! probabilities copy-on-write), migrates every resident estimator
//! through [`Estimator::apply_updates`] — incremental index maintenance
//! for ProbTree, a pointer rebind for the index-free estimators — and
//! evicts residents that cannot migrate (rebuilt lazily on next use).
//! MC and BFS-Sharing queries sample from the swapped-in graph on
//! their next query, so the sampler path needs no migration. The epoch
//! bump makes every existing cache key miss, so stale answers age out
//! of the LRU without an explicit flush.
//!
//! Queries snapshot `(epoch, graph, sampler)` once and compute entirely
//! against that snapshot; a query that races an epoch swap on the
//! resident-estimator path detects the migrated (re-tagged) estimator
//! under its lock and transparently retries against the new epoch, so a
//! cache entry is only ever written by a computation over its own
//! epoch's graph.

use crate::cache::ShardedLru;
use crate::protocol::{
    DistanceQueryRequest, DistanceQueryResponse, EdgeProbUpdate, MaximizeRequest, MaximizeResponse,
    MigratedResident, QueryRequest, QueryResponse, ReloadResponse, StatsResponse, TargetEntry,
    TopKRequest, TopKResponse, UpdateResponse, UpgradeRow,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::maximize::{MaximizeOptions, DEFAULT_MAX_CANDIDATES};
use relcomp_core::metrics::take_thread_session_stats;
use relcomp_core::parallel::{shard_rng, ParallelSampler};
use relcomp_core::session::{
    restate_bernoulli_confidence, validate_budget_fields, DEFAULT_ADAPTIVE_CAP, DEFAULT_CONFIDENCE,
};
use relcomp_core::{
    build_estimator, Estimator, EstimatorKind, SampleBudget, StopReason, SuiteParams, UpdateOutcome,
};
use relcomp_eval::recommend::{recommend, MemoryBudget, SpeedNeed, VarianceNeed};
use relcomp_obs::{
    MetricsSnapshot, Outcome, QueryTrace, Registry, Span, Stage, TraceBuilder,
    Workload as ObsWorkload,
};
use relcomp_ugraph::{EdgeUpdate, NodeId, UncertainGraph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Tunable knobs of a [`QueryEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Sampling worker threads per query (0 = all available cores).
    pub threads: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Sample budget used when a query does not specify one.
    pub default_samples: usize,
    /// Admission control: largest accepted per-query sample budget.
    pub max_samples: usize,
    /// Admission control: largest accepted batch.
    pub max_batch: usize,
    /// Admission control: most queries/batches computed concurrently.
    pub max_inflight: usize,
    /// Seed used when a query does not specify one.
    pub default_seed: u64,
    /// Estimator used when a query does not specify one.
    pub default_estimator: EstimatorKind,
    /// Sample cap applied to adaptive queries (`eps`/`time_budget_ms`)
    /// that do not specify `samples`. Kept well below `max_samples` so
    /// an unconverged easy-sounding query cannot eat the whole admission
    /// budget.
    pub adaptive_max_samples: usize,
    /// Relative half-width target the `auto` planner budgets for when
    /// the client gave neither `samples` nor `eps`: the Fig. 18 pick
    /// then runs until this accuracy instead of a raw default K.
    pub auto_eps: f64,
    /// `k` used when a `topk` request does not specify one.
    pub default_top_k: usize,
    /// `k` used when a `maximize` request does not specify one.
    pub default_maximize_k: usize,
    /// Admission control: largest accepted `maximize` candidate pool —
    /// each greedy round may evaluate the whole pool, so this bounds
    /// the cost multiplier over a plain query. Also the default when a
    /// request does not specify `candidates`.
    pub max_maximize_candidates: usize,
    /// `estimator:"auto"` policy: memory budget handed to Fig. 18.
    pub memory: MemoryBudget,
    /// `estimator:"auto"` policy: variance need handed to Fig. 18.
    pub variance: VarianceNeed,
    /// `estimator:"auto"` policy: speed need handed to Fig. 18.
    pub speed: SpeedNeed,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        EngineConfig {
            threads: cores,
            cache_capacity: 4096,
            cache_shards: 16,
            default_samples: 2000,
            max_samples: 1_000_000,
            max_batch: 1024,
            max_inflight: 4 * cores,
            default_seed: 42,
            default_estimator: EstimatorKind::Mc,
            adaptive_max_samples: DEFAULT_ADAPTIVE_CAP,
            auto_eps: 0.01,
            default_top_k: 10,
            default_maximize_k: 1,
            max_maximize_candidates: DEFAULT_MAX_CANDIDATES,
            memory: MemoryBudget::Larger,
            variance: VarianceNeed::Higher,
            speed: SpeedNeed::Faster,
        }
    }
}

/// Which served workload a cache key answers. The discriminator carries
/// the workload's own parameter (`k` for top-k, `d` for
/// distance-constrained), so a `topk` at `k = 5` and one at `k = 10`
/// from the same source cache separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Plain s-t reliability (`query`).
    St,
    /// Top-k reliability search (`topk`); `t` is unused in the key.
    TopK {
        /// Number of targets requested.
        k: usize,
    },
    /// Distance-constrained reliability (`dquery`).
    Distance {
        /// Hop bound `d`.
        d: usize,
    },
    /// Greedy reliability maximization (`maximize`). Report-only
    /// answers cache; `apply` runs bump the epoch and never cache.
    Maximize {
        /// Number of upgrades requested.
        k: usize,
        /// Boost probability (`f64::to_bits` — it shapes every
        /// candidate, so two boosts are different computations).
        boost_bits: u64,
        /// Candidate-pool cap.
        candidates: usize,
    },
}

/// Everything that determines an answer bit-for-bit.
///
/// The budget is part of the key: a fixed-2000 query, an `eps`-targeted
/// query capped at 2000, and a time-capped query are different
/// computations and cache separately. (Time-capped answers are machine-
/// dependent; the cache replays whichever computation landed first for a
/// given key, exactly as it does for batch-grouped answers.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Which workload (and its `k`/`d` parameter) this key answers.
    pub workload: WorkloadKind,
    /// Graph epoch (bumped on every update/reload).
    pub epoch: u64,
    /// Source node.
    pub s: u32,
    /// Target node.
    pub t: u32,
    /// Estimator that answers.
    pub kind: EstimatorKind,
    /// Sample budget (exact count for fixed queries, cap for adaptive).
    pub samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Relative half-width target (`f64::to_bits`), if adaptive.
    pub eps_bits: Option<u64>,
    /// Confidence level (`f64::to_bits`): it shapes the reported
    /// half-width even for fixed budgets, so it is always keyed.
    pub confidence_bits: Option<u64>,
    /// Wall-time cap in milliseconds, if any.
    pub time_budget_ms: Option<u64>,
}

/// A validated, defaulted query ready to execute.
#[derive(Clone, Copy, Debug)]
pub struct PlannedQuery {
    /// Source node (validated against the graph).
    pub s: NodeId,
    /// Target node (validated against the graph).
    pub t: NodeId,
    /// Chosen estimator.
    pub kind: EstimatorKind,
    /// Sample budget after defaulting and admission checks — the exact
    /// count for fixed queries, the cap for adaptive ones.
    pub samples: usize,
    /// Seed after defaulting.
    pub seed: u64,
    /// Relative half-width target, if adaptive.
    pub eps: Option<f64>,
    /// Confidence level of the half-width target.
    pub confidence: f64,
    /// Wall-time cap in milliseconds, if any.
    pub time_budget_ms: Option<u64>,
}

impl PlannedQuery {
    /// Whether this plan runs a fixed budget (historical semantics).
    pub fn is_fixed(&self) -> bool {
        self.eps.is_none() && self.time_budget_ms.is_none()
    }

    /// The sample budget this plan executes. Confidence applies to
    /// fixed budgets too: it shapes the *reported* half-width even when
    /// it cannot stop the run.
    pub fn budget(&self) -> SampleBudget {
        SampleBudget::assemble(self.samples, self.eps, self.confidence, self.time_budget_ms)
    }
}

/// Per-query outcomes of a batch, in request order.
pub type BatchResults = Vec<Result<QueryResponse, String>>;

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct CachedAnswer {
    pub(crate) reliability: f64,
    pub(crate) samples: usize,
    pub(crate) estimator: &'static str,
    pub(crate) stop_reason: StopReason,
    pub(crate) half_width: Option<f64>,
    pub(crate) variance: Option<f64>,
    /// Ranked `(node, reliability)` pairs for top-k answers; `None` for
    /// the single-value workloads.
    pub(crate) targets: Option<Vec<(u32, f64)>>,
    /// Greedy-search payload for maximize answers; `None` otherwise.
    pub(crate) upgrades: Option<MaximizeAnswer>,
}

/// The maximize-specific half of a cached answer: everything beyond the
/// final reliability that `CachedAnswer` already carries.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct MaximizeAnswer {
    pub(crate) base_reliability: f64,
    pub(crate) gain: f64,
    pub(crate) chosen: Vec<UpgradeRow>,
    pub(crate) candidates: usize,
    pub(crate) evaluations: usize,
}

/// The query raced an epoch swap; re-snapshot and retry.
struct Stale;

/// A resident estimator with the epoch its index currently reflects.
/// The tag is read and written only under the mutex, so a query that
/// locked the cell observes exactly the epoch its answer will come from.
type ResidentCell = Mutex<(u64, Box<dyn Estimator + Send>)>;

/// The swappable half of the engine: everything an epoch bump replaces,
/// kept under one lock so `(epoch, graph, sampler, registry)` always
/// change together.
struct EngineState {
    epoch: u64,
    graph: Arc<UncertainGraph>,
    sampler: Arc<ParallelSampler>,
    resident: HashMap<EstimatorKind, Arc<ResidentCell>>,
}

/// A consistent view of one epoch, cheap to clone out of the lock.
struct Snapshot {
    epoch: u64,
    graph: Arc<UncertainGraph>,
    sampler: Arc<ParallelSampler>,
}

/// Decrements the in-flight counter on drop (panic-safe admission).
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// Bound on transparent retries when queries race epoch swaps. Each
/// retry needs a *further* concurrent update to fail again, so hitting
/// the bound means the server is being update-flooded.
const MAX_EPOCH_RETRIES: usize = 8;

/// A long-lived, thread-safe s-t reliability query engine over one graph
/// lineage.
pub struct QueryEngine {
    state: RwLock<EngineState>,
    config: EngineConfig,
    /// Resolved sampling thread count (config 0 = all cores).
    threads: usize,
    cache: ShardedLru<QueryKey, CachedAnswer>,
    /// File the graph was loaded from, if any — the default `reload`
    /// source.
    source: Mutex<Option<String>>,
    /// How the served graph was last loaded from disk: `(mmapped,
    /// micros)`. `None` until a load is recorded (e.g. a graph built in
    /// memory). Surfaces in `stats` and `metrics` so a silent fallback
    /// from the mmap path to a full heap parse is observable.
    last_load: Mutex<Option<(bool, u64)>>,
    inflight: AtomicUsize,
    /// Per-engine metrics registry (counters, latency histograms, trace
    /// ring). `stats()` is a view over it; `metrics()` exposes all of it.
    obs: Registry,
    started: Instant,
}

/// How a query failed, so the registry can count admission-control
/// rejections (`rejected` outcome) apart from other failures (`error`).
/// Collapses back to the plain `String` error at the public API boundary.
enum Fail {
    Rejected(String),
    Error(String),
}

impl Fail {
    fn into_message(self) -> String {
        match self {
            Fail::Rejected(m) | Fail::Error(m) => m,
        }
    }
}

impl From<String> for Fail {
    fn from(m: String) -> Self {
        Fail::Error(m)
    }
}

impl QueryEngine {
    /// Build an engine serving `graph` at epoch 0.
    pub fn new(graph: Arc<UncertainGraph>, config: EngineConfig) -> Self {
        Self::with_epoch(graph, config, 0)
    }

    /// Build an engine serving `graph` tagged with a starting `epoch`.
    ///
    /// The epoch is part of every cache key and of the wire `stats`
    /// answer, and is bumped by [`QueryEngine::apply_updates`] and
    /// [`QueryEngine::reload_graph`]; operators that persist answers
    /// across restarts can seed it so recorded epochs never repeat.
    pub fn with_epoch(graph: Arc<UncertainGraph>, config: EngineConfig, epoch: u64) -> Self {
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        QueryEngine {
            state: RwLock::new(EngineState {
                epoch,
                sampler: Arc::new(ParallelSampler::new(Arc::clone(&graph), threads)),
                graph,
                resident: HashMap::new(),
            }),
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            config,
            threads,
            source: Mutex::new(None),
            last_load: Mutex::new(None),
            inflight: AtomicUsize::new(0),
            obs: Registry::new(),
            started: Instant::now(),
        }
    }

    /// The currently served graph (the latest epoch's snapshot).
    pub fn graph(&self) -> Arc<UncertainGraph> {
        Arc::clone(&self.state.read().expect("engine state poisoned").graph)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current graph epoch.
    pub fn epoch(&self) -> u64 {
        self.state.read().expect("engine state poisoned").epoch
    }

    /// Record the file the served graph came from; `reload` without an
    /// explicit path re-reads it.
    pub fn set_source(&self, path: impl Into<String>) {
        *self.source.lock().expect("source poisoned") = Some(path.into());
    }

    /// The recorded reload source, if any.
    pub fn source(&self) -> Option<String> {
        self.source.lock().expect("source poisoned").clone()
    }

    /// Record how the served graph was loaded from disk (zero-copy mmap
    /// vs heap parse) and how long the load took. Called by `serve`
    /// startup and every `reload`.
    pub fn record_load(&self, mmapped: bool, micros: u64) {
        *self.last_load.lock().expect("last_load poisoned") = Some((mmapped, micros));
    }

    /// The last recorded disk load, as `(mmapped, micros)`.
    pub fn last_load(&self) -> Option<(bool, u64)> {
        *self.last_load.lock().expect("last_load poisoned")
    }

    /// Snapshot the result cache for persistence: the current epoch plus
    /// every cached entry stamped with it. Entries from older epochs are
    /// already unreachable (the epoch is part of the key) and are not
    /// exported.
    pub(crate) fn export_cache(&self) -> (u64, Vec<(QueryKey, CachedAnswer)>) {
        let epoch = self.epoch();
        let entries = self
            .cache
            .entries()
            .into_iter()
            .filter(|(k, _)| k.epoch == epoch)
            .collect();
        (epoch, entries)
    }

    /// Re-admit persisted entries, keeping only those stamped with the
    /// engine's *current* epoch — a snapshot taken before an update the
    /// engine has since replayed must not resurrect stale answers.
    /// Returns how many entries were admitted.
    pub(crate) fn import_cache(&self, entries: Vec<(QueryKey, CachedAnswer)>) -> usize {
        let epoch = self.epoch();
        let mut admitted = 0;
        for (key, value) in entries {
            if key.epoch == epoch {
                self.cache.insert(key, value);
                admitted += 1;
            }
        }
        admitted
    }

    fn snapshot(&self) -> Snapshot {
        let state = self.state.read().expect("engine state poisoned");
        Snapshot {
            epoch: state.epoch,
            graph: Arc::clone(&state.graph),
            sampler: Arc::clone(&state.sampler),
        }
    }

    /// Resolve defaults, pick an estimator, and validate one request
    /// against the current epoch's graph.
    pub fn plan(&self, req: &QueryRequest) -> Result<PlannedQuery, String> {
        self.plan_on(&self.snapshot().graph, req)
            .map_err(Fail::into_message)
    }

    fn plan_on(&self, graph: &UncertainGraph, req: &QueryRequest) -> Result<PlannedQuery, Fail> {
        let n = graph.num_nodes();
        for (what, id) in [("source", req.s), ("target", req.t)] {
            if !graph.contains_node(NodeId(id)) {
                return Err(Fail::Error(format!(
                    "{what} node {id} out of range (graph has {n} nodes)"
                )));
            }
        }
        let mut eps = req.eps;
        let is_auto = req.estimator.as_deref() == Some("auto");
        // The Fig. 18 auto planner now picks *budgets*, not raw sample
        // counts: with no explicit samples or eps, it targets the
        // configured accuracy adaptively.
        if is_auto && req.samples.is_none() && eps.is_none() {
            eps = Some(self.config.auto_eps);
        }
        let (samples, confidence) =
            self.resolve_budget(req.samples, eps, req.confidence, req.time_budget_ms)?;
        let kind = match req.estimator.as_deref() {
            None => self.config.default_estimator,
            Some("auto") => recommend(self.config.memory, self.config.variance, self.config.speed)
                .first()
                .copied()
                .unwrap_or(self.config.default_estimator),
            Some(name) => EstimatorKind::parse(name).map_err(Fail::Error)?,
        };
        Ok(PlannedQuery {
            s: NodeId(req.s),
            t: NodeId(req.t),
            kind,
            samples,
            seed: req.seed.unwrap_or(self.config.default_seed),
            eps,
            confidence,
            time_budget_ms: req.time_budget_ms,
        })
    }

    /// Resolve and admission-check the budget fields every workload
    /// shares: validates the adaptive knobs, substitutes the configured
    /// defaults (the adaptive cap when an adaptive knob is present), and
    /// enforces the `max_samples` admission limit. Returns the resolved
    /// `(samples, confidence)`.
    fn resolve_budget(
        &self,
        samples: Option<usize>,
        eps: Option<f64>,
        confidence: Option<f64>,
        time_budget_ms: Option<u64>,
    ) -> Result<(usize, f64), Fail> {
        validate_budget_fields(eps, confidence, time_budget_ms).map_err(Fail::Error)?;
        let adaptive = eps.is_some() || time_budget_ms.is_some();
        let samples = samples.unwrap_or(if adaptive {
            self.config.adaptive_max_samples
        } else {
            self.config.default_samples
        });
        if samples == 0 {
            return Err(Fail::Error("samples must be positive".into()));
        }
        if samples > self.config.max_samples {
            return Err(Fail::Rejected(format!(
                "samples {samples} exceeds the admission limit {}",
                self.config.max_samples
            )));
        }
        Ok((samples, confidence.unwrap_or(DEFAULT_CONFIDENCE)))
    }

    fn admit(&self) -> Result<InflightGuard<'_>, Fail> {
        let prev = self.inflight.fetch_add(1, Ordering::Acquire);
        if prev >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::Release);
            return Err(Fail::Rejected(format!(
                "server overloaded: {} queries in flight (limit {})",
                prev, self.config.max_inflight
            )));
        }
        Ok(InflightGuard(&self.inflight))
    }

    /// Count a failed query under its outcome label and surface the
    /// message — the single exit every failing public path goes through.
    fn fail(&self, workload: ObsWorkload, fail: Fail) -> String {
        match &fail {
            Fail::Rejected(_) => self.obs.record_rejected(workload),
            Fail::Error(_) => self.obs.record_error(workload),
        }
        fail.into_message()
    }

    fn key(epoch: u64, p: &PlannedQuery) -> QueryKey {
        QueryKey {
            workload: WorkloadKind::St,
            epoch,
            s: p.s.0,
            t: p.t.0,
            kind: p.kind,
            samples: p.samples,
            seed: p.seed,
            eps_bits: p.eps.map(f64::to_bits),
            confidence_bits: Some(p.confidence.to_bits()),
            time_budget_ms: p.time_budget_ms,
        }
    }

    /// The shared success epilogue the three `respond*` helpers used to
    /// copy-paste: stamp the elapsed time and record the query in the
    /// registry (outcome counter, estimator counter, latency histogram).
    /// Returns the elapsed microseconds for the wire response.
    fn observe(
        &self,
        workload: ObsWorkload,
        estimator: &'static str,
        cached: bool,
        start: Instant,
    ) -> u64 {
        let micros = start.elapsed().as_micros() as u64;
        let outcome = if cached { Outcome::Hit } else { Outcome::Miss };
        self.obs.observe_query(workload, outcome, estimator, micros);
        micros
    }

    fn respond(
        &self,
        p: &PlannedQuery,
        a: &CachedAnswer,
        cached: bool,
        start: Instant,
    ) -> QueryResponse {
        let micros = self.observe(ObsWorkload::St, a.estimator, cached, start);
        QueryResponse {
            s: p.s.0,
            t: p.t.0,
            reliability: a.reliability,
            samples: a.samples,
            estimator: a.estimator.to_owned(),
            micros,
            cached,
            stop_reason: a.stop_reason.label().to_owned(),
            half_width: a.half_width,
            variance: a.variance,
        }
    }

    fn respond_topk(
        &self,
        s: u32,
        k: usize,
        a: &CachedAnswer,
        cached: bool,
        start: Instant,
    ) -> TopKResponse {
        let micros = self.observe(ObsWorkload::TopK, a.estimator, cached, start);
        TopKResponse {
            s,
            k,
            targets: a
                .targets
                .as_deref()
                .unwrap_or_default()
                .iter()
                .map(|&(node, reliability)| TargetEntry { node, reliability })
                .collect(),
            samples: a.samples,
            micros,
            cached,
            stop_reason: a.stop_reason.label().to_owned(),
            half_width: a.half_width,
        }
    }

    fn respond_dquery(
        &self,
        req: &DistanceQueryRequest,
        a: &CachedAnswer,
        cached: bool,
        start: Instant,
    ) -> DistanceQueryResponse {
        let micros = self.observe(ObsWorkload::Distance, a.estimator, cached, start);
        DistanceQueryResponse {
            s: req.s,
            t: req.t,
            d: req.d,
            reliability: a.reliability,
            samples: a.samples,
            micros,
            cached,
            stop_reason: a.stop_reason.label().to_owned(),
            half_width: a.half_width,
            variance: a.variance,
        }
    }

    fn respond_maximize(
        &self,
        req: &MaximizeRequest,
        k: usize,
        a: &CachedAnswer,
        cached: bool,
        applied_epoch: Option<u64>,
        start: Instant,
    ) -> MaximizeResponse {
        let micros = self.observe(ObsWorkload::Maximize, a.estimator, cached, start);
        let m = a.upgrades.as_ref().expect("maximize answer payload");
        MaximizeResponse {
            s: req.s,
            t: req.t,
            k,
            base_reliability: m.base_reliability,
            reliability: a.reliability,
            gain: m.gain,
            chosen: m.chosen.clone(),
            candidates: m.candidates,
            evaluations: m.evaluations,
            samples: a.samples,
            micros,
            cached,
            applied_epoch,
        }
    }

    /// Fetch (building on first use) the shared estimator cell for
    /// `kind` at the snapshot's epoch. The registry lock is held only
    /// for the map lookup/insert; queries then contend on the per-kind
    /// mutex alone, so e.g. a slow first ProbTree index build never
    /// stalls concurrent RSS queries.
    fn resident_cell(
        &self,
        snap: &Snapshot,
        kind: EstimatorKind,
    ) -> Result<Arc<ResidentCell>, Stale> {
        {
            let state = self.state.read().expect("engine state poisoned");
            if state.epoch != snap.epoch {
                return Err(Stale);
            }
            if let Some(cell) = state.resident.get(&kind) {
                return Ok(Arc::clone(cell));
            }
        }
        // Build outside the registry lock, over the snapshot's graph.
        // Two racing first queries may both build; the entry API keeps
        // the first and drops the other — harmless, since builds are
        // deterministic in the engine seed (a restarted server rebuilds
        // identical indexes).
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.default_seed);
        let built = build_estimator(
            kind,
            Arc::clone(&snap.graph),
            SuiteParams::default(),
            &mut rng,
        );
        let mut state = self.state.write().expect("engine state poisoned");
        if state.epoch != snap.epoch {
            // An update landed while we were building: the index reflects
            // a dead epoch, discard it and retry at the new one.
            return Err(Stale);
        }
        Ok(Arc::clone(state.resident.entry(kind).or_insert_with(
            || Arc::new(Mutex::new((snap.epoch, built))),
        )))
    }

    /// Compute a planned query against one epoch snapshot, bypassing the
    /// cache. `Err(Stale)` means an epoch swap won the race and the
    /// caller must re-plan.
    fn compute(&self, snap: &Snapshot, p: &PlannedQuery) -> Result<CachedAnswer, Stale> {
        let budget = p.budget();
        let answer = |est: relcomp_core::Estimate, name: &'static str| CachedAnswer {
            reliability: est.reliability,
            samples: est.samples,
            estimator: name,
            stop_reason: est.stop_reason,
            half_width: est.half_width,
            variance: est.variance,
            targets: None,
            upgrades: None,
        };
        match p.kind {
            EstimatorKind::Mc => {
                let est = snap.sampler.estimate_mc_with(p.s, p.t, &budget, p.seed);
                Ok(answer(est, "MC"))
            }
            EstimatorKind::BfsSharing => {
                let est = snap
                    .sampler
                    .estimate_bfs_sharing_with(p.s, p.t, &budget, p.seed);
                Ok(answer(est, "BFS Sharing"))
            }
            kind => {
                let cell = self.resident_cell(snap, kind)?;
                let mut guard = cell.lock().expect("resident estimator poisoned");
                let (cell_epoch, est) = &mut *guard;
                if *cell_epoch != snap.epoch {
                    // Migrated (or rebuilt) under our feet — this cell now
                    // answers for a different graph than the key we hold.
                    return Err(Stale);
                }
                // Derive the query stream from the cache key so identical
                // keys replay identical randomness.
                let mut rng = shard_rng(p.seed, ((p.s.0 as u64) << 32) | p.t.0 as u64);
                est.refresh(&mut rng);
                let e = est.estimate_with(p.s, p.t, &budget, &mut rng);
                Ok(answer(e, kind.display_name()))
            }
        }
    }

    /// Run an estimation step with its time split into the `sample` and
    /// `convergence_check` trace stages. The split comes from the
    /// thread-local session stats core accumulates while estimating — every
    /// estimation path (residents, `run_adaptive`'s caller-thread stopping
    /// checks, the fixed paths) finishes its sessions on this thread.
    fn sample_span<T>(&self, tb: &mut TraceBuilder, step: impl FnOnce() -> T) -> T {
        let _ = take_thread_session_stats();
        let sample_start = Instant::now();
        let out = step();
        let elapsed = sample_start.elapsed().as_nanos() as u64;
        let sessions = take_thread_session_stats();
        let convergence = sessions.convergence_nanos.min(elapsed);
        tb.record(Stage::Sample, elapsed - convergence);
        if sessions.sessions > 0 {
            tb.record(Stage::ConvergenceCheck, convergence);
        }
        out
    }

    fn compute_traced(
        &self,
        snap: &Snapshot,
        p: &PlannedQuery,
        tb: &mut TraceBuilder,
    ) -> Result<CachedAnswer, Stale> {
        self.sample_span(tb, || self.compute(snap, p))
    }

    /// Answer one query against the current epoch, retrying transparently
    /// if an epoch swap races the computation. Stage timings (plan, cache
    /// lookup, sample, convergence check) land in `tb`.
    fn answer_traced(
        &self,
        req: &QueryRequest,
        tb: &mut TraceBuilder,
    ) -> Result<QueryResponse, Fail> {
        for _ in 0..MAX_EPOCH_RETRIES {
            let snap = self.snapshot();
            let plan = {
                let _span = Span::enter(tb, Stage::Plan);
                self.plan_on(&snap.graph, req)?
            };
            let start = Instant::now();
            let key = Self::key(snap.epoch, &plan);
            let hit = {
                let _span = Span::enter(tb, Stage::CacheLookup);
                self.cache.get(&key)
            };
            if let Some(hit) = hit {
                return Ok(self.respond(&plan, &hit, true, start));
            }
            match self.compute_traced(&snap, &plan, tb) {
                Ok(answer) => {
                    self.cache.insert(key, answer.clone());
                    return Ok(self.respond(&plan, &answer, false, start));
                }
                Err(Stale) => continue,
            }
        }
        Err(Fail::Error(
            "graph is being updated faster than this query can retry".into(),
        ))
    }

    fn answer(&self, req: &QueryRequest) -> Result<QueryResponse, Fail> {
        self.answer_traced(req, &mut TraceBuilder::new())
    }

    /// Answer one query (admission → plan → cache → compute).
    pub fn execute(&self, req: &QueryRequest) -> Result<QueryResponse, String> {
        let mut tb = TraceBuilder::new();
        let out = self.execute_traced(req, &mut tb);
        self.record_trace(tb);
        out
    }

    /// [`QueryEngine::execute`] with caller-supplied stage tracing: the
    /// server's dispatch loop uses this to add its own `parse`/`serialize`
    /// stages before pushing the trace via [`QueryEngine::record_trace`].
    /// Failures are counted under the right outcome label here.
    pub fn execute_traced(
        &self,
        req: &QueryRequest,
        tb: &mut TraceBuilder,
    ) -> Result<QueryResponse, String> {
        tb.set_workload(ObsWorkload::St.label());
        tb.set_pair(req.s as u64, req.t as u64);
        let res = (|| {
            let _guard = {
                let _span = Span::enter(tb, Stage::Admission);
                self.admit()?
            };
            self.answer_traced(req, tb)
        })();
        match res {
            Ok(resp) => {
                tb.set_outcome(true, resp.cached);
                Ok(resp)
            }
            Err(f) => {
                tb.set_outcome(false, false);
                Err(self.fail(ObsWorkload::St, f))
            }
        }
    }

    /// Push a finished trace into the engine's ring of recent query traces.
    pub fn record_trace(&self, tb: TraceBuilder) {
        self.obs.traces.push(tb.finish());
    }

    /// Answer one top-k reliability search (admission → plan → cache →
    /// parallel sharded compute). The answer runs entirely on the
    /// snapshot's sampler, so it is thread-count invariant and keyed by
    /// the snapshot's epoch — an `update`/`reload` makes it stale exactly
    /// like an s-t answer.
    pub fn execute_topk(&self, req: &TopKRequest) -> Result<TopKResponse, String> {
        let mut tb = TraceBuilder::new();
        let out = self.execute_topk_traced(req, &mut tb);
        self.record_trace(tb);
        out
    }

    /// [`QueryEngine::execute_topk`] with caller-supplied stage tracing
    /// (see [`QueryEngine::execute_traced`]).
    pub fn execute_topk_traced(
        &self,
        req: &TopKRequest,
        tb: &mut TraceBuilder,
    ) -> Result<TopKResponse, String> {
        tb.set_workload(ObsWorkload::TopK.label());
        tb.set_pair(req.s as u64, 0);
        match self.topk_inner(req, tb) {
            Ok(resp) => {
                tb.set_outcome(true, resp.cached);
                Ok(resp)
            }
            Err(f) => {
                tb.set_outcome(false, false);
                Err(self.fail(ObsWorkload::TopK, f))
            }
        }
    }

    fn topk_inner(&self, req: &TopKRequest, tb: &mut TraceBuilder) -> Result<TopKResponse, Fail> {
        let _guard = {
            let _span = Span::enter(tb, Stage::Admission);
            self.admit()?
        };
        let snap = self.snapshot();
        let start = Instant::now();
        let (k, samples, confidence, seed) = {
            let _span = Span::enter(tb, Stage::Plan);
            if !snap.graph.contains_node(NodeId(req.s)) {
                return Err(Fail::Error(format!(
                    "source node {} out of range (graph has {} nodes)",
                    req.s,
                    snap.graph.num_nodes()
                )));
            }
            let k = req.k.unwrap_or(self.config.default_top_k);
            if k == 0 {
                return Err(Fail::Error("k must be positive".into()));
            }
            let (samples, confidence) =
                self.resolve_budget(req.samples, req.eps, req.confidence, req.time_budget_ms)?;
            (
                k,
                samples,
                confidence,
                req.seed.unwrap_or(self.config.default_seed),
            )
        };
        let key = QueryKey {
            workload: WorkloadKind::TopK { k },
            epoch: snap.epoch,
            s: req.s,
            t: 0,
            kind: EstimatorKind::Mc,
            samples,
            seed,
            eps_bits: req.eps.map(f64::to_bits),
            confidence_bits: Some(confidence.to_bits()),
            time_budget_ms: req.time_budget_ms,
        };
        let hit = {
            let _span = Span::enter(tb, Stage::CacheLookup);
            self.cache.get(&key)
        };
        if let Some(hit) = hit {
            return Ok(self.respond_topk(req.s, k, &hit, true, start));
        }
        let budget = SampleBudget::assemble(samples, req.eps, confidence, req.time_budget_ms);
        let result = self.sample_span(tb, || {
            snap.sampler
                .top_k_targets_with(NodeId(req.s), k, &budget, seed)
        });
        let answer = CachedAnswer {
            reliability: result.scores.last().map_or(0.0, |ts| ts.reliability),
            samples: result.samples,
            estimator: "MC",
            stop_reason: result.stop_reason,
            half_width: result.half_width,
            variance: None,
            targets: Some(
                result
                    .scores
                    .iter()
                    .map(|ts| (ts.node.0, ts.reliability))
                    .collect(),
            ),
            upgrades: None,
        };
        self.cache.insert(key, answer.clone());
        Ok(self.respond_topk(req.s, k, &answer, false, start))
    }

    /// Answer one distance-constrained reliability query (admission →
    /// plan → cache → parallel sharded compute), with the same epoch and
    /// budget cache-key semantics as `execute`.
    pub fn execute_dquery(
        &self,
        req: &DistanceQueryRequest,
    ) -> Result<DistanceQueryResponse, String> {
        let mut tb = TraceBuilder::new();
        let out = self.execute_dquery_traced(req, &mut tb);
        self.record_trace(tb);
        out
    }

    /// [`QueryEngine::execute_dquery`] with caller-supplied stage tracing
    /// (see [`QueryEngine::execute_traced`]).
    pub fn execute_dquery_traced(
        &self,
        req: &DistanceQueryRequest,
        tb: &mut TraceBuilder,
    ) -> Result<DistanceQueryResponse, String> {
        tb.set_workload(ObsWorkload::Distance.label());
        tb.set_pair(req.s as u64, req.t as u64);
        match self.dquery_inner(req, tb) {
            Ok(resp) => {
                tb.set_outcome(true, resp.cached);
                Ok(resp)
            }
            Err(f) => {
                tb.set_outcome(false, false);
                Err(self.fail(ObsWorkload::Distance, f))
            }
        }
    }

    fn dquery_inner(
        &self,
        req: &DistanceQueryRequest,
        tb: &mut TraceBuilder,
    ) -> Result<DistanceQueryResponse, Fail> {
        let _guard = {
            let _span = Span::enter(tb, Stage::Admission);
            self.admit()?
        };
        let snap = self.snapshot();
        let start = Instant::now();
        let (samples, confidence, seed) = {
            let _span = Span::enter(tb, Stage::Plan);
            for (what, id) in [("source", req.s), ("target", req.t)] {
                if !snap.graph.contains_node(NodeId(id)) {
                    return Err(Fail::Error(format!(
                        "{what} node {id} out of range (graph has {} nodes)",
                        snap.graph.num_nodes()
                    )));
                }
            }
            let (samples, confidence) =
                self.resolve_budget(req.samples, req.eps, req.confidence, req.time_budget_ms)?;
            (
                samples,
                confidence,
                req.seed.unwrap_or(self.config.default_seed),
            )
        };
        let key = QueryKey {
            workload: WorkloadKind::Distance { d: req.d },
            epoch: snap.epoch,
            s: req.s,
            t: req.t,
            kind: EstimatorKind::Mc,
            samples,
            seed,
            eps_bits: req.eps.map(f64::to_bits),
            confidence_bits: Some(confidence.to_bits()),
            time_budget_ms: req.time_budget_ms,
        };
        let hit = {
            let _span = Span::enter(tb, Stage::CacheLookup);
            self.cache.get(&key)
        };
        if let Some(hit) = hit {
            return Ok(self.respond_dquery(req, &hit, true, start));
        }
        let budget = SampleBudget::assemble(samples, req.eps, confidence, req.time_budget_ms);
        let est = self.sample_span(tb, || {
            snap.sampler.estimate_distance_constrained_with(
                NodeId(req.s),
                NodeId(req.t),
                req.d,
                &budget,
                seed,
            )
        });
        let answer = CachedAnswer {
            reliability: est.reliability,
            samples: est.samples,
            estimator: "MC",
            stop_reason: est.stop_reason,
            half_width: est.half_width,
            variance: est.variance,
            targets: None,
            upgrades: None,
        };
        self.cache.insert(key, answer.clone());
        Ok(self.respond_dquery(req, &answer, false, start))
    }

    /// Answer one reliability-maximization request: greedily pick the
    /// `k` edge upgrades (probability boosts to `boost`) that maximize
    /// `R(s, t)`, scoring candidates by marginal gain on copy-on-write
    /// snapshots of the served graph (see [`relcomp_core::maximize`]).
    ///
    /// Report-only answers share the epoch/budget cache-key semantics of
    /// every other workload. `apply` requests additionally commit the
    /// chosen boosts through [`QueryEngine::apply_updates`] — the same
    /// write path as the `update` verb, bumping the epoch and migrating
    /// resident estimators — and are never cached (their answer is tied
    /// to the epoch they retired).
    pub fn execute_maximize(&self, req: &MaximizeRequest) -> Result<MaximizeResponse, String> {
        let mut tb = TraceBuilder::new();
        let out = self.execute_maximize_traced(req, &mut tb);
        self.record_trace(tb);
        out
    }

    /// [`QueryEngine::execute_maximize`] with caller-supplied stage
    /// tracing (see [`QueryEngine::execute_traced`]).
    pub fn execute_maximize_traced(
        &self,
        req: &MaximizeRequest,
        tb: &mut TraceBuilder,
    ) -> Result<MaximizeResponse, String> {
        tb.set_workload(ObsWorkload::Maximize.label());
        tb.set_pair(req.s as u64, req.t as u64);
        match self.maximize_inner(req, tb) {
            Ok(resp) => {
                tb.set_outcome(true, resp.cached);
                Ok(resp)
            }
            Err(f) => {
                tb.set_outcome(false, false);
                Err(self.fail(ObsWorkload::Maximize, f))
            }
        }
    }

    fn maximize_inner(
        &self,
        req: &MaximizeRequest,
        tb: &mut TraceBuilder,
    ) -> Result<MaximizeResponse, Fail> {
        let _guard = {
            let _span = Span::enter(tb, Stage::Admission);
            self.admit()?
        };
        let snap = self.snapshot();
        let start = Instant::now();
        let (k, boost, candidates, samples, confidence, seed) = {
            let _span = Span::enter(tb, Stage::Plan);
            for (what, id) in [("source", req.s), ("target", req.t)] {
                if !snap.graph.contains_node(NodeId(id)) {
                    return Err(Fail::Error(format!(
                        "{what} node {id} out of range (graph has {} nodes)",
                        snap.graph.num_nodes()
                    )));
                }
            }
            let k = req.k.unwrap_or(self.config.default_maximize_k);
            if k == 0 {
                return Err(Fail::Error("k must be positive".into()));
            }
            let boost = req.boost.unwrap_or(1.0);
            if !(boost > 0.0 && boost <= 1.0) {
                return Err(Fail::Error(format!("boost {boost} out of range (0, 1]")));
            }
            let candidates = req
                .candidates
                .unwrap_or(self.config.max_maximize_candidates);
            if candidates == 0 {
                return Err(Fail::Error("candidates must be positive".into()));
            }
            if candidates > self.config.max_maximize_candidates {
                return Err(Fail::Rejected(format!(
                    "candidate pool {candidates} exceeds the admission limit {}",
                    self.config.max_maximize_candidates
                )));
            }
            let (samples, confidence) =
                self.resolve_budget(req.samples, req.eps, req.confidence, req.time_budget_ms)?;
            (
                k,
                boost,
                candidates,
                samples,
                confidence,
                req.seed.unwrap_or(self.config.default_seed),
            )
        };
        let key = QueryKey {
            workload: WorkloadKind::Maximize {
                k,
                boost_bits: boost.to_bits(),
                candidates,
            },
            epoch: snap.epoch,
            s: req.s,
            t: req.t,
            kind: EstimatorKind::Mc,
            samples,
            seed,
            eps_bits: req.eps.map(f64::to_bits),
            confidence_bits: Some(confidence.to_bits()),
            time_budget_ms: req.time_budget_ms,
        };
        if !req.apply {
            let hit = {
                let _span = Span::enter(tb, Stage::CacheLookup);
                self.cache.get(&key)
            };
            if let Some(hit) = hit {
                return Ok(self.respond_maximize(req, k, &hit, true, None, start));
            }
        }
        let budget = SampleBudget::assemble(samples, req.eps, confidence, req.time_budget_ms);
        let mut opts = MaximizeOptions::new(k, boost, budget);
        opts.threads = self.threads;
        opts.seed = seed;
        opts.max_candidates = candidates;
        let result = self
            .sample_span(tb, || {
                relcomp_core::maximize::maximize(&snap.graph, NodeId(req.s), NodeId(req.t), &opts)
            })
            .map_err(|e| Fail::Error(e.to_string()))?;
        let answer = CachedAnswer {
            reliability: result.reliability,
            samples: result.samples,
            estimator: "MC",
            stop_reason: StopReason::FixedK,
            half_width: None,
            variance: None,
            targets: None,
            upgrades: Some(MaximizeAnswer {
                base_reliability: result.base_reliability,
                gain: result.gain,
                chosen: result
                    .chosen
                    .iter()
                    .map(|c| UpgradeRow {
                        s: c.from.0,
                        t: c.to.0,
                        old_prob: c.old_prob,
                        new_prob: c.new_prob,
                        gain: c.gain,
                        reliability: c.reliability,
                    })
                    .collect(),
                candidates: result.candidates,
                evaluations: result.evaluations,
            }),
        };
        let applied_epoch = if req.apply {
            let updates: Vec<EdgeProbUpdate> = result
                .chosen
                .iter()
                .map(|c| EdgeProbUpdate {
                    s: c.from.0,
                    t: c.to.0,
                    prob: c.new_prob,
                })
                .collect();
            if updates.is_empty() {
                // Nothing to upgrade (e.g. every candidate already at
                // the boost): an apply run with no picks commits nothing.
                None
            } else {
                let committed = self.apply_updates(&updates).map_err(Fail::Error)?;
                Some(committed.epoch)
            }
        } else {
            self.cache.insert(key, answer.clone());
            None
        };
        Ok(self.respond_maximize(req, k, &answer, false, applied_epoch, start))
    }

    /// Answer a batch in one pass, amortizing MC world sampling across
    /// queries that share `(s, samples, seed)`. Results keep input order;
    /// per-query failures do not fail the batch.
    pub fn execute_batch(&self, reqs: &[QueryRequest]) -> Result<BatchResults, String> {
        let _guard = match self.admit() {
            Ok(g) => g,
            Err(f) => return Err(self.fail(ObsWorkload::St, f)),
        };
        if reqs.len() > self.config.max_batch {
            return Err(self.fail(
                ObsWorkload::St,
                Fail::Rejected(format!(
                    "batch of {} exceeds the admission limit {}",
                    reqs.len(),
                    self.config.max_batch
                )),
            ));
        }
        let snap = self.snapshot();
        let start = Instant::now();
        let mut out: Vec<Option<Result<QueryResponse, String>>> = vec![None; reqs.len()];
        // (group key -> indices of cache-missing MC queries to batch).
        let mut mc_groups: HashMap<(u32, usize, u64), Vec<usize>> = HashMap::new();
        let mut plans: Vec<Option<PlannedQuery>> = vec![None; reqs.len()];

        for (i, req) in reqs.iter().enumerate() {
            match self.plan_on(&snap.graph, req) {
                Err(e) => out[i] = Some(Err(self.fail(ObsWorkload::St, e))),
                Ok(plan) => {
                    let key = Self::key(snap.epoch, &plan);
                    if let Some(hit) = self.cache.get(&key) {
                        out[i] = Some(Ok(self.respond(&plan, &hit, true, start)));
                    } else if plan.kind == EstimatorKind::Mc && plan.is_fixed() {
                        // Only fixed budgets share a world stream: an
                        // adaptive query's stopping point is its own.
                        mc_groups
                            .entry((plan.s.0, plan.samples, plan.seed))
                            .or_default()
                            .push(i);
                        plans[i] = Some(plan);
                    } else {
                        match self.compute(&snap, &plan) {
                            Ok(answer) => {
                                self.cache.insert(key, answer.clone());
                                out[i] = Some(Ok(self.respond(&plan, &answer, false, start)));
                            }
                            // Raced an epoch swap: answer this query alone
                            // at the new epoch (re-planned and re-keyed).
                            Err(Stale) => {
                                out[i] = Some(
                                    self.answer(req).map_err(|f| self.fail(ObsWorkload::St, f)),
                                )
                            }
                        }
                    }
                }
            }
        }

        // The sampler snapshot pins the batch's epoch: groups computed
        // here stay consistent with the keys taken above even if an
        // update lands mid-batch.
        for ((s, samples, seed), indices) in mc_groups {
            let targets: Vec<NodeId> = indices
                .iter()
                .map(|&i| plans[i].expect("planned").t)
                .collect();
            let estimates = snap
                .sampler
                .estimate_mc_multi(NodeId(s), &targets, samples, seed);
            for (&i, est) in indices.iter().zip(&estimates) {
                let plan = plans[i].expect("planned");
                // The shared world stream reports its CI at the default
                // confidence; restate it at the plan's, so a grouped
                // answer matches what the single-query path would have
                // cached under the same key.
                let est = if plan.confidence == DEFAULT_CONFIDENCE {
                    *est
                } else {
                    restate_bernoulli_confidence(*est, plan.confidence)
                };
                let answer = CachedAnswer {
                    reliability: est.reliability,
                    samples: est.samples,
                    estimator: "MC",
                    stop_reason: est.stop_reason,
                    half_width: est.half_width,
                    variance: est.variance,
                    targets: None,
                    upgrades: None,
                };
                self.cache
                    .insert(Self::key(snap.epoch, &plan), answer.clone());
                out[i] = Some(Ok(self.respond(&plan, &answer, false, start)));
            }
        }

        Ok(out
            .into_iter()
            .map(|r| r.expect("every slot answered"))
            .collect())
    }

    /// Apply a batch of edge-probability updates: snapshot the next
    /// epoch's graph (topology shared, probabilities copy-on-write),
    /// migrate every resident estimator via [`Estimator::apply_updates`]
    /// (evicting any that cannot migrate), swap the sampler, and bump
    /// the epoch. All-or-nothing: an unknown edge or invalid probability
    /// rejects the whole batch with no state change.
    ///
    /// Existing cache entries keep their old epoch in the key and simply
    /// stop matching — stale answers age out of the LRU naturally.
    ///
    /// Updates serialize against in-flight resident queries: migration
    /// takes each resident's mutex under the state write lock, so the
    /// swap waits for the slowest resident query currently computing
    /// (bounded by the admission `max_samples` knob) and new queries
    /// wait for the swap. That pause is what buys the guarantee that an
    /// epoch's cache entries are only ever computed from that epoch's
    /// index — migrating outside the lock would let a new-epoch key be
    /// answered by a not-yet-migrated index.
    pub fn apply_updates(&self, batch: &[EdgeProbUpdate]) -> Result<UpdateResponse, String> {
        if batch.is_empty() {
            return Err("update batch is empty".into());
        }
        let mut state = self.state.write().expect("engine state poisoned");
        let mut resolved = Vec::with_capacity(batch.len());
        for u in batch {
            let edge = state
                .graph
                .find_edge(NodeId(u.s), NodeId(u.t))
                .ok_or_else(|| {
                    format!(
                        "no edge {} -> {} in the served graph (updates change \
                         existing edges; use `reload` for topology changes)",
                        u.s, u.t
                    )
                })?;
            resolved.push(EdgeUpdate::new(edge, u.prob).map_err(|e| e.to_string())?);
        }
        let new_graph = state.graph.with_updated_probs(&resolved);
        let new_epoch = state.epoch + 1;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.default_seed ^ new_epoch);
        let mut migrated = Vec::new();
        state.resident.retain(|kind, cell| {
            let mut guard = cell.lock().expect("resident estimator poisoned");
            let (cell_epoch, est) = &mut *guard;
            let outcome = est.apply_updates(&new_graph, &resolved, &mut rng);
            let keep = !matches!(outcome, UpdateOutcome::Rebuild);
            if keep {
                *cell_epoch = new_epoch;
            }
            migrated.push(MigratedResident {
                estimator: kind.display_name().to_owned(),
                mode: if keep { outcome.label() } else { "evicted" }.to_owned(),
                touched: match outcome {
                    UpdateOutcome::Incremental { touched } => touched,
                    _ => 0,
                },
            });
            keep
        });
        migrated.sort_by(|a, b| a.estimator.cmp(&b.estimator));
        state.sampler = Arc::new(ParallelSampler::new(Arc::clone(&new_graph), self.threads));
        state.graph = new_graph;
        state.epoch = new_epoch;
        self.obs.note_update();
        Ok(UpdateResponse {
            epoch: new_epoch,
            edges_updated: resolved.len(),
            migrated,
        })
    }

    /// Replace the served graph wholesale (the rebuild path for edge
    /// inserts/deletes): every resident estimator is evicted — edge ids
    /// are not comparable across a rebuild — and the epoch is bumped.
    pub fn reload_graph(&self, graph: Arc<UncertainGraph>) -> ReloadResponse {
        let mut state = self.state.write().expect("engine state poisoned");
        state.epoch += 1;
        state.resident.clear();
        state.sampler = Arc::new(ParallelSampler::new(Arc::clone(&graph), self.threads));
        state.graph = graph;
        self.obs.note_update();
        ReloadResponse {
            epoch: state.epoch,
            nodes: state.graph.num_nodes(),
            edges: state.graph.num_edges(),
        }
    }

    /// Gauges that are engine state rather than registry counters:
    /// `(epoch, nodes, edges, resident_estimators, resident_bytes)`.
    fn state_gauges(&self) -> (u64, usize, usize, usize, usize) {
        // Copy the registry's cell handles out of the state lock before
        // touching any estimator mutex: a long-running resident query
        // must be able to delay this stats answer, but never a queued
        // update waiting behind our read lock.
        let (epoch, nodes, edges, cells) = {
            let state = self.state.read().expect("engine state poisoned");
            (
                state.epoch,
                state.graph.num_nodes(),
                state.graph.num_edges(),
                state.resident.values().map(Arc::clone).collect::<Vec<_>>(),
            )
        };
        let resident_bytes = cells
            .iter()
            .map(|cell| {
                cell.lock()
                    .expect("resident estimator poisoned")
                    .1
                    .resident_bytes()
            })
            .sum();
        (epoch, nodes, edges, cells.len(), resident_bytes)
    }

    /// Current counters — a wire-compatible view over the metrics registry
    /// (plus cache, graph, and process-wide sampler state).
    pub fn stats(&self) -> StatsResponse {
        let (epoch, nodes, edges, resident_estimators, resident_bytes) = self.state_gauges();
        // Process-wide sampling-path counters: how many worlds went
        // through the packed 64-world kernel vs one-at-a-time BFS.
        let (packed_samples, scalar_samples) = relcomp_core::packed::sample_counts();
        let last_load = self.last_load();
        StatsResponse {
            queries: self.obs.queries_total(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.cache.len(),
            rejected: self.obs.rejected_total(),
            threads: self.threads,
            epoch,
            updates: self.obs.updates(),
            nodes,
            edges,
            resident_estimators,
            resident_bytes,
            packed_samples,
            scalar_samples,
            load_path: match last_load {
                Some((true, _)) => "mmap".to_string(),
                Some((false, _)) => "heap".to_string(),
                None => String::new(),
            },
            load_micros: last_load.map_or(0, |(_, micros)| micros),
            uptime_micros: self.started.elapsed().as_micros() as u64,
        }
    }

    /// The last `n` per-query stage traces, newest first.
    pub fn traces(&self, n: usize) -> Vec<QueryTrace> {
        self.obs.traces.recent(n)
    }

    /// The engine's metrics registry (counters, latency histograms, trace
    /// ring) — benches and tests read histograms from it directly.
    pub fn registry(&self) -> &Registry {
        &self.obs
    }

    /// Everything observable about this engine as one exposition-ready
    /// snapshot: registry counters per `(workload, outcome)` and estimator,
    /// per-workload latency histograms (plus a merged `workload="all"`
    /// view), engine/cache gauges, and the process-wide sampler probes.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::default();
        for w in ObsWorkload::ALL {
            for o in Outcome::ALL {
                m.counter(
                    "relcomp_queries_total",
                    vec![
                        ("workload", w.label().into()),
                        ("outcome", o.label().into()),
                    ],
                    self.obs.count(w, o),
                );
            }
        }
        for label in relcomp_obs::ESTIMATOR_LABELS {
            let n = self.obs.estimator_count(label);
            if n > 0 {
                m.counter(
                    "relcomp_queries_by_estimator_total",
                    vec![("estimator", label.into())],
                    n,
                );
            }
        }
        m.counter("relcomp_cache_hits_total", vec![], self.cache.hits());
        m.counter("relcomp_cache_misses_total", vec![], self.cache.misses());
        m.counter("relcomp_updates_total", vec![], self.obs.updates());

        let (epoch, nodes, edges, resident_estimators, resident_bytes) = self.state_gauges();
        m.gauge("relcomp_cache_entries", vec![], self.cache.len() as u64);
        m.gauge(
            "relcomp_inflight",
            vec![],
            self.inflight.load(Ordering::Relaxed) as u64,
        );
        m.gauge("relcomp_epoch", vec![], epoch);
        m.gauge("relcomp_threads", vec![], self.threads as u64);
        m.gauge("relcomp_graph_nodes", vec![], nodes as u64);
        m.gauge("relcomp_graph_edges", vec![], edges as u64);
        m.gauge(
            "relcomp_resident_estimators",
            vec![],
            resident_estimators as u64,
        );
        m.gauge("relcomp_resident_bytes", vec![], resident_bytes as u64);
        m.gauge(
            "relcomp_uptime_micros",
            vec![],
            self.started.elapsed().as_micros() as u64,
        );
        if let Some((mmapped, micros)) = self.last_load() {
            let path = if mmapped { "mmap" } else { "heap" };
            m.gauge(
                "relcomp_graph_load_micros",
                vec![("path", path.into())],
                micros,
            );
        }

        for w in ObsWorkload::ALL {
            m.histogram(
                "relcomp_query_latency_micros",
                vec![("workload", w.label().into())],
                &self.obs.latency(w).snapshot(),
            );
        }
        // The merged view doubles as a live check of histogram mergeability.
        m.histogram(
            "relcomp_query_latency_micros",
            vec![("workload", "all".into())],
            &self.obs.merged_latency(),
        );

        let sampler = relcomp_obs::sampler_snapshot();
        m.counter(
            "relcomp_samples_total",
            vec![("path", "packed".into())],
            sampler.packed_samples,
        );
        m.counter(
            "relcomp_samples_total",
            vec![("path", "scalar".into())],
            sampler.scalar_samples,
        );
        for (reason, n) in &sampler.sessions {
            m.counter(
                "relcomp_sessions_total",
                vec![("stop_reason", (*reason).into())],
                *n,
            );
        }
        m.counter(
            "relcomp_session_batches_total",
            vec![],
            sampler.session_batches,
        );
        m.counter(
            "relcomp_session_samples_total",
            vec![],
            sampler.session_samples,
        );
        m.counter(
            "relcomp_sampling_micros_total",
            vec![],
            sampler.session_micros,
        );
        m.counter(
            "relcomp_convergence_nanos_total",
            vec![],
            sampler.convergence_nanos,
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_core::exact::exact_reliability;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        Arc::new(b.build())
    }

    fn engine() -> QueryEngine {
        QueryEngine::new(
            diamond(),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        )
    }

    fn q(s: u32, t: u32) -> QueryRequest {
        QueryRequest {
            estimator: Some("mc".into()),
            samples: Some(4000),
            seed: Some(7),
            ..QueryRequest::new(s, t)
        }
    }

    fn upd(s: u32, t: u32, prob: f64) -> EdgeProbUpdate {
        EdgeProbUpdate { s, t, prob }
    }

    #[test]
    fn maximize_reports_caches_and_applies() {
        let e = engine();
        let req = MaximizeRequest {
            k: Some(2),
            samples: Some(4000),
            seed: Some(7),
            ..MaximizeRequest::new(0, 3)
        };
        let first = e.execute_maximize(&req).unwrap();
        assert!(!first.cached);
        assert_eq!(first.k, 2);
        assert_eq!(first.chosen.len(), 2);
        assert!(first.gain > 0.0);
        assert!((first.reliability - first.base_reliability - first.gain).abs() < 1e-12);
        assert!(first.applied_epoch.is_none());
        // Report-only answers cache like any read.
        let second = e.execute_maximize(&req).unwrap();
        assert!(second.cached);
        assert_eq!(first.reliability.to_bits(), second.reliability.to_bits());
        assert_eq!(first.chosen.len(), second.chosen.len());
        // `apply` bypasses the cache, commits through the update path,
        // and bumps the epoch.
        let applied = e
            .execute_maximize(&MaximizeRequest {
                apply: true,
                ..req.clone()
            })
            .unwrap();
        assert!(!applied.cached);
        assert_eq!(applied.applied_epoch, Some(1));
        assert_eq!(e.stats().epoch, 1);
        // The committed boosts are live: the chosen edges now carry
        // their new probabilities.
        let g = e.graph();
        for row in &applied.chosen {
            let edge = g.find_edge(NodeId(row.s), NodeId(row.t)).unwrap();
            assert_eq!(g.prob(edge).value().to_bits(), row.new_prob.to_bits());
        }
        assert_eq!(e.registry().count(ObsWorkload::Maximize, Outcome::Hit), 1);
        assert_eq!(e.registry().count(ObsWorkload::Maximize, Outcome::Miss), 2);
    }

    #[test]
    fn maximize_validates_inputs() {
        let e = engine();
        let bad_k = MaximizeRequest {
            k: Some(0),
            ..MaximizeRequest::new(0, 3)
        };
        assert!(e.execute_maximize(&bad_k).unwrap_err().contains("k must"));
        let bad_boost = MaximizeRequest {
            boost: Some(1.5),
            ..MaximizeRequest::new(0, 3)
        };
        assert!(e
            .execute_maximize(&bad_boost)
            .unwrap_err()
            .contains("boost"));
        let bad_node = MaximizeRequest::new(0, 99);
        assert!(e
            .execute_maximize(&bad_node)
            .unwrap_err()
            .contains("out of range"));
        let too_many = MaximizeRequest {
            candidates: Some(1_000_000),
            ..MaximizeRequest::new(0, 3)
        };
        assert!(e
            .execute_maximize(&too_many)
            .unwrap_err()
            .contains("admission limit"));
        assert_eq!(e.registry().count(ObsWorkload::Maximize, Outcome::Error), 3);
        assert_eq!(
            e.registry().count(ObsWorkload::Maximize, Outcome::Rejected),
            1
        );
    }

    #[test]
    fn repeated_query_hits_cache_with_identical_answer() {
        let e = engine();
        let first = e.execute(&q(0, 3)).unwrap();
        assert!(!first.cached);
        let second = e.execute(&q(0, 3)).unwrap();
        assert!(second.cached);
        assert_eq!(first.reliability.to_bits(), second.reliability.to_bits());
        assert_eq!(e.stats().cache_hits, 1);
        assert!(e.stats().queries >= 2);
    }

    #[test]
    fn engine_answers_match_exact_roughly() {
        let e = engine();
        let exact = exact_reliability(&e.graph(), NodeId(0), NodeId(3));
        let mut req = q(0, 3);
        req.samples = Some(60_000);
        let resp = e.execute(&req).unwrap();
        assert!((resp.reliability - exact).abs() < 0.02);
    }

    #[test]
    fn thread_count_does_not_change_engine_answer() {
        let answers: Vec<u64> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let e = QueryEngine::new(
                    diamond(),
                    EngineConfig {
                        threads,
                        ..Default::default()
                    },
                );
                e.execute(&q(0, 3)).unwrap().reliability.to_bits()
            })
            .collect();
        assert_eq!(answers[0], answers[1]);
    }

    #[test]
    fn single_query_and_batch_of_one_share_cache_entries() {
        // A batch group of one must reproduce the single-query stream, so
        // the cache stays path-independent.
        let e1 = engine();
        let single = e1.execute(&q(0, 3)).unwrap();
        let e2 = engine();
        let batch = e2.execute_batch(&[q(0, 3)]).unwrap();
        let batched = batch[0].as_ref().unwrap();
        assert_eq!(single.reliability.to_bits(), batched.reliability.to_bits());
    }

    #[test]
    fn batch_amortizes_and_answers_every_query() {
        let e = engine();
        let reqs = vec![q(0, 1), q(0, 2), q(0, 3), q(1, 3)];
        let results = e.execute_batch(&reqs).unwrap();
        assert_eq!(results.len(), 4);
        for (req, res) in reqs.iter().zip(&results) {
            let r = res.as_ref().unwrap();
            assert_eq!((r.s, r.t), (req.s, req.t));
            assert!((0.0..=1.0).contains(&r.reliability));
        }
        // Batch answers are now cached for singles.
        assert!(e.execute(&q(0, 2)).unwrap().cached);
    }

    #[test]
    fn batch_with_bad_query_still_answers_the_rest() {
        let e = engine();
        let results = e.execute_batch(&[q(0, 3), q(0, 99)]).unwrap();
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn planning_validates_and_defaults() {
        let e = engine();
        assert!(e.plan(&QueryRequest::new(0, 99)).is_err());
        assert!(e
            .plan(&QueryRequest {
                estimator: Some("mcmc".into()),
                ..QueryRequest::new(0, 1)
            })
            .is_err());
        let plan = e.plan(&QueryRequest::new(0, 1)).unwrap();
        assert_eq!(plan.kind, EstimatorKind::Mc);
        assert_eq!(plan.samples, e.config().default_samples);
        assert_eq!(plan.seed, e.config().default_seed);
        // auto goes through Fig. 18 under the default (Larger, Higher,
        // Faster) policy → LP+.
        let auto = e
            .plan(&QueryRequest {
                estimator: Some("auto".into()),
                ..QueryRequest::new(0, 1)
            })
            .unwrap();
        assert_eq!(auto.kind, EstimatorKind::LpPlus);
    }

    #[test]
    fn admission_rejects_oversized_budgets_and_batches() {
        let e = QueryEngine::new(
            diamond(),
            EngineConfig {
                max_samples: 100,
                max_batch: 2,
                ..Default::default()
            },
        );
        let mut req = QueryRequest::new(0, 1);
        req.samples = Some(101);
        assert!(e.execute(&req).unwrap_err().contains("admission"));
        let batch = vec![QueryRequest::new(0, 1); 3];
        assert!(e.execute_batch(&batch).unwrap_err().contains("admission"));
        assert_eq!(
            e.stats().rejected,
            2,
            "admission rejections must show up in stats"
        );
    }

    #[test]
    fn resident_estimators_answer_and_cache() {
        let e = engine();
        for name in ["probtree", "lp+", "rhh", "rss"] {
            let req = QueryRequest {
                estimator: Some(name.into()),
                samples: Some(2000),
                ..QueryRequest::new(0, 3)
            };
            let first = e.execute(&req).unwrap();
            assert!((0.0..=1.0).contains(&first.reliability), "{name}");
            let second = e.execute(&req).unwrap();
            assert!(second.cached, "{name} should cache");
            assert_eq!(first.reliability.to_bits(), second.reliability.to_bits());
        }
        let stats = e.stats();
        assert_eq!(stats.resident_estimators, 4);
        assert!(stats.resident_bytes > 0, "indexes occupy memory");
    }

    #[test]
    fn adaptive_query_stops_early_and_reports_stop_reason() {
        let e = engine();
        // R(0, 3) ≈ 0.41 on the diamond: a loose 10% target converges
        // long before the cap.
        let req = QueryRequest {
            estimator: Some("mc".into()),
            eps: Some(0.1),
            samples: Some(100_000),
            seed: Some(3),
            ..QueryRequest::new(0, 3)
        };
        let resp = e.execute(&req).unwrap();
        assert_eq!(resp.stop_reason, "converged");
        assert!(
            resp.samples < 100_000,
            "adaptive must stop early, used {}",
            resp.samples
        );
        let hw = resp.half_width.expect("bernoulli sampling reports a CI");
        assert!(hw <= 0.1 * resp.reliability + 1e-12, "hw {hw}");
        // The repeat replays from the cache, budget and all.
        let again = e.execute(&req).unwrap();
        assert!(again.cached);
        assert_eq!(again.samples, resp.samples);
        assert_eq!(again.stop_reason, "converged");
    }

    #[test]
    fn adaptive_and_fixed_budgets_cache_separately() {
        let e = engine();
        let fixed = QueryRequest {
            estimator: Some("mc".into()),
            samples: Some(2048),
            seed: Some(7),
            ..QueryRequest::new(0, 3)
        };
        let adaptive = QueryRequest {
            eps: Some(1e-9), // never converges: runs to the cap
            ..fixed.clone()
        };
        let a = e.execute(&fixed).unwrap();
        let b = e.execute(&adaptive).unwrap();
        assert!(!a.cached && !b.cached, "distinct budgets, distinct keys");
        assert_eq!(a.stop_reason, "fixed_k");
        assert_eq!(b.stop_reason, "max_samples");
        assert_eq!(b.samples, 2048, "cap respected");
    }

    #[test]
    fn adaptive_respects_the_sample_cap() {
        let e = engine();
        let req = QueryRequest {
            estimator: Some("mc".into()),
            eps: Some(1e-9),
            confidence: Some(0.999),
            samples: Some(1500),
            seed: Some(11),
            ..QueryRequest::new(0, 3)
        };
        let resp = e.execute(&req).unwrap();
        assert!(resp.samples <= 1500, "cap exceeded: {}", resp.samples);
        assert_eq!(resp.stop_reason, "max_samples");
    }

    #[test]
    fn auto_planner_budgets_adaptively() {
        let e = engine();
        // auto + no samples/eps: the planner targets `auto_eps` with the
        // adaptive cap instead of a raw default K.
        let plan = e
            .plan(&QueryRequest {
                estimator: Some("auto".into()),
                ..QueryRequest::new(0, 3)
            })
            .unwrap();
        assert_eq!(plan.eps, Some(e.config().auto_eps));
        assert_eq!(plan.samples, e.config().adaptive_max_samples);
        assert!(!plan.is_fixed());
        // An explicit K keeps auto fixed (paper-table compatibility).
        let fixed = e
            .plan(&QueryRequest {
                estimator: Some("auto".into()),
                samples: Some(1000),
                ..QueryRequest::new(0, 3)
            })
            .unwrap();
        assert!(fixed.is_fixed());
        assert_eq!(fixed.samples, 1000);
    }

    #[test]
    fn adaptive_validation_rejects_nonsense() {
        let e = engine();
        for (req, needle) in [
            (
                QueryRequest {
                    eps: Some(0.0),
                    ..QueryRequest::new(0, 3)
                },
                "eps",
            ),
            (
                QueryRequest {
                    eps: Some(0.1),
                    confidence: Some(1.0),
                    ..QueryRequest::new(0, 3)
                },
                "confidence",
            ),
            (
                QueryRequest {
                    time_budget_ms: Some(0),
                    ..QueryRequest::new(0, 3)
                },
                "time_budget_ms",
            ),
        ] {
            let err = e.execute(&req).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn batch_mixes_fixed_groups_and_adaptive_singles() {
        let e = engine();
        let adaptive = QueryRequest {
            estimator: Some("mc".into()),
            eps: Some(0.1),
            seed: Some(5),
            ..QueryRequest::new(0, 3)
        };
        let results = e
            .execute_batch(&[q(0, 1), q(0, 2), adaptive.clone()])
            .unwrap();
        assert!(results.iter().all(|r| r.is_ok()));
        let r = results[2].as_ref().unwrap();
        assert!(r.stop_reason == "converged" || r.stop_reason == "max_samples");
        // The adaptive answer in a batch caches under its own key and
        // replays for an identical single query.
        let single = e.execute(&adaptive).unwrap();
        assert!(single.cached);
        assert_eq!(single.reliability.to_bits(), r.reliability.to_bits());
    }

    #[test]
    fn topk_executes_caches_and_respects_epoch() {
        let e = engine();
        let req = TopKRequest {
            k: Some(3),
            samples: Some(20_000),
            seed: Some(7),
            ..TopKRequest::new(0)
        };
        let first = e.execute_topk(&req).unwrap();
        assert!(!first.cached);
        assert_eq!(first.k, 3);
        assert_eq!(first.targets.len(), 3);
        assert_eq!(first.stop_reason, "fixed_k");
        // Truth on the diamond: node 2 (0.6) leads.
        assert_eq!(first.targets[0].node, 2);
        let second = e.execute_topk(&req).unwrap();
        assert!(second.cached);
        assert_eq!(second.targets, first.targets);
        // Same budget at a different k is a different computation.
        let other_k = e
            .execute_topk(&TopKRequest {
                k: Some(1),
                ..req.clone()
            })
            .unwrap();
        assert!(!other_k.cached);
        assert_eq!(other_k.targets.len(), 1);
        // An epoch bump invalidates: nearly sever 0 -> 2 and the ranking
        // flips.
        e.apply_updates(&[upd(0, 2, 0.01)]).unwrap();
        let after = e.execute_topk(&req).unwrap();
        assert!(!after.cached, "epoch bump must invalidate topk answers");
        assert_ne!(after.targets[0].node, 2, "ranking must track the update");
    }

    #[test]
    fn topk_adaptive_stops_early_and_certifies_boundary() {
        let e = engine();
        let req = TopKRequest {
            k: Some(2),
            eps: Some(0.1),
            samples: Some(100_000),
            seed: Some(3),
            ..TopKRequest::new(0)
        };
        let resp = e.execute_topk(&req).unwrap();
        assert_eq!(resp.stop_reason, "converged");
        assert!(resp.samples < 100_000, "used {}", resp.samples);
        let hw = resp.half_width.expect("boundary CI");
        let boundary = resp.targets.last().unwrap().reliability;
        assert!(hw <= 0.1 * boundary + 1e-12);
        assert!(e.execute_topk(&req).unwrap().cached);
    }

    #[test]
    fn dquery_executes_caches_and_keys_by_distance() {
        let e = engine();
        let base = DistanceQueryRequest {
            samples: Some(30_000),
            seed: Some(7),
            ..DistanceQueryRequest::new(0, 3, 2)
        };
        let two_hop = e.execute_dquery(&base).unwrap();
        assert!(!two_hop.cached);
        assert_eq!(two_hop.d, 2);
        // No 1-hop path to the far corner of the diamond.
        let one_hop = e
            .execute_dquery(&DistanceQueryRequest {
                samples: base.samples,
                seed: base.seed,
                ..DistanceQueryRequest::new(0, 3, 1)
            })
            .unwrap();
        assert!(!one_hop.cached, "d is part of the cache key");
        assert_eq!(one_hop.reliability, 0.0);
        // R_2 equals the unconstrained truth on the diamond (~0.506).
        let exact = exact_reliability(&e.graph(), NodeId(0), NodeId(3));
        assert!((two_hop.reliability - exact).abs() < 0.02);
        assert!(e.execute_dquery(&base).unwrap().cached);
    }

    #[test]
    fn dquery_adaptive_reports_session_fields_and_invalidates_on_update() {
        let e = engine();
        let req = DistanceQueryRequest {
            eps: Some(0.1),
            samples: Some(100_000),
            seed: Some(5),
            ..DistanceQueryRequest::new(0, 3, 2)
        };
        let resp = e.execute_dquery(&req).unwrap();
        assert_eq!(resp.stop_reason, "converged");
        assert!(resp.samples < 100_000);
        assert!(resp.half_width.is_some() && resp.variance.is_some());
        e.apply_updates(&[upd(1, 3, 0.05), upd(2, 3, 0.05)])
            .unwrap();
        let after = e.execute_dquery(&req).unwrap();
        assert!(!after.cached);
        assert!(
            after.reliability < 0.12,
            "answer {} must track the update",
            after.reliability
        );
    }

    #[test]
    fn extension_workloads_validate_and_admit() {
        let e = QueryEngine::new(
            diamond(),
            EngineConfig {
                max_samples: 100,
                ..Default::default()
            },
        );
        assert!(e
            .execute_topk(&TopKRequest::new(99))
            .unwrap_err()
            .contains("out of range"));
        assert!(e
            .execute_topk(&TopKRequest {
                k: Some(0),
                ..TopKRequest::new(0)
            })
            .unwrap_err()
            .contains("k must be positive"));
        assert!(e
            .execute_topk(&TopKRequest {
                samples: Some(101),
                ..TopKRequest::new(0)
            })
            .unwrap_err()
            .contains("admission"));
        assert!(e
            .execute_dquery(&DistanceQueryRequest::new(0, 99, 2))
            .unwrap_err()
            .contains("out of range"));
        assert!(e
            .execute_dquery(&DistanceQueryRequest {
                eps: Some(0.0),
                ..DistanceQueryRequest::new(0, 3, 2)
            })
            .unwrap_err()
            .contains("eps"));
        assert_eq!(e.stats().rejected, 1, "admission rejections counted");
    }

    #[test]
    fn update_bumps_epoch_and_invalidates_cache() {
        let e = engine();
        let before = e.execute(&q(0, 3)).unwrap();
        assert!(e.execute(&q(0, 3)).unwrap().cached);

        // Throttle 0->1 and 0->2 almost shut: R(0, 3) collapses.
        let resp = e
            .apply_updates(&[upd(0, 1, 0.01), upd(0, 2, 0.01)])
            .unwrap();
        assert_eq!(resp.epoch, 1);
        assert_eq!(resp.edges_updated, 2);
        assert_eq!(e.epoch(), 1);

        let after = e.execute(&q(0, 3)).unwrap();
        assert!(!after.cached, "epoch bump must invalidate the cache");
        let exact = exact_reliability(&e.graph(), NodeId(0), NodeId(3));
        assert!(exact < 0.02, "sanity: updated graph truth {exact}");
        assert!(
            (after.reliability - exact).abs() < 0.02,
            "answer {} must track the new probabilities (exact {exact}), was {}",
            after.reliability,
            before.reliability
        );
        assert_eq!(e.stats().updates, 1);
    }

    #[test]
    fn update_migrates_residents_incrementally() {
        let e = engine();
        // Make ProbTree and LP+ resident.
        for name in ["probtree", "lp+"] {
            let req = QueryRequest {
                estimator: Some(name.into()),
                samples: Some(1000),
                ..QueryRequest::new(0, 3)
            };
            e.execute(&req).unwrap();
        }
        let resp = e.apply_updates(&[upd(1, 3, 0.05)]).unwrap();
        let modes: HashMap<&str, &str> = resp
            .migrated
            .iter()
            .map(|m| (m.estimator.as_str(), m.mode.as_str()))
            .collect();
        assert_eq!(modes.get("ProbTree"), Some(&"incremental"));
        assert_eq!(modes.get("LP+"), Some(&"rebound"));
        // Migrated residents answer for the new graph without a rebuild.
        let exact = exact_reliability(&e.graph(), NodeId(0), NodeId(3));
        let req = QueryRequest {
            estimator: Some("probtree".into()),
            samples: Some(60_000),
            seed: Some(3),
            ..QueryRequest::new(0, 3)
        };
        let resp = e.execute(&req).unwrap();
        assert!(
            (resp.reliability - exact).abs() < 0.02,
            "{} vs exact {exact}",
            resp.reliability
        );
        assert_eq!(e.stats().resident_estimators, 2, "nothing was evicted");
    }

    #[test]
    fn update_rejects_unknown_edges_atomically() {
        let e = engine();
        let err = e
            .apply_updates(&[upd(0, 1, 0.9), upd(3, 0, 0.5)])
            .unwrap_err();
        assert!(err.contains("no edge"), "{err}");
        assert_eq!(e.epoch(), 0, "failed batches must not bump the epoch");
        let g = e.graph();
        let edge = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.prob(edge).value(), 0.5, "failed batches change nothing");
        assert!(e.apply_updates(&[]).is_err(), "empty batches are rejected");
        assert!(
            e.apply_updates(&[upd(0, 1, 1.5)]).is_err(),
            "invalid probabilities are rejected"
        );
    }

    #[test]
    fn reload_swaps_graph_and_evicts_residents() {
        let e = engine();
        e.execute(&QueryRequest {
            estimator: Some("probtree".into()),
            ..QueryRequest::new(0, 3)
        })
        .unwrap();
        assert_eq!(e.stats().resident_estimators, 1);

        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        let resp = e.reload_graph(Arc::new(b.build()));
        assert_eq!(resp.epoch, 1);
        assert_eq!((resp.nodes, resp.edges), (2, 1));
        assert_eq!(e.stats().resident_estimators, 0, "residents evicted");
        // Old node ids are now invalid; new ones answer.
        assert!(e.execute(&q(0, 3)).is_err());
        let ok = e.execute(&q(0, 1)).unwrap();
        assert!((ok.reliability - 0.9).abs() < 0.05);
    }

    #[test]
    fn successive_updates_keep_epochs_and_answers_consistent() {
        let e = engine();
        e.execute(&q(0, 3)).unwrap();
        let mut last = f64::NAN;
        for (i, p) in [0.9f64, 0.2, 0.7].into_iter().enumerate() {
            let resp = e.apply_updates(&[upd(1, 3, p)]).unwrap();
            assert_eq!(resp.epoch, i as u64 + 1);
            let r = e.execute(&q(0, 3)).unwrap();
            assert!(!r.cached);
            let exact = exact_reliability(&e.graph(), NodeId(0), NodeId(3));
            assert!((r.reliability - exact).abs() < 0.05);
            last = r.reliability;
        }
        // The final cache state replays the final epoch's answer.
        let again = e.execute(&q(0, 3)).unwrap();
        assert!(again.cached);
        assert_eq!(again.reliability.to_bits(), last.to_bits());
    }

    #[test]
    fn queries_race_updates_without_wrong_epoch_answers() {
        // Hammer the engine with concurrent resident-kind queries and
        // updates; every response must be in range and the engine must
        // never wedge. (Wrong-epoch cache pollution would show up as a
        // cached answer differing from a recompute at the same key.)
        let e = Arc::new(engine());
        std::thread::scope(|scope| {
            let eng = Arc::clone(&e);
            scope.spawn(move || {
                for i in 0..20 {
                    let p = 0.05 + 0.9 * ((i % 10) as f64 / 10.0);
                    eng.apply_updates(&[upd(0, 1, p)]).unwrap();
                }
            });
            for _ in 0..2 {
                let eng = Arc::clone(&e);
                scope.spawn(move || {
                    for seed in 0..30u64 {
                        let req = QueryRequest {
                            estimator: Some("probtree".into()),
                            samples: Some(200),
                            seed: Some(seed),
                            ..QueryRequest::new(0, 3)
                        };
                        match eng.execute(&req) {
                            Ok(r) => assert!((0.0..=1.0).contains(&r.reliability)),
                            Err(e) => assert!(e.contains("retry") || e.contains("updated")),
                        }
                    }
                });
            }
        });
        assert_eq!(e.epoch(), 20);
    }
}
