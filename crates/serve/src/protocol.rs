//! Wire protocol of the `relcomp` query service.
//!
//! Line-delimited JSON over TCP: each request is one JSON object on one
//! line, answered by exactly one JSON object on one line. The protocol is
//! self-describing (`cmd` on requests, `ok`/`kind` on responses) so
//! clients in any language can speak it with a socket and a JSON library.
//!
//! Requests:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"query","s":0,"t":3,"estimator":"mc","samples":2000,"seed":7}
//! {"cmd":"query","s":0,"t":3,"eps":0.01,"confidence":0.95,"samples":20000}
//! {"cmd":"query","s":0,"t":3,"time_budget_ms":50}
//! {"cmd":"topk","s":0,"k":10,"samples":2000,"seed":7}
//! {"cmd":"topk","s":0,"k":10,"eps":0.05,"samples":50000}
//! {"cmd":"dquery","s":0,"t":3,"d":4,"samples":2000,"seed":7}
//! {"cmd":"dquery","s":0,"t":3,"d":4,"eps":0.01,"time_budget_ms":50}
//! {"cmd":"maximize","s":0,"t":3,"k":2,"boost":0.95,"eps":0.02,"seed":7}
//! {"cmd":"maximize","s":0,"t":3,"k":1,"apply":true,"samples":5000}
//! {"cmd":"batch","queries":[{"s":0,"t":3},{"s":0,"t":5}]}
//! {"cmd":"update","updates":[{"s":0,"t":3,"prob":0.25}]}
//! {"cmd":"reload","path":"/data/graph.ug"}
//! {"cmd":"load","name":"social","path":"/data/social.ug2","quota":64}
//! {"cmd":"use","name":"social"}
//! {"cmd":"unload","name":"social"}
//! {"cmd":"stats"}
//! {"cmd":"metrics"}
//! {"cmd":"metrics","format":"prom"}
//! {"cmd":"trace","last":5}
//! {"cmd":"shutdown"}
//! ```
//!
//! `estimator`, `samples`, and `seed` are optional; the server substitutes
//! its configured defaults (`estimator` also accepts `"auto"`, which runs
//! the paper's Fig. 18 recommendation under the server's policy knobs).
//!
//! ## Adaptive budgets
//!
//! Three optional fields turn a query from "run exactly K samples" into a
//! streaming session with a stopping rule:
//!
//! * `eps` — relative half-width target: sampling stops once the
//!   confidence interval's half-width drops below `eps * estimate`.
//! * `confidence` — CI confidence level for `eps` (default 0.95).
//! * `time_budget_ms` — wall-time cap; sampling stops at the first batch
//!   barrier past the cap.
//!
//! When any is present, `samples` becomes the *cap* instead of the exact
//! count (server default cap applies when absent). The response reports
//! the samples actually consumed, the achieved `half_width`, and a
//! `stop_reason` of `fixed_k`, `converged`, `max_samples`, or
//! `time_limit`. Under `estimator:"auto"` with no explicit `samples`/
//! `eps`, the planner itself picks an adaptive budget (the server's
//! `auto_eps` policy knob) instead of a raw K.
//!
//! ## Extension workloads
//!
//! `topk` answers the top-k reliability search BFS Sharing was
//! originally designed for (Zhu et al., ICDM'15): the `k` nodes with the
//! highest reliability from source `s`, sampled on the sharded parallel
//! MC path. `dquery` answers distance-constrained reachability
//! `R_d(s, t)` — the probability `t` is within `d` hops of `s` (Jin et
//! al., PVLDB'11; `d` is required). Both accept the same adaptive-budget
//! fields as `query` (`eps` then targets the boundary — k-th ranked —
//! score for `topk`), are cached under epoch-tagged keys covering the
//! workload parameters (`k`/`d`) and the full budget, and go stale on
//! `update`/`reload` exactly like s-t answers.
//!
//! ## Reliability maximization
//!
//! `maximize` greedily picks the `k` edge upgrades (probability boosts
//! to `boost`, default 1.0) that maximize `R(s, t)`, scoring candidates
//! by marginal gain on copy-on-write snapshots with lazy-forward
//! re-evaluation; each greedy round escalates its sample budget until
//! the leader's confidence interval separates from the runner-up's. The
//! budget fields bound every candidate evaluation: `samples` is the
//! per-evaluation count (or cap, when `eps` is present), and `eps`/
//! `confidence` set the CI target. `candidates` caps the pool (edges
//! ranked by upgrade headroom). Report-only by default; `"apply":true`
//! additionally commits the chosen boosts through the live-update path,
//! bumping the epoch (the response then carries `applied_epoch`).
//! Report-only answers are cached like any read; `apply` runs never
//! cache. With the same `seed` the chosen set is bit-identical for any
//! server thread count (unless `time_budget_ms` is set — wall-clock
//! stopping is not deterministic).
//!
//! ## Tenancy verbs
//!
//! The server holds a registry of named graphs ("tenants"), each a full
//! engine with its own epoch, resident estimator indexes, result-cache
//! shards, and admission quota. Every connection starts on the tenant
//! named `default` (the graph from the `serve` command line) and can
//! retarget itself:
//!
//! * `load` — read the graph file at `path` and make it resident as
//!   tenant `name`. Optional `quota` caps that tenant's concurrent
//!   queries (its `max_inflight`). Loading an already-resident name is
//!   an error (`unload` it first). When warm-cache persistence is on,
//!   `load` re-admits the tenant's validated on-disk snapshot, so the
//!   `loaded` response reports `warm_entries`.
//! * `use` — switch *this connection* to tenant `name`; other
//!   connections are unaffected. Every subsequent query/update/stats/
//!   metrics verb runs against that tenant.
//! * `unload` — drop tenant `name` registry-wide (flushing a final warm
//!   snapshot when persistence is on). In-flight queries finish; new
//!   requests from connections still pointing at it fail until they
//!   `use` a resident tenant.
//!
//! These three verbs exist at the *server* layer: dispatching them
//! against a bare engine (no registry) answers an error.
//!
//! ## Observability verbs
//!
//! `metrics` exposes the server's full metrics registry. The default JSON
//! form returns counters (`relcomp_queries_total` by `workload` ∈
//! `st`/`topk`/`dquery` and `outcome` ∈ `hit`/`miss`/`rejected`/`error`,
//! `relcomp_queries_by_estimator_total`, cache and sampler totals), gauges
//! (inflight, epoch, graph size, resident-index bytes), and log2-bucketed
//! latency histograms per workload plus a merged `workload="all"` series —
//! each with exact `count`/`sum`, p50/p90/p99/p99.9, and cumulative
//! `le`-buckets. The top-level `queries_total` field repeats the summed
//! query counter for cheap smoke checks. With `"format":"prom"` the same
//! snapshot is rendered as Prometheus text exposition and returned in a
//! `metrics_text` response's `text` field. `stats` remains a compact,
//! wire-stable view of the same registry.
//!
//! `trace` returns the most recent per-query stage breakdowns (newest
//! first, up to `last`, default 16, from a bounded in-memory ring): wall
//! `nanos` plus per-stage timings over `parse` → `admission` →
//! `cache_lookup` → `plan` → `sample` → `convergence_check` → `serialize`.
//! Stages that did not run for a query (e.g. `sample` on a cache hit) are
//! absent.
//!
//! `update` changes existing edges' probabilities in place: the server
//! snapshots a new graph **epoch** (topology shared, probabilities
//! copy-on-write), migrates resident estimator indexes incrementally,
//! and bumps the epoch that keys the result cache — prior answers go
//! stale without any explicit flush. `reload` replaces the whole graph
//! from a file (`path` optional if the server was started from one),
//! the rebuild path for topology changes.
//!
//! Responses (`"ok":false` carries only `error`):
//!
//! ```text
//! {"ok":true,"kind":"pong"}
//! {"ok":true,"kind":"query","s":0,"t":3,"reliability":0.42,"samples":2000,
//!  "estimator":"MC","micros":1234,"cached":false,
//!  "stop_reason":"fixed_k","half_width":0.0216,"variance":0.000122}
//! {"ok":true,"kind":"topk","s":0,"k":2,"targets":[{"node":5,"reliability":0.9},...],
//!  "samples":2000,"micros":640,"cached":false,"stop_reason":"fixed_k","half_width":0.02}
//! {"ok":true,"kind":"dquery","s":0,"t":3,"d":4,"reliability":0.31,"samples":1792,
//!  "micros":410,"cached":false,"stop_reason":"converged","half_width":0.003,"variance":1.2e-7}
//! {"ok":true,"kind":"batch","results":[...single query objects...]}
//! {"ok":true,"kind":"update","epoch":3,"edges_updated":1,
//!  "migrated":[{"estimator":"ProbTree","mode":"incremental","touched":2}]}
//! {"ok":true,"kind":"reload","epoch":4,"nodes":100,"edges":320}
//! {"ok":true,"kind":"loaded","name":"social","nodes":100,"edges":320,"epoch":0,
//!  "load_path":"mmap","load_micros":812,"warm_entries":17,"quota":64}
//! {"ok":true,"kind":"using","name":"social","epoch":0,"nodes":100,"edges":320}
//! {"ok":true,"kind":"unloaded","name":"social"}
//! {"ok":true,"kind":"stats","queries":10,...}
//! {"ok":true,"kind":"metrics","queries_total":10,"counters":[
//!  {"name":"relcomp_queries_total","labels":{"workload":"st","outcome":"miss"},"value":7},...],
//!  "gauges":[...],"histograms":[{"name":"relcomp_query_latency_micros",
//!  "labels":{"workload":"st"},"count":10,"sum":5120,"p50":511,"p90":1023,
//!  "p99":1023,"p999":1023,"buckets":[{"le":511,"count":6},{"le":1023,"count":10}]}]}
//! {"ok":true,"kind":"metrics_text","text":"# TYPE relcomp_queries_total counter\n..."}
//! {"ok":true,"kind":"trace","traces":[{"workload":"st","s":0,"t":3,"ok":true,
//!  "cached":false,"nanos":152000,"stages":[{"stage":"admission","nanos":210},
//!  {"stage":"plan","nanos":3400},{"stage":"sample","nanos":140000}]}]}
//! {"ok":true,"kind":"bye"}
//! {"ok":false,"error":"unknown estimator `mcmc`"}
//! ```
//!
//! Serialization is hand-written against the shim `serde::Value` model
//! because requests have optional fields and data-carrying variants,
//! which the vendored derive deliberately does not cover.

use relcomp_obs::{MetricsSnapshot, QueryTrace};
use serde::{DeError, Deserialize, Serialize, Value};

/// Default TCP port of `relcomp serve`.
pub const DEFAULT_PORT: u16 = 7117;

/// One s-t reliability query as sent on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// Source node id.
    pub s: u32,
    /// Target node id.
    pub t: u32,
    /// Estimator name (`mc`, `probtree`, ... or `auto`); `None` = server
    /// default.
    pub estimator: Option<String>,
    /// Sample budget `K` — the exact count for fixed queries, the cap
    /// when `eps`/`time_budget_ms` make the query adaptive; `None` =
    /// server default.
    pub samples: Option<usize>,
    /// Master seed; `None` = server default. Part of the cache key.
    pub seed: Option<u64>,
    /// Relative half-width target: stop sampling once the CI half-width
    /// drops below `eps * estimate`. `None` = fixed-budget query.
    pub eps: Option<f64>,
    /// Confidence level for the half-width target; `None` = server
    /// default (0.95).
    pub confidence: Option<f64>,
    /// Wall-time cap in milliseconds; sampling stops at the first batch
    /// barrier past it. `None` = no time cap.
    pub time_budget_ms: Option<u64>,
}

impl QueryRequest {
    /// A query with all optional fields left to server defaults.
    pub fn new(s: u32, t: u32) -> Self {
        QueryRequest {
            s,
            t,
            estimator: None,
            samples: None,
            seed: None,
            eps: None,
            confidence: None,
            time_budget_ms: None,
        }
    }

    /// Whether any adaptive-budget field is present.
    pub fn is_adaptive(&self) -> bool {
        self.eps.is_some() || self.time_budget_ms.is_some()
    }
}

/// One top-k reliability search as sent on the wire (`cmd":"topk"`).
#[derive(Clone, Debug, PartialEq)]
pub struct TopKRequest {
    /// Source node id.
    pub s: u32,
    /// How many targets to return; `None` = server default.
    pub k: Option<usize>,
    /// Sample budget (exact count for fixed queries, cap when adaptive);
    /// `None` = server default.
    pub samples: Option<usize>,
    /// Master seed; `None` = server default. Part of the cache key.
    pub seed: Option<u64>,
    /// Relative half-width target for the boundary (k-th ranked) score.
    pub eps: Option<f64>,
    /// Confidence level for the half-width target.
    pub confidence: Option<f64>,
    /// Wall-time cap in milliseconds.
    pub time_budget_ms: Option<u64>,
}

impl TopKRequest {
    /// A top-k search with all optional fields left to server defaults.
    pub fn new(s: u32) -> Self {
        TopKRequest {
            s,
            k: None,
            samples: None,
            seed: None,
            eps: None,
            confidence: None,
            time_budget_ms: None,
        }
    }
}

/// One distance-constrained reliability query `R_d(s, t)` as sent on the
/// wire (`cmd":"dquery"`).
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceQueryRequest {
    /// Source node id.
    pub s: u32,
    /// Target node id.
    pub t: u32,
    /// Hop bound `d` (required; `0` reaches only `s` itself).
    pub d: usize,
    /// Sample budget (exact count for fixed queries, cap when adaptive);
    /// `None` = server default.
    pub samples: Option<usize>,
    /// Master seed; `None` = server default. Part of the cache key.
    pub seed: Option<u64>,
    /// Relative half-width target.
    pub eps: Option<f64>,
    /// Confidence level for the half-width target.
    pub confidence: Option<f64>,
    /// Wall-time cap in milliseconds.
    pub time_budget_ms: Option<u64>,
}

impl DistanceQueryRequest {
    /// A distance query with all optional fields left to server defaults.
    pub fn new(s: u32, t: u32, d: usize) -> Self {
        DistanceQueryRequest {
            s,
            t,
            d,
            samples: None,
            seed: None,
            eps: None,
            confidence: None,
            time_budget_ms: None,
        }
    }
}

/// One reliability-maximization request as sent on the wire
/// (`"cmd":"maximize"`): greedily pick `k` edge upgrades (probability
/// boosts to `boost`) maximizing `R(s, t)`.
#[derive(Clone, Debug, PartialEq)]
pub struct MaximizeRequest {
    /// Source node id.
    pub s: u32,
    /// Target node id.
    pub t: u32,
    /// Upgrades to pick; `None` = server default (1).
    pub k: Option<usize>,
    /// Probability chosen edges are boosted to, in `(0, 1]`; `None` = 1.0.
    pub boost: Option<f64>,
    /// Candidate-pool cap (edges ranked by upgrade headroom); `None` =
    /// server default.
    pub candidates: Option<usize>,
    /// Commit the chosen upgrades through the live update path (bumps
    /// the graph epoch) instead of only reporting them.
    pub apply: bool,
    /// Per-evaluation sample budget (exact count for fixed, cap when
    /// adaptive); `None` = server default.
    pub samples: Option<usize>,
    /// Master seed; `None` = server default. Part of the cache key.
    pub seed: Option<u64>,
    /// Relative half-width target for each evaluation.
    pub eps: Option<f64>,
    /// Confidence level for the half-width target.
    pub confidence: Option<f64>,
    /// Wall-time cap in milliseconds per evaluation (breaks
    /// thread-count determinism).
    pub time_budget_ms: Option<u64>,
}

impl MaximizeRequest {
    /// A maximization with all optional fields left to server defaults.
    pub fn new(s: u32, t: u32) -> Self {
        MaximizeRequest {
            s,
            t,
            k: None,
            boost: None,
            candidates: None,
            apply: false,
            samples: None,
            seed: None,
            eps: None,
            confidence: None,
            time_budget_ms: None,
        }
    }
}

/// One edge-probability update as sent on the wire: the existing edge
/// `s -> t` gets existence probability `prob` in the next epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeProbUpdate {
    /// Source node of the edge to update.
    pub s: u32,
    /// Target node of the edge to update.
    pub t: u32,
    /// New existence probability in `(0, 1]`.
    pub prob: f64,
}

/// Every request the server understands.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// One s-t reliability query.
    Query(QueryRequest),
    /// Top-k reliability search from a source node.
    TopK(TopKRequest),
    /// Distance-constrained reliability query `R_d(s, t)`.
    DQuery(DistanceQueryRequest),
    /// Greedy reliability maximization: pick `k` edge upgrades.
    Maximize(MaximizeRequest),
    /// Several queries answered in one round trip; the server amortizes
    /// possible-world sampling across MC queries sharing a source (one
    /// shared world stream answers the whole group). A grouped answer is
    /// unbiased and thread-count-deterministic but may differ bit-wise
    /// from the same query computed alone; the result cache replays
    /// whichever computation landed first for a given key.
    Batch(Vec<QueryRequest>),
    /// Apply a batch of edge-probability updates: snapshot a new graph
    /// epoch, migrate resident estimator indexes incrementally, bump the
    /// cache epoch. All-or-nothing: one bad update rejects the batch.
    Update(Vec<EdgeProbUpdate>),
    /// Replace the served graph wholesale from a file (the rebuild path
    /// for edge inserts/deletes). `path` defaults to the file the server
    /// was started from.
    Reload {
        /// Graph file to load (`.ugb` = binary, otherwise text).
        path: Option<String>,
    },
    /// Make the graph file at `path` resident as tenant `name`
    /// (server-layer verb; errors against a bare engine).
    LoadGraph {
        /// Tenant name to register the graph under.
        name: String,
        /// Graph file to load (any format `load`/`serve` accept).
        path: String,
        /// Per-tenant admission quota (`max_inflight`); `None` inherits
        /// the server default.
        quota: Option<usize>,
    },
    /// Drop tenant `name` registry-wide (server-layer verb).
    UnloadGraph {
        /// Tenant to unload.
        name: String,
    },
    /// Point this connection's session at tenant `name` (server-layer
    /// verb).
    UseGraph {
        /// Tenant to switch to.
        name: String,
    },
    /// Server / cache counters.
    Stats,
    /// Full metrics registry: counters, gauges, and latency histograms.
    Metrics {
        /// Exposition format; `Json` (the default when the wire field is
        /// absent) answers with [`Response::Metrics`], `Prom` with
        /// Prometheus text in [`Response::MetricsText`].
        format: MetricsFormat,
    },
    /// Most recent per-query stage traces, newest first.
    Trace {
        /// How many traces to return (`last` on the wire); `None` = server
        /// default (16).
        n: Option<usize>,
    },
    /// Stop the server after acknowledging.
    Shutdown,
}

/// How [`Request::Metrics`] wants the registry rendered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Structured JSON ([`Response::Metrics`]).
    #[default]
    Json,
    /// Prometheus text exposition ([`Response::MetricsText`]).
    Prom,
}

/// Successful answer to one query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResponse {
    /// Echoed source node.
    pub s: u32,
    /// Echoed target node.
    pub t: u32,
    /// Estimated reliability in `[0, 1]`.
    pub reliability: f64,
    /// Samples the estimate consumed.
    pub samples: usize,
    /// Display name of the estimator that answered.
    pub estimator: String,
    /// Server-side wall time of this answer in microseconds (a cache hit
    /// reports the lookup, not the original computation).
    pub micros: u64,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Why sampling stopped: `fixed_k`, `converged`, `max_samples`, or
    /// `time_limit`.
    pub stop_reason: String,
    /// Achieved CI half-width (Wilson for sampling estimators); absent
    /// when the run had no replication to measure spread from.
    pub half_width: Option<f64>,
    /// Estimated variance of the reported reliability; absent when
    /// unmeasurable.
    pub variance: Option<f64>,
}

/// One ranked target inside a [`TopKResponse`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetEntry {
    /// Target node id.
    pub node: u32,
    /// Estimated `R(s, node)`.
    pub reliability: f64,
}

/// Successful answer to one top-k search.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKResponse {
    /// Echoed source node.
    pub s: u32,
    /// The `k` that was answered (after defaulting).
    pub k: usize,
    /// Ranked targets, best first (may be shorter than `k` when fewer
    /// nodes are reachable).
    pub targets: Vec<TargetEntry>,
    /// Possible worlds the search consumed.
    pub samples: usize,
    /// Server-side wall time of this answer in microseconds.
    pub micros: u64,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Why sampling stopped.
    pub stop_reason: String,
    /// Wilson CI half-width of the boundary (k-th ranked) score; absent
    /// when unmeasurable.
    pub half_width: Option<f64>,
}

/// Successful answer to one distance-constrained query.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceQueryResponse {
    /// Echoed source node.
    pub s: u32,
    /// Echoed target node.
    pub t: u32,
    /// Echoed hop bound.
    pub d: usize,
    /// Estimated `R_d(s, t)` in `[0, 1]`.
    pub reliability: f64,
    /// Samples the estimate consumed.
    pub samples: usize,
    /// Server-side wall time of this answer in microseconds.
    pub micros: u64,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Why sampling stopped.
    pub stop_reason: String,
    /// Achieved CI half-width; absent when unmeasurable.
    pub half_width: Option<f64>,
    /// Estimated variance of the reported reliability.
    pub variance: Option<f64>,
}

/// One upgrade a [`MaximizeResponse`] picked, in greedy order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpgradeRow {
    /// Source node of the upgraded edge.
    pub s: u32,
    /// Target node of the upgraded edge.
    pub t: u32,
    /// The edge's probability before the upgrade.
    pub old_prob: f64,
    /// The probability the edge was boosted to.
    pub new_prob: f64,
    /// Estimated marginal reliability gain at pick time.
    pub gain: f64,
    /// Estimated `R(s, t)` after this upgrade.
    pub reliability: f64,
}

/// Successful answer to one reliability maximization.
#[derive(Clone, Debug, PartialEq)]
pub struct MaximizeResponse {
    /// Echoed source node.
    pub s: u32,
    /// Echoed target node.
    pub t: u32,
    /// The `k` that was answered (after defaulting).
    pub k: usize,
    /// Estimated `R(s, t)` before any upgrade.
    pub base_reliability: f64,
    /// Estimated `R(s, t)` with every chosen upgrade applied.
    pub reliability: f64,
    /// `reliability - base_reliability`.
    pub gain: f64,
    /// The picked upgrades, best-marginal-gain first.
    pub chosen: Vec<UpgradeRow>,
    /// Candidate-pool size the greedy searched.
    pub candidates: usize,
    /// Candidate evaluations performed (lazy-forward re-evaluation keeps
    /// this below `candidates * k` after the first round).
    pub evaluations: usize,
    /// Total possible worlds sampled across all evaluations.
    pub samples: usize,
    /// Server-side wall time of this answer in microseconds.
    pub micros: u64,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// The epoch the upgrades were committed at when the request set
    /// `apply`; absent for report-only runs.
    pub applied_epoch: Option<u64>,
}

/// How one resident estimator survived an epoch swap (part of
/// [`UpdateResponse`]).
#[derive(Clone, Debug, PartialEq)]
pub struct MigratedResident {
    /// Display name of the estimator (e.g. `"ProbTree"`).
    pub estimator: String,
    /// Migration mode: `"incremental"` (index repaired in place),
    /// `"rebound"` (no index, graph pointer swapped), or `"evicted"`
    /// (could not migrate; rebuilt lazily on next use).
    pub mode: String,
    /// Index units recomputed on the incremental path (0 otherwise).
    pub touched: usize,
}

/// Successful answer to [`Request::Update`].
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateResponse {
    /// The new graph epoch (all cache keys now miss until recomputed).
    pub epoch: u64,
    /// Edges whose probability changed.
    pub edges_updated: usize,
    /// Fate of every estimator that was resident when the update landed.
    pub migrated: Vec<MigratedResident>,
}

/// Successful answer to [`Request::Reload`].
#[derive(Clone, Debug, PartialEq)]
pub struct ReloadResponse {
    /// The new graph epoch.
    pub epoch: u64,
    /// Nodes in the newly served graph.
    pub nodes: usize,
    /// Edges in the newly served graph.
    pub edges: usize,
}

/// Successful answer to [`Request::LoadGraph`].
#[derive(Clone, Debug, PartialEq)]
pub struct LoadResponse {
    /// Tenant name the graph is now resident under.
    pub name: String,
    /// Nodes in the loaded graph.
    pub nodes: usize,
    /// Edges in the loaded graph.
    pub edges: usize,
    /// Epoch the tenant starts at (nonzero when a warm snapshot seeded
    /// it).
    pub epoch: u64,
    /// How the file was loaded: `mmap` (zero-copy) or `heap`.
    pub load_path: String,
    /// Wall time of the disk load in microseconds.
    pub load_micros: u64,
    /// Cache entries re-admitted from the tenant's warm snapshot.
    pub warm_entries: usize,
    /// Effective admission quota (`max_inflight`) of the tenant.
    pub quota: usize,
}

/// Successful answer to [`Request::UseGraph`].
#[derive(Clone, Debug, PartialEq)]
pub struct UseResponse {
    /// Tenant this connection now targets.
    pub name: String,
    /// The tenant's current epoch.
    pub epoch: u64,
    /// Nodes in the tenant's graph.
    pub nodes: usize,
    /// Edges in the tenant's graph.
    pub edges: usize,
}

/// Server / cache counters returned by [`Request::Stats`].
#[derive(Clone, Debug, PartialEq)]
pub struct StatsResponse {
    /// Queries answered (cache hits included, rejected excluded).
    pub queries: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Queries rejected by admission control.
    pub rejected: u64,
    /// Sampling worker threads per query.
    pub threads: usize,
    /// Graph epoch (changes when the served graph is swapped).
    pub epoch: u64,
    /// Update/reload batches applied since start.
    pub updates: u64,
    /// Nodes in the served graph.
    pub nodes: usize,
    /// Edges in the served graph.
    pub edges: usize,
    /// Estimators resident in the registry (built and kept across
    /// queries) at the current epoch.
    pub resident_estimators: usize,
    /// Total bytes held by resident estimator indexes/workspaces — the
    /// index memory an operator pays per epoch, beyond the graph itself.
    pub resident_bytes: usize,
    /// Worlds sampled through the packed 64-world kernel, process-wide
    /// (each packed batch adds 64). With `scalar_samples` this shows how
    /// much sampling work rides the word-parallel path.
    pub packed_samples: u64,
    /// Worlds sampled one at a time (scalar BFS tails and sub-word
    /// budgets), process-wide.
    pub scalar_samples: u64,
    /// How the served graph was last loaded from disk: `"mmap"`
    /// (zero-copy view of a v2 binary), `"heap"` (parsed into owned
    /// memory), or `""` when no disk load was recorded (e.g. the graph
    /// was built in memory).
    pub load_path: String,
    /// Microseconds the last recorded disk load took (0 when none).
    pub load_micros: u64,
    /// Microseconds since the engine started.
    pub uptime_micros: u64,
}

impl StatsResponse {
    /// Cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One counter or gauge sample inside a [`MetricsReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricRow {
    /// Metric family name (e.g. `relcomp_queries_total`).
    pub name: String,
    /// Label pairs identifying this sample within the family, in stable
    /// order (serialized as a JSON object).
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: u64,
}

/// One cumulative histogram bucket inside a [`HistogramRow`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BucketRow {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations at or below `le` (cumulative).
    pub count: u64,
}

/// One latency histogram inside a [`MetricsReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramRow {
    /// Metric family name (e.g. `relcomp_query_latency_micros`).
    pub name: String,
    /// Label pairs identifying this series within the family.
    pub labels: Vec<(String, String)>,
    /// Exact number of observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Median estimate (upper bound of the bucket holding the quantile).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate.
    pub p999: u64,
    /// Cumulative `le`-buckets over non-empty buckets only.
    pub buckets: Vec<BucketRow>,
}

/// The full metrics registry returned by [`Request::Metrics`] in JSON form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Queries answered (hits + misses across all workloads) — repeated at
    /// the top level so smoke checks can grep one scalar.
    pub queries_total: u64,
    /// All counter samples.
    pub counters: Vec<MetricRow>,
    /// All gauge samples.
    pub gauges: Vec<MetricRow>,
    /// All latency histograms (per workload plus the merged
    /// `workload="all"` series).
    pub histograms: Vec<HistogramRow>,
}

fn mirror_labels(labels: &[(&'static str, String)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), v.clone()))
        .collect()
}

impl From<&MetricsSnapshot> for MetricsReport {
    fn from(snap: &MetricsSnapshot) -> Self {
        MetricsReport {
            queries_total: snap.counter_total("relcomp_queries_total"),
            counters: snap
                .counters
                .iter()
                .map(|c| MetricRow {
                    name: c.name.to_owned(),
                    labels: mirror_labels(&c.labels),
                    value: c.value,
                })
                .collect(),
            gauges: snap
                .gauges
                .iter()
                .map(|g| MetricRow {
                    name: g.name.to_owned(),
                    labels: mirror_labels(&g.labels),
                    value: g.value,
                })
                .collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|h| HistogramRow {
                    name: h.name.to_owned(),
                    labels: mirror_labels(&h.labels),
                    count: h.count,
                    sum: h.sum,
                    p50: h.p50,
                    p90: h.p90,
                    p99: h.p99,
                    p999: h.p999,
                    buckets: h
                        .buckets
                        .iter()
                        .map(|&(le, count)| BucketRow { le, count })
                        .collect(),
                })
                .collect(),
        }
    }
}

impl MetricsReport {
    /// The first histogram with this name and an exactly matching label
    /// set, if any.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramRow> {
        self.histograms.iter().find(|h| {
            h.name == name
                && h.labels.len() == labels.len()
                && h.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (wk, wv))| k == wk && v == wv)
        })
    }

    /// Summed value of every counter sample in this family.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }
}

/// One timed stage inside a [`TraceRow`].
#[derive(Clone, Debug, PartialEq)]
pub struct StageRow {
    /// Stage label: `parse`, `admission`, `cache_lookup`, `plan`,
    /// `sample`, `convergence_check`, or `serialize`.
    pub stage: String,
    /// Time spent in the stage, nanoseconds.
    pub nanos: u64,
}

/// One per-query stage breakdown returned by [`Request::Trace`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRow {
    /// Workload label (`st` / `topk` / `dquery`), or `"?"` if the query
    /// failed before classification.
    pub workload: String,
    /// Source node (0 when not applicable).
    pub s: u64,
    /// Target node (for `topk`: 0).
    pub t: u64,
    /// Whether the query succeeded.
    pub ok: bool,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// End-to-end wall time, nanoseconds.
    pub nanos: u64,
    /// Stages in recorded order; stages that did not run are absent.
    pub stages: Vec<StageRow>,
}

impl From<&QueryTrace> for TraceRow {
    fn from(t: &QueryTrace) -> Self {
        TraceRow {
            workload: t.workload.to_owned(),
            s: t.s,
            t: t.t,
            ok: t.ok,
            cached: t.cached,
            nanos: t.nanos,
            stages: t
                .stages
                .iter()
                .map(|s| StageRow {
                    stage: s.stage.label().to_owned(),
                    nanos: s.nanos,
                })
                .collect(),
        }
    }
}

/// Every response the server sends.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Query`].
    Query(QueryResponse),
    /// Answer to [`Request::TopK`].
    TopK(TopKResponse),
    /// Answer to [`Request::DQuery`].
    DQuery(DistanceQueryResponse),
    /// Answer to [`Request::Maximize`].
    Maximize(MaximizeResponse),
    /// Answer to [`Request::Batch`]: one entry per query, in order.
    Batch(Vec<Result<QueryResponse, String>>),
    /// Answer to [`Request::Update`].
    Update(UpdateResponse),
    /// Answer to [`Request::Reload`].
    Reload(ReloadResponse),
    /// Answer to [`Request::LoadGraph`].
    Loaded(LoadResponse),
    /// Answer to [`Request::UnloadGraph`].
    Unloaded {
        /// The tenant that was dropped.
        name: String,
    },
    /// Answer to [`Request::UseGraph`].
    Using(UseResponse),
    /// Answer to [`Request::Stats`].
    Stats(StatsResponse),
    /// Answer to [`Request::Metrics`] with [`MetricsFormat::Json`].
    Metrics(MetricsReport),
    /// Answer to [`Request::Metrics`] with [`MetricsFormat::Prom`]:
    /// Prometheus text exposition (embedded newlines are JSON-escaped, so
    /// the wire stays one line per response).
    MetricsText(String),
    /// Answer to [`Request::Trace`], newest first.
    Traces(Vec<TraceRow>),
    /// Acknowledgement of [`Request::Shutdown`].
    Bye,
    /// Any failure (parse error, admission rejection, bad query).
    Error(String),
}

// ---------------------------------------------------------------------
// Value-tree (de)serialization
// ---------------------------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn lookup<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .filter(|v| !matches!(v, Value::Null))
}

fn required<'v>(
    fields: &'v [(String, Value)],
    name: &str,
    context: &str,
) -> Result<&'v Value, DeError> {
    lookup(fields, name)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}` in {context}")))
}

fn de<T: Deserialize>(v: &Value) -> Result<T, DeError> {
    T::from_value(v)
}

impl Serialize for QueryRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("s".to_owned(), self.s.to_value()),
            ("t".to_owned(), self.t.to_value()),
        ];
        if let Some(e) = &self.estimator {
            fields.push(("estimator".to_owned(), e.to_value()));
        }
        push_budget_fields(
            &mut fields,
            self.samples,
            self.seed,
            self.eps,
            self.confidence,
            self.time_budget_ms,
        );
        Value::Object(fields)
    }
}

impl Deserialize for QueryRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "query", value))?;
        Ok(QueryRequest {
            s: de(required(fields, "s", "query")?)?,
            t: de(required(fields, "t", "query")?)?,
            estimator: lookup(fields, "estimator").map(de).transpose()?,
            samples: lookup(fields, "samples").map(de).transpose()?,
            seed: lookup(fields, "seed").map(de).transpose()?,
            eps: lookup(fields, "eps").map(de).transpose()?,
            confidence: lookup(fields, "confidence").map(de).transpose()?,
            time_budget_ms: lookup(fields, "time_budget_ms").map(de).transpose()?,
        })
    }
}

/// Append the shared adaptive-budget fields (present-only serialization).
fn push_budget_fields(
    fields: &mut Vec<(String, Value)>,
    samples: Option<usize>,
    seed: Option<u64>,
    eps: Option<f64>,
    confidence: Option<f64>,
    time_budget_ms: Option<u64>,
) {
    if let Some(k) = samples {
        fields.push(("samples".to_owned(), k.to_value()));
    }
    if let Some(seed) = seed {
        fields.push(("seed".to_owned(), seed.to_value()));
    }
    if let Some(eps) = eps {
        fields.push(("eps".to_owned(), eps.to_value()));
    }
    if let Some(c) = confidence {
        fields.push(("confidence".to_owned(), c.to_value()));
    }
    if let Some(ms) = time_budget_ms {
        fields.push(("time_budget_ms".to_owned(), ms.to_value()));
    }
}

impl Serialize for TopKRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![("s".to_owned(), self.s.to_value())];
        if let Some(k) = self.k {
            fields.push(("k".to_owned(), k.to_value()));
        }
        push_budget_fields(
            &mut fields,
            self.samples,
            self.seed,
            self.eps,
            self.confidence,
            self.time_budget_ms,
        );
        Value::Object(fields)
    }
}

impl Deserialize for TopKRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "topk", value))?;
        Ok(TopKRequest {
            s: de(required(fields, "s", "topk")?)?,
            k: lookup(fields, "k").map(de).transpose()?,
            samples: lookup(fields, "samples").map(de).transpose()?,
            seed: lookup(fields, "seed").map(de).transpose()?,
            eps: lookup(fields, "eps").map(de).transpose()?,
            confidence: lookup(fields, "confidence").map(de).transpose()?,
            time_budget_ms: lookup(fields, "time_budget_ms").map(de).transpose()?,
        })
    }
}

impl Serialize for DistanceQueryRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("s".to_owned(), self.s.to_value()),
            ("t".to_owned(), self.t.to_value()),
            ("d".to_owned(), self.d.to_value()),
        ];
        push_budget_fields(
            &mut fields,
            self.samples,
            self.seed,
            self.eps,
            self.confidence,
            self.time_budget_ms,
        );
        Value::Object(fields)
    }
}

impl Deserialize for DistanceQueryRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "dquery", value))?;
        Ok(DistanceQueryRequest {
            s: de(required(fields, "s", "dquery")?)?,
            t: de(required(fields, "t", "dquery")?)?,
            d: de(required(fields, "d", "dquery")?)?,
            samples: lookup(fields, "samples").map(de).transpose()?,
            seed: lookup(fields, "seed").map(de).transpose()?,
            eps: lookup(fields, "eps").map(de).transpose()?,
            confidence: lookup(fields, "confidence").map(de).transpose()?,
            time_budget_ms: lookup(fields, "time_budget_ms").map(de).transpose()?,
        })
    }
}

impl Serialize for MaximizeRequest {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("s".to_owned(), self.s.to_value()),
            ("t".to_owned(), self.t.to_value()),
        ];
        if let Some(k) = self.k {
            fields.push(("k".to_owned(), k.to_value()));
        }
        if let Some(b) = self.boost {
            fields.push(("boost".to_owned(), b.to_value()));
        }
        if let Some(c) = self.candidates {
            fields.push(("candidates".to_owned(), c.to_value()));
        }
        if self.apply {
            fields.push(("apply".to_owned(), true.to_value()));
        }
        push_budget_fields(
            &mut fields,
            self.samples,
            self.seed,
            self.eps,
            self.confidence,
            self.time_budget_ms,
        );
        Value::Object(fields)
    }
}

impl Deserialize for MaximizeRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "maximize", value))?;
        Ok(MaximizeRequest {
            s: de(required(fields, "s", "maximize")?)?,
            t: de(required(fields, "t", "maximize")?)?,
            k: lookup(fields, "k").map(de).transpose()?,
            boost: lookup(fields, "boost").map(de).transpose()?,
            candidates: lookup(fields, "candidates").map(de).transpose()?,
            apply: lookup(fields, "apply")
                .map(de)
                .transpose()?
                .unwrap_or(false),
            samples: lookup(fields, "samples").map(de).transpose()?,
            seed: lookup(fields, "seed").map(de).transpose()?,
            eps: lookup(fields, "eps").map(de).transpose()?,
            confidence: lookup(fields, "confidence").map(de).transpose()?,
            time_budget_ms: lookup(fields, "time_budget_ms").map(de).transpose()?,
        })
    }
}

impl Serialize for EdgeProbUpdate {
    fn to_value(&self) -> Value {
        obj(vec![
            ("s", self.s.to_value()),
            ("t", self.t.to_value()),
            ("prob", self.prob.to_value()),
        ])
    }
}

impl Deserialize for EdgeProbUpdate {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "update", value))?;
        Ok(EdgeProbUpdate {
            s: de(required(fields, "s", "update")?)?,
            t: de(required(fields, "t", "update")?)?,
            prob: de(required(fields, "prob", "update")?)?,
        })
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Ping => obj(vec![("cmd", "ping".to_value())]),
            Request::Query(q) => {
                let mut fields = vec![("cmd".to_owned(), "query".to_value())];
                if let Value::Object(rest) = q.to_value() {
                    fields.extend(rest);
                }
                Value::Object(fields)
            }
            Request::TopK(q) => {
                let mut fields = vec![("cmd".to_owned(), "topk".to_value())];
                if let Value::Object(rest) = q.to_value() {
                    fields.extend(rest);
                }
                Value::Object(fields)
            }
            Request::DQuery(q) => {
                let mut fields = vec![("cmd".to_owned(), "dquery".to_value())];
                if let Value::Object(rest) = q.to_value() {
                    fields.extend(rest);
                }
                Value::Object(fields)
            }
            Request::Maximize(q) => {
                let mut fields = vec![("cmd".to_owned(), "maximize".to_value())];
                if let Value::Object(rest) = q.to_value() {
                    fields.extend(rest);
                }
                Value::Object(fields)
            }
            Request::Batch(queries) => obj(vec![
                ("cmd", "batch".to_value()),
                ("queries", queries.to_value()),
            ]),
            Request::Update(updates) => obj(vec![
                ("cmd", "update".to_value()),
                ("updates", updates.to_value()),
            ]),
            Request::Reload { path } => {
                let mut fields = vec![("cmd", "reload".to_value())];
                if let Some(p) = path {
                    fields.push(("path", p.to_value()));
                }
                obj(fields)
            }
            Request::LoadGraph { name, path, quota } => {
                let mut fields = vec![
                    ("cmd", "load".to_value()),
                    ("name", name.to_value()),
                    ("path", path.to_value()),
                ];
                if let Some(q) = quota {
                    fields.push(("quota", q.to_value()));
                }
                obj(fields)
            }
            Request::UnloadGraph { name } => obj(vec![
                ("cmd", "unload".to_value()),
                ("name", name.to_value()),
            ]),
            Request::UseGraph { name } => {
                obj(vec![("cmd", "use".to_value()), ("name", name.to_value())])
            }
            Request::Stats => obj(vec![("cmd", "stats".to_value())]),
            Request::Metrics { format } => {
                let mut fields = vec![("cmd", "metrics".to_value())];
                if *format == MetricsFormat::Prom {
                    fields.push(("format", "prom".to_value()));
                }
                obj(fields)
            }
            Request::Trace { n } => {
                let mut fields = vec![("cmd", "trace".to_value())];
                if let Some(n) = n {
                    fields.push(("last", n.to_value()));
                }
                obj(fields)
            }
            Request::Shutdown => obj(vec![("cmd", "shutdown".to_value())]),
        }
    }
}

impl Deserialize for Request {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "request", value))?;
        let cmd: String = de(required(fields, "cmd", "request")?)?;
        match cmd.as_str() {
            "ping" => Ok(Request::Ping),
            "query" => Ok(Request::Query(QueryRequest::from_value(value)?)),
            "topk" => Ok(Request::TopK(TopKRequest::from_value(value)?)),
            "dquery" => Ok(Request::DQuery(DistanceQueryRequest::from_value(value)?)),
            "maximize" => Ok(Request::Maximize(MaximizeRequest::from_value(value)?)),
            "batch" => Ok(Request::Batch(de(required(fields, "queries", "batch")?)?)),
            "update" => Ok(Request::Update(de(required(fields, "updates", "update")?)?)),
            "reload" => Ok(Request::Reload {
                path: lookup(fields, "path").map(de).transpose()?,
            }),
            "load" => Ok(Request::LoadGraph {
                name: de(required(fields, "name", "load")?)?,
                path: de(required(fields, "path", "load")?)?,
                quota: lookup(fields, "quota").map(de).transpose()?,
            }),
            "unload" => Ok(Request::UnloadGraph {
                name: de(required(fields, "name", "unload")?)?,
            }),
            "use" => Ok(Request::UseGraph {
                name: de(required(fields, "name", "use")?)?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => {
                let format = match lookup(fields, "format") {
                    None => MetricsFormat::Json,
                    Some(v) => {
                        let name: String = de(v)?;
                        match name.as_str() {
                            "json" => MetricsFormat::Json,
                            "prom" => MetricsFormat::Prom,
                            other => {
                                return Err(DeError::custom(format!(
                                    "unknown metrics format `{other}` (expected `json` or `prom`)"
                                )))
                            }
                        }
                    }
                };
                Ok(Request::Metrics { format })
            }
            "trace" => Ok(Request::Trace {
                n: lookup(fields, "last").map(de).transpose()?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(DeError::custom(format!("unknown cmd `{other}`"))),
        }
    }
}

impl Serialize for QueryResponse {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("ok".to_owned(), true.to_value()),
            ("kind".to_owned(), "query".to_value()),
            ("s".to_owned(), self.s.to_value()),
            ("t".to_owned(), self.t.to_value()),
            ("reliability".to_owned(), self.reliability.to_value()),
            ("samples".to_owned(), self.samples.to_value()),
            ("estimator".to_owned(), self.estimator.to_value()),
            ("micros".to_owned(), self.micros.to_value()),
            ("cached".to_owned(), self.cached.to_value()),
            ("stop_reason".to_owned(), self.stop_reason.to_value()),
        ];
        if let Some(hw) = self.half_width {
            fields.push(("half_width".to_owned(), hw.to_value()));
        }
        if let Some(v) = self.variance {
            fields.push(("variance".to_owned(), v.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for QueryResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "query response", value))?;
        Ok(QueryResponse {
            s: de(required(fields, "s", "query response")?)?,
            t: de(required(fields, "t", "query response")?)?,
            reliability: de(required(fields, "reliability", "query response")?)?,
            samples: de(required(fields, "samples", "query response")?)?,
            estimator: de(required(fields, "estimator", "query response")?)?,
            micros: de(required(fields, "micros", "query response")?)?,
            cached: de(required(fields, "cached", "query response")?)?,
            // Absent on wires predating adaptive sessions: default to the
            // historical fixed-budget semantics.
            stop_reason: lookup(fields, "stop_reason")
                .map(de)
                .transpose()?
                .unwrap_or_else(|| "fixed_k".to_owned()),
            half_width: lookup(fields, "half_width").map(de).transpose()?,
            variance: lookup(fields, "variance").map(de).transpose()?,
        })
    }
}

impl Serialize for TargetEntry {
    fn to_value(&self) -> Value {
        obj(vec![
            ("node", self.node.to_value()),
            ("reliability", self.reliability.to_value()),
        ])
    }
}

impl Deserialize for TargetEntry {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "target entry", value))?;
        Ok(TargetEntry {
            node: de(required(fields, "node", "target entry")?)?,
            reliability: de(required(fields, "reliability", "target entry")?)?,
        })
    }
}

impl Serialize for TopKResponse {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("ok".to_owned(), true.to_value()),
            ("kind".to_owned(), "topk".to_value()),
            ("s".to_owned(), self.s.to_value()),
            ("k".to_owned(), self.k.to_value()),
            ("targets".to_owned(), self.targets.to_value()),
            ("samples".to_owned(), self.samples.to_value()),
            ("micros".to_owned(), self.micros.to_value()),
            ("cached".to_owned(), self.cached.to_value()),
            ("stop_reason".to_owned(), self.stop_reason.to_value()),
        ];
        if let Some(hw) = self.half_width {
            fields.push(("half_width".to_owned(), hw.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for TopKResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "topk response", value))?;
        Ok(TopKResponse {
            s: de(required(fields, "s", "topk response")?)?,
            k: de(required(fields, "k", "topk response")?)?,
            targets: de(required(fields, "targets", "topk response")?)?,
            samples: de(required(fields, "samples", "topk response")?)?,
            micros: de(required(fields, "micros", "topk response")?)?,
            cached: de(required(fields, "cached", "topk response")?)?,
            stop_reason: de(required(fields, "stop_reason", "topk response")?)?,
            half_width: lookup(fields, "half_width").map(de).transpose()?,
        })
    }
}

impl Serialize for DistanceQueryResponse {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("ok".to_owned(), true.to_value()),
            ("kind".to_owned(), "dquery".to_value()),
            ("s".to_owned(), self.s.to_value()),
            ("t".to_owned(), self.t.to_value()),
            ("d".to_owned(), self.d.to_value()),
            ("reliability".to_owned(), self.reliability.to_value()),
            ("samples".to_owned(), self.samples.to_value()),
            ("micros".to_owned(), self.micros.to_value()),
            ("cached".to_owned(), self.cached.to_value()),
            ("stop_reason".to_owned(), self.stop_reason.to_value()),
        ];
        if let Some(hw) = self.half_width {
            fields.push(("half_width".to_owned(), hw.to_value()));
        }
        if let Some(v) = self.variance {
            fields.push(("variance".to_owned(), v.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for DistanceQueryResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "dquery response", value))?;
        Ok(DistanceQueryResponse {
            s: de(required(fields, "s", "dquery response")?)?,
            t: de(required(fields, "t", "dquery response")?)?,
            d: de(required(fields, "d", "dquery response")?)?,
            reliability: de(required(fields, "reliability", "dquery response")?)?,
            samples: de(required(fields, "samples", "dquery response")?)?,
            micros: de(required(fields, "micros", "dquery response")?)?,
            cached: de(required(fields, "cached", "dquery response")?)?,
            stop_reason: de(required(fields, "stop_reason", "dquery response")?)?,
            half_width: lookup(fields, "half_width").map(de).transpose()?,
            variance: lookup(fields, "variance").map(de).transpose()?,
        })
    }
}

impl Serialize for UpgradeRow {
    fn to_value(&self) -> Value {
        obj(vec![
            ("s", self.s.to_value()),
            ("t", self.t.to_value()),
            ("old_prob", self.old_prob.to_value()),
            ("new_prob", self.new_prob.to_value()),
            ("gain", self.gain.to_value()),
            ("reliability", self.reliability.to_value()),
        ])
    }
}

impl Deserialize for UpgradeRow {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "upgrade row", value))?;
        Ok(UpgradeRow {
            s: de(required(fields, "s", "upgrade row")?)?,
            t: de(required(fields, "t", "upgrade row")?)?,
            old_prob: de(required(fields, "old_prob", "upgrade row")?)?,
            new_prob: de(required(fields, "new_prob", "upgrade row")?)?,
            gain: de(required(fields, "gain", "upgrade row")?)?,
            reliability: de(required(fields, "reliability", "upgrade row")?)?,
        })
    }
}

impl Serialize for MaximizeResponse {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("ok".to_owned(), true.to_value()),
            ("kind".to_owned(), "maximize".to_value()),
            ("s".to_owned(), self.s.to_value()),
            ("t".to_owned(), self.t.to_value()),
            ("k".to_owned(), self.k.to_value()),
            (
                "base_reliability".to_owned(),
                self.base_reliability.to_value(),
            ),
            ("reliability".to_owned(), self.reliability.to_value()),
            ("gain".to_owned(), self.gain.to_value()),
            ("chosen".to_owned(), self.chosen.to_value()),
            ("candidates".to_owned(), self.candidates.to_value()),
            ("evaluations".to_owned(), self.evaluations.to_value()),
            ("samples".to_owned(), self.samples.to_value()),
            ("micros".to_owned(), self.micros.to_value()),
            ("cached".to_owned(), self.cached.to_value()),
        ];
        if let Some(epoch) = self.applied_epoch {
            fields.push(("applied_epoch".to_owned(), epoch.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for MaximizeResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "maximize response", value))?;
        Ok(MaximizeResponse {
            s: de(required(fields, "s", "maximize response")?)?,
            t: de(required(fields, "t", "maximize response")?)?,
            k: de(required(fields, "k", "maximize response")?)?,
            base_reliability: de(required(fields, "base_reliability", "maximize response")?)?,
            reliability: de(required(fields, "reliability", "maximize response")?)?,
            gain: de(required(fields, "gain", "maximize response")?)?,
            chosen: de(required(fields, "chosen", "maximize response")?)?,
            candidates: de(required(fields, "candidates", "maximize response")?)?,
            evaluations: de(required(fields, "evaluations", "maximize response")?)?,
            samples: de(required(fields, "samples", "maximize response")?)?,
            micros: de(required(fields, "micros", "maximize response")?)?,
            cached: de(required(fields, "cached", "maximize response")?)?,
            applied_epoch: lookup(fields, "applied_epoch").map(de).transpose()?,
        })
    }
}

impl Serialize for MigratedResident {
    fn to_value(&self) -> Value {
        obj(vec![
            ("estimator", self.estimator.to_value()),
            ("mode", self.mode.to_value()),
            ("touched", self.touched.to_value()),
        ])
    }
}

impl Deserialize for MigratedResident {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "migrated resident", value))?;
        Ok(MigratedResident {
            estimator: de(required(fields, "estimator", "migrated resident")?)?,
            mode: de(required(fields, "mode", "migrated resident")?)?,
            touched: de(required(fields, "touched", "migrated resident")?)?,
        })
    }
}

impl Serialize for UpdateResponse {
    fn to_value(&self) -> Value {
        obj(vec![
            ("ok", true.to_value()),
            ("kind", "update".to_value()),
            ("epoch", self.epoch.to_value()),
            ("edges_updated", self.edges_updated.to_value()),
            ("migrated", self.migrated.to_value()),
        ])
    }
}

impl Deserialize for UpdateResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "update response", value))?;
        Ok(UpdateResponse {
            epoch: de(required(fields, "epoch", "update response")?)?,
            edges_updated: de(required(fields, "edges_updated", "update response")?)?,
            migrated: de(required(fields, "migrated", "update response")?)?,
        })
    }
}

impl Serialize for ReloadResponse {
    fn to_value(&self) -> Value {
        obj(vec![
            ("ok", true.to_value()),
            ("kind", "reload".to_value()),
            ("epoch", self.epoch.to_value()),
            ("nodes", self.nodes.to_value()),
            ("edges", self.edges.to_value()),
        ])
    }
}

impl Deserialize for ReloadResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "reload response", value))?;
        Ok(ReloadResponse {
            epoch: de(required(fields, "epoch", "reload response")?)?,
            nodes: de(required(fields, "nodes", "reload response")?)?,
            edges: de(required(fields, "edges", "reload response")?)?,
        })
    }
}

impl Serialize for LoadResponse {
    fn to_value(&self) -> Value {
        obj(vec![
            ("ok", true.to_value()),
            ("kind", "loaded".to_value()),
            ("name", self.name.to_value()),
            ("nodes", self.nodes.to_value()),
            ("edges", self.edges.to_value()),
            ("epoch", self.epoch.to_value()),
            ("load_path", self.load_path.to_value()),
            ("load_micros", self.load_micros.to_value()),
            ("warm_entries", self.warm_entries.to_value()),
            ("quota", self.quota.to_value()),
        ])
    }
}

impl Deserialize for LoadResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "loaded response", value))?;
        Ok(LoadResponse {
            name: de(required(fields, "name", "loaded response")?)?,
            nodes: de(required(fields, "nodes", "loaded response")?)?,
            edges: de(required(fields, "edges", "loaded response")?)?,
            epoch: de(required(fields, "epoch", "loaded response")?)?,
            load_path: de(required(fields, "load_path", "loaded response")?)?,
            load_micros: de(required(fields, "load_micros", "loaded response")?)?,
            warm_entries: de(required(fields, "warm_entries", "loaded response")?)?,
            quota: de(required(fields, "quota", "loaded response")?)?,
        })
    }
}

impl Serialize for UseResponse {
    fn to_value(&self) -> Value {
        obj(vec![
            ("ok", true.to_value()),
            ("kind", "using".to_value()),
            ("name", self.name.to_value()),
            ("epoch", self.epoch.to_value()),
            ("nodes", self.nodes.to_value()),
            ("edges", self.edges.to_value()),
        ])
    }
}

impl Deserialize for UseResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "using response", value))?;
        Ok(UseResponse {
            name: de(required(fields, "name", "using response")?)?,
            epoch: de(required(fields, "epoch", "using response")?)?,
            nodes: de(required(fields, "nodes", "using response")?)?,
            edges: de(required(fields, "edges", "using response")?)?,
        })
    }
}

impl Serialize for StatsResponse {
    fn to_value(&self) -> Value {
        obj(vec![
            ("ok", true.to_value()),
            ("kind", "stats".to_value()),
            ("queries", self.queries.to_value()),
            ("cache_hits", self.cache_hits.to_value()),
            ("cache_misses", self.cache_misses.to_value()),
            ("cache_entries", self.cache_entries.to_value()),
            ("rejected", self.rejected.to_value()),
            ("threads", self.threads.to_value()),
            ("epoch", self.epoch.to_value()),
            ("updates", self.updates.to_value()),
            ("nodes", self.nodes.to_value()),
            ("edges", self.edges.to_value()),
            ("resident_estimators", self.resident_estimators.to_value()),
            ("resident_bytes", self.resident_bytes.to_value()),
            ("packed_samples", self.packed_samples.to_value()),
            ("scalar_samples", self.scalar_samples.to_value()),
            ("load_path", self.load_path.to_value()),
            ("load_micros", self.load_micros.to_value()),
            ("uptime_micros", self.uptime_micros.to_value()),
        ])
    }
}

impl Deserialize for StatsResponse {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "stats response", value))?;
        let f = |name| required(fields, name, "stats response");
        Ok(StatsResponse {
            queries: de(f("queries")?)?,
            cache_hits: de(f("cache_hits")?)?,
            cache_misses: de(f("cache_misses")?)?,
            cache_entries: de(f("cache_entries")?)?,
            rejected: de(f("rejected")?)?,
            threads: de(f("threads")?)?,
            epoch: de(f("epoch")?)?,
            updates: de(f("updates")?)?,
            nodes: de(f("nodes")?)?,
            edges: de(f("edges")?)?,
            resident_estimators: de(f("resident_estimators")?)?,
            resident_bytes: de(f("resident_bytes")?)?,
            packed_samples: de(f("packed_samples")?)?,
            scalar_samples: de(f("scalar_samples")?)?,
            load_path: de(f("load_path")?)?,
            load_micros: de(f("load_micros")?)?,
            uptime_micros: de(f("uptime_micros")?)?,
        })
    }
}

fn labels_to_value(labels: &[(String, String)]) -> Value {
    Value::Object(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect(),
    )
}

fn labels_from_value(value: &Value, context: &str) -> Result<Vec<(String, String)>, DeError> {
    let fields = value
        .as_object()
        .ok_or_else(|| DeError::expected("object", context, value))?;
    fields
        .iter()
        .map(|(k, v)| Ok((k.clone(), de::<String>(v)?)))
        .collect()
}

impl Serialize for MetricRow {
    fn to_value(&self) -> Value {
        obj(vec![
            ("name", self.name.to_value()),
            ("labels", labels_to_value(&self.labels)),
            ("value", self.value.to_value()),
        ])
    }
}

impl Deserialize for MetricRow {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "metric row", value))?;
        Ok(MetricRow {
            name: de(required(fields, "name", "metric row")?)?,
            labels: labels_from_value(required(fields, "labels", "metric row")?, "metric labels")?,
            value: de(required(fields, "value", "metric row")?)?,
        })
    }
}

impl Serialize for BucketRow {
    fn to_value(&self) -> Value {
        obj(vec![
            ("le", self.le.to_value()),
            ("count", self.count.to_value()),
        ])
    }
}

impl Deserialize for BucketRow {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "bucket row", value))?;
        Ok(BucketRow {
            le: de(required(fields, "le", "bucket row")?)?,
            count: de(required(fields, "count", "bucket row")?)?,
        })
    }
}

impl Serialize for HistogramRow {
    fn to_value(&self) -> Value {
        obj(vec![
            ("name", self.name.to_value()),
            ("labels", labels_to_value(&self.labels)),
            ("count", self.count.to_value()),
            ("sum", self.sum.to_value()),
            ("p50", self.p50.to_value()),
            ("p90", self.p90.to_value()),
            ("p99", self.p99.to_value()),
            ("p999", self.p999.to_value()),
            ("buckets", self.buckets.to_value()),
        ])
    }
}

impl Deserialize for HistogramRow {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "histogram row", value))?;
        let f = |name| required(fields, name, "histogram row");
        Ok(HistogramRow {
            name: de(f("name")?)?,
            labels: labels_from_value(f("labels")?, "histogram labels")?,
            count: de(f("count")?)?,
            sum: de(f("sum")?)?,
            p50: de(f("p50")?)?,
            p90: de(f("p90")?)?,
            p99: de(f("p99")?)?,
            p999: de(f("p999")?)?,
            buckets: de(f("buckets")?)?,
        })
    }
}

impl Serialize for MetricsReport {
    fn to_value(&self) -> Value {
        obj(vec![
            ("ok", true.to_value()),
            ("kind", "metrics".to_value()),
            ("queries_total", self.queries_total.to_value()),
            ("counters", self.counters.to_value()),
            ("gauges", self.gauges.to_value()),
            ("histograms", self.histograms.to_value()),
        ])
    }
}

impl Deserialize for MetricsReport {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "metrics response", value))?;
        Ok(MetricsReport {
            queries_total: de(required(fields, "queries_total", "metrics response")?)?,
            counters: de(required(fields, "counters", "metrics response")?)?,
            gauges: de(required(fields, "gauges", "metrics response")?)?,
            histograms: de(required(fields, "histograms", "metrics response")?)?,
        })
    }
}

impl Serialize for StageRow {
    fn to_value(&self) -> Value {
        obj(vec![
            ("stage", self.stage.to_value()),
            ("nanos", self.nanos.to_value()),
        ])
    }
}

impl Deserialize for StageRow {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "stage row", value))?;
        Ok(StageRow {
            stage: de(required(fields, "stage", "stage row")?)?,
            nanos: de(required(fields, "nanos", "stage row")?)?,
        })
    }
}

impl Serialize for TraceRow {
    fn to_value(&self) -> Value {
        obj(vec![
            ("workload", self.workload.to_value()),
            ("s", self.s.to_value()),
            ("t", self.t.to_value()),
            ("ok", self.ok.to_value()),
            ("cached", self.cached.to_value()),
            ("nanos", self.nanos.to_value()),
            ("stages", self.stages.to_value()),
        ])
    }
}

impl Deserialize for TraceRow {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "trace row", value))?;
        Ok(TraceRow {
            workload: de(required(fields, "workload", "trace row")?)?,
            s: de(required(fields, "s", "trace row")?)?,
            t: de(required(fields, "t", "trace row")?)?,
            ok: de(required(fields, "ok", "trace row")?)?,
            cached: de(required(fields, "cached", "trace row")?)?,
            nanos: de(required(fields, "nanos", "trace row")?)?,
            stages: de(required(fields, "stages", "trace row")?)?,
        })
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Pong => obj(vec![("ok", true.to_value()), ("kind", "pong".to_value())]),
            Response::Query(q) => q.to_value(),
            Response::TopK(q) => q.to_value(),
            Response::DQuery(q) => q.to_value(),
            Response::Maximize(q) => q.to_value(),
            Response::Batch(results) => {
                let items: Vec<Value> = results
                    .iter()
                    .map(|r| match r {
                        Ok(q) => q.to_value(),
                        Err(e) => obj(vec![("ok", false.to_value()), ("error", e.to_value())]),
                    })
                    .collect();
                obj(vec![
                    ("ok", true.to_value()),
                    ("kind", "batch".to_value()),
                    ("results", Value::Array(items)),
                ])
            }
            Response::Update(u) => u.to_value(),
            Response::Reload(r) => r.to_value(),
            Response::Loaded(l) => l.to_value(),
            Response::Unloaded { name } => obj(vec![
                ("ok", true.to_value()),
                ("kind", "unloaded".to_value()),
                ("name", name.to_value()),
            ]),
            Response::Using(u) => u.to_value(),
            Response::Stats(s) => s.to_value(),
            Response::Metrics(m) => m.to_value(),
            Response::MetricsText(text) => obj(vec![
                ("ok", true.to_value()),
                ("kind", "metrics_text".to_value()),
                ("text", text.to_value()),
            ]),
            Response::Traces(traces) => obj(vec![
                ("ok", true.to_value()),
                ("kind", "trace".to_value()),
                ("traces", traces.to_value()),
            ]),
            Response::Bye => obj(vec![("ok", true.to_value()), ("kind", "bye".to_value())]),
            Response::Error(e) => obj(vec![("ok", false.to_value()), ("error", e.to_value())]),
        }
    }
}

impl Deserialize for Response {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "response", value))?;
        let ok: bool = de(required(fields, "ok", "response")?)?;
        if !ok {
            return Ok(Response::Error(de(required(fields, "error", "response")?)?));
        }
        let kind: String = de(required(fields, "kind", "response")?)?;
        match kind.as_str() {
            "pong" => Ok(Response::Pong),
            "query" => Ok(Response::Query(QueryResponse::from_value(value)?)),
            "topk" => Ok(Response::TopK(TopKResponse::from_value(value)?)),
            "dquery" => Ok(Response::DQuery(DistanceQueryResponse::from_value(value)?)),
            "maximize" => Ok(Response::Maximize(MaximizeResponse::from_value(value)?)),
            "batch" => {
                let items = required(fields, "results", "batch response")?
                    .as_array()
                    .ok_or_else(|| DeError::custom("batch `results` must be an array"))?;
                let results = items
                    .iter()
                    .map(|item| {
                        let f = item
                            .as_object()
                            .ok_or_else(|| DeError::expected("object", "batch item", item))?;
                        let ok: bool = de(required(f, "ok", "batch item")?)?;
                        if ok {
                            Ok(Ok(QueryResponse::from_value(item)?))
                        } else {
                            Ok(Err(de(required(f, "error", "batch item")?)?))
                        }
                    })
                    .collect::<Result<Vec<_>, DeError>>()?;
                Ok(Response::Batch(results))
            }
            "update" => Ok(Response::Update(UpdateResponse::from_value(value)?)),
            "reload" => Ok(Response::Reload(ReloadResponse::from_value(value)?)),
            "loaded" => Ok(Response::Loaded(LoadResponse::from_value(value)?)),
            "unloaded" => Ok(Response::Unloaded {
                name: de(required(fields, "name", "unloaded response")?)?,
            }),
            "using" => Ok(Response::Using(UseResponse::from_value(value)?)),
            "stats" => Ok(Response::Stats(StatsResponse::from_value(value)?)),
            "metrics" => Ok(Response::Metrics(MetricsReport::from_value(value)?)),
            "metrics_text" => Ok(Response::MetricsText(de(required(
                fields,
                "text",
                "metrics_text response",
            )?)?)),
            "trace" => Ok(Response::Traces(de(required(
                fields,
                "traces",
                "trace response",
            )?)?)),
            "bye" => Ok(Response::Bye),
            other => Err(DeError::custom(format!("unknown response kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
        let text = serde_json::to_string(v).unwrap();
        assert!(!text.contains('\n'), "wire text must be one line: {text}");
        let back: T = serde_json::from_str(&text).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(&Request::Ping);
        round_trip(&Request::Stats);
        round_trip(&Request::Shutdown);
        round_trip(&Request::Query(QueryRequest {
            estimator: Some("mc".into()),
            samples: Some(5000),
            seed: Some(7),
            ..QueryRequest::new(3, 9)
        }));
        round_trip(&Request::Query(QueryRequest::new(0, 1)));
        round_trip(&Request::Query(QueryRequest {
            eps: Some(0.01),
            confidence: Some(0.99),
            time_budget_ms: Some(250),
            samples: Some(50_000),
            ..QueryRequest::new(2, 5)
        }));
        round_trip(&Request::Batch(vec![
            QueryRequest::new(0, 1),
            QueryRequest {
                estimator: Some("auto".into()),
                seed: Some(1),
                ..QueryRequest::new(0, 2)
            },
        ]));
        round_trip(&Request::Update(vec![
            EdgeProbUpdate {
                s: 0,
                t: 3,
                prob: 0.25,
            },
            EdgeProbUpdate {
                s: 3,
                t: 0,
                prob: 0.75,
            },
        ]));
        round_trip(&Request::Reload { path: None });
        round_trip(&Request::Reload {
            path: Some("/tmp/graph.ugb".into()),
        });
    }

    #[test]
    fn tenancy_requests_round_trip() {
        round_trip(&Request::LoadGraph {
            name: "social".into(),
            path: "/data/social.ug2".into(),
            quota: Some(64),
        });
        round_trip(&Request::LoadGraph {
            name: "g2".into(),
            path: "/tmp/g2.ug".into(),
            quota: None,
        });
        round_trip(&Request::UnloadGraph {
            name: "social".into(),
        });
        round_trip(&Request::UseGraph {
            name: "social".into(),
        });
        // Raw wire forms parse; `name` is required everywhere.
        let req: Request =
            serde_json::from_str(r#"{"cmd":"load","name":"g","path":"/tmp/g.ug2"}"#).unwrap();
        assert_eq!(
            req,
            Request::LoadGraph {
                name: "g".into(),
                path: "/tmp/g.ug2".into(),
                quota: None,
            }
        );
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"use"}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"unload"}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"load","name":"g"}"#).is_err());
    }

    #[test]
    fn tenancy_responses_round_trip() {
        round_trip(&Response::Loaded(LoadResponse {
            name: "social".into(),
            nodes: 100,
            edges: 320,
            epoch: 3,
            load_path: "mmap".into(),
            load_micros: 812,
            warm_entries: 17,
            quota: 64,
        }));
        round_trip(&Response::Unloaded {
            name: "social".into(),
        });
        round_trip(&Response::Using(UseResponse {
            name: "social".into(),
            epoch: 3,
            nodes: 100,
            edges: 320,
        }));
    }

    #[test]
    fn extension_requests_round_trip() {
        round_trip(&Request::TopK(TopKRequest::new(4)));
        round_trip(&Request::TopK(TopKRequest {
            k: Some(10),
            samples: Some(5000),
            seed: Some(7),
            eps: Some(0.05),
            confidence: Some(0.99),
            time_budget_ms: Some(100),
            ..TopKRequest::new(0)
        }));
        round_trip(&Request::DQuery(DistanceQueryRequest::new(0, 3, 4)));
        round_trip(&Request::DQuery(DistanceQueryRequest {
            samples: Some(2000),
            seed: Some(1),
            eps: Some(0.01),
            ..DistanceQueryRequest::new(2, 5, 0)
        }));
        // Hand-written wire text parses; `d` is required.
        let req: Request =
            serde_json::from_str(r#"{"cmd":"topk","s":0,"k":3,"samples":100}"#).unwrap();
        assert_eq!(
            req,
            Request::TopK(TopKRequest {
                k: Some(3),
                samples: Some(100),
                ..TopKRequest::new(0)
            })
        );
        let req: Request =
            serde_json::from_str(r#"{"cmd":"dquery","s":0,"t":3,"d":2,"eps":0.1}"#).unwrap();
        assert_eq!(
            req,
            Request::DQuery(DistanceQueryRequest {
                eps: Some(0.1),
                ..DistanceQueryRequest::new(0, 3, 2)
            })
        );
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"dquery","s":0,"t":3}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"topk"}"#).is_err());
    }

    #[test]
    fn maximize_requests_round_trip() {
        round_trip(&Request::Maximize(MaximizeRequest::new(0, 3)));
        round_trip(&Request::Maximize(MaximizeRequest {
            k: Some(2),
            boost: Some(0.95),
            candidates: Some(16),
            apply: true,
            samples: Some(5000),
            seed: Some(7),
            eps: Some(0.02),
            confidence: Some(0.99),
            time_budget_ms: Some(250),
            ..MaximizeRequest::new(1, 9)
        }));
        // Hand-written wire text parses; `apply` defaults to false.
        let req: Request =
            serde_json::from_str(r#"{"cmd":"maximize","s":0,"t":3,"k":2,"eps":0.05}"#).unwrap();
        assert_eq!(
            req,
            Request::Maximize(MaximizeRequest {
                k: Some(2),
                eps: Some(0.05),
                ..MaximizeRequest::new(0, 3)
            })
        );
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"maximize","s":0}"#).is_err());
    }

    #[test]
    fn maximize_responses_round_trip() {
        round_trip(&Response::Maximize(MaximizeResponse {
            s: 0,
            t: 3,
            k: 2,
            base_reliability: 0.4,
            reliability: 0.93,
            gain: 0.53,
            chosen: vec![
                UpgradeRow {
                    s: 0,
                    t: 1,
                    old_prob: 0.2,
                    new_prob: 1.0,
                    gain: 0.4,
                    reliability: 0.8,
                },
                UpgradeRow {
                    s: 1,
                    t: 3,
                    old_prob: 0.5,
                    new_prob: 1.0,
                    gain: 0.13,
                    reliability: 0.93,
                },
            ],
            candidates: 4,
            evaluations: 7,
            samples: 140_000,
            micros: 812,
            cached: false,
            applied_epoch: Some(5),
        }));
        // Empty chosen sets and absent epochs survive the wire.
        round_trip(&Response::Maximize(MaximizeResponse {
            s: 2,
            t: 2,
            k: 0,
            base_reliability: 1.0,
            reliability: 1.0,
            gain: 0.0,
            chosen: vec![],
            candidates: 0,
            evaluations: 0,
            samples: 0,
            micros: 3,
            cached: true,
            applied_epoch: None,
        }));
    }

    #[test]
    fn extension_responses_round_trip() {
        round_trip(&Response::TopK(TopKResponse {
            s: 0,
            k: 2,
            targets: vec![
                TargetEntry {
                    node: 5,
                    reliability: 0.9,
                },
                TargetEntry {
                    node: 2,
                    reliability: 0.4,
                },
            ],
            samples: 2000,
            micros: 640,
            cached: false,
            stop_reason: "fixed_k".into(),
            half_width: Some(0.02),
        }));
        // Empty rankings and absent CIs survive the wire.
        round_trip(&Response::TopK(TopKResponse {
            s: 7,
            k: 5,
            targets: Vec::new(),
            samples: 0,
            micros: 3,
            cached: false,
            stop_reason: "converged".into(),
            half_width: None,
        }));
        round_trip(&Response::DQuery(DistanceQueryResponse {
            s: 0,
            t: 3,
            d: 4,
            reliability: 0.31,
            samples: 1792,
            micros: 410,
            cached: true,
            stop_reason: "converged".into(),
            half_width: Some(0.003),
            variance: Some(1.2e-7),
        }));
    }

    #[test]
    fn responses_round_trip() {
        round_trip(&Response::Pong);
        round_trip(&Response::Bye);
        round_trip(&Response::Error("nope".into()));
        let q = QueryResponse {
            s: 1,
            t: 2,
            reliability: 0.375,
            samples: 4096,
            estimator: "MC".into(),
            micros: 1234,
            cached: true,
            stop_reason: "converged".into(),
            half_width: Some(0.003),
            variance: Some(2.5e-5),
        };
        round_trip(&Response::Query(q.clone()));
        // A single fixed recursion has no measurable spread: the optional
        // fields must vanish from the wire and round-trip as None.
        round_trip(&Response::Query(QueryResponse {
            stop_reason: "fixed_k".into(),
            half_width: None,
            variance: None,
            ..q.clone()
        }));
        round_trip(&Response::Batch(vec![Ok(q), Err("bad target".into())]));
        round_trip(&Response::Update(UpdateResponse {
            epoch: 3,
            edges_updated: 2,
            migrated: vec![
                MigratedResident {
                    estimator: "ProbTree".into(),
                    mode: "incremental".into(),
                    touched: 5,
                },
                MigratedResident {
                    estimator: "LP+".into(),
                    mode: "rebound".into(),
                    touched: 0,
                },
            ],
        }));
        round_trip(&Response::Reload(ReloadResponse {
            epoch: 4,
            nodes: 100,
            edges: 320,
        }));
        round_trip(&Response::Stats(StatsResponse {
            queries: 10,
            cache_hits: 4,
            cache_misses: 6,
            cache_entries: 6,
            rejected: 1,
            threads: 8,
            epoch: 1,
            updates: 1,
            nodes: 100,
            edges: 300,
            resident_estimators: 2,
            resident_bytes: 4096,
            packed_samples: 6400,
            scalar_samples: 36,
            load_path: "mmap".into(),
            load_micros: 1200,
            uptime_micros: 99,
        }));
    }

    #[test]
    fn metrics_requests_round_trip() {
        round_trip(&Request::Metrics {
            format: MetricsFormat::Json,
        });
        round_trip(&Request::Metrics {
            format: MetricsFormat::Prom,
        });
        round_trip(&Request::Trace { n: None });
        round_trip(&Request::Trace { n: Some(5) });

        // A bare `{"cmd":"metrics"}` means JSON, and `last` is optional.
        let req: Request = serde_json::from_str(r#"{"cmd":"metrics"}"#).unwrap();
        assert_eq!(
            req,
            Request::Metrics {
                format: MetricsFormat::Json
            }
        );
        let req: Request = serde_json::from_str(r#"{"cmd":"metrics","format":"prom"}"#).unwrap();
        assert_eq!(
            req,
            Request::Metrics {
                format: MetricsFormat::Prom
            }
        );
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"metrics","format":"xml"}"#).is_err());
        let req: Request = serde_json::from_str(r#"{"cmd":"trace","last":3}"#).unwrap();
        assert_eq!(req, Request::Trace { n: Some(3) });
    }

    #[test]
    fn metrics_responses_round_trip() {
        round_trip(&Response::Metrics(MetricsReport {
            queries_total: 10,
            counters: vec![
                MetricRow {
                    name: "relcomp_queries_total".into(),
                    labels: vec![
                        ("workload".into(), "st".into()),
                        ("outcome".into(), "miss".into()),
                    ],
                    value: 7,
                },
                MetricRow {
                    name: "relcomp_updates_total".into(),
                    labels: vec![],
                    value: 1,
                },
            ],
            gauges: vec![MetricRow {
                name: "relcomp_inflight".into(),
                labels: vec![],
                value: 2,
            }],
            histograms: vec![HistogramRow {
                name: "relcomp_query_latency_micros".into(),
                labels: vec![("workload".into(), "st".into())],
                count: 10,
                sum: 5120,
                p50: 511,
                p90: 1023,
                p99: 1023,
                p999: 1023,
                buckets: vec![
                    BucketRow { le: 511, count: 6 },
                    BucketRow {
                        le: 1023,
                        count: 10,
                    },
                ],
            }],
        }));
        round_trip(&Response::MetricsText(
            "# TYPE relcomp_queries_total counter\nrelcomp_queries_total 10\n".into(),
        ));
        round_trip(&Response::Traces(vec![TraceRow {
            workload: "st".into(),
            s: 0,
            t: 3,
            ok: true,
            cached: false,
            nanos: 152_000,
            stages: vec![
                StageRow {
                    stage: "admission".into(),
                    nanos: 210,
                },
                StageRow {
                    stage: "sample".into(),
                    nanos: 140_000,
                },
            ],
        }]));
        round_trip(&Response::Traces(vec![]));
    }

    #[test]
    fn metrics_report_mirrors_snapshot() {
        let mut snap = relcomp_obs::MetricsSnapshot::default();
        snap.counter(
            "relcomp_queries_total",
            vec![("workload", "st".into()), ("outcome", "hit".into())],
            3,
        );
        snap.counter(
            "relcomp_queries_total",
            vec![("workload", "topk".into()), ("outcome", "miss".into())],
            4,
        );
        snap.gauge("relcomp_epoch", vec![], 2);
        let h = relcomp_obs::Histogram::new();
        h.record(100);
        h.record(700);
        snap.histogram(
            "relcomp_query_latency_micros",
            vec![("workload", "st".into())],
            &h.snapshot(),
        );

        let report = MetricsReport::from(&snap);
        assert_eq!(report.queries_total, 7);
        assert_eq!(report.counter_total("relcomp_queries_total"), 7);
        assert_eq!(report.counters.len(), 2);
        assert_eq!(report.gauges.len(), 1);
        let hist = report
            .histogram("relcomp_query_latency_micros", &[("workload", "st")])
            .unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 800);
        assert!(report
            .histogram("relcomp_query_latency_micros", &[("workload", "topk")])
            .is_none());
        round_trip(&Response::Metrics(report));
    }

    #[test]
    fn hand_written_json_parses() {
        let req: Request =
            serde_json::from_str(r#"{"cmd":"query","s":0,"t":3,"samples":100}"#).unwrap();
        assert_eq!(
            req,
            Request::Query(QueryRequest {
                samples: Some(100),
                ..QueryRequest::new(0, 3)
            })
        );
        let req: Request =
            serde_json::from_str(r#"{"cmd":"query","s":0,"t":3,"eps":0.05,"time_budget_ms":20}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::Query(QueryRequest {
                eps: Some(0.05),
                time_budget_ms: Some(20),
                ..QueryRequest::new(0, 3)
            })
        );
        // Explicit nulls mean "default", same as absent.
        let req: Request =
            serde_json::from_str(r#"{"cmd":"query","s":1,"t":2,"estimator":null}"#).unwrap();
        assert_eq!(req, Request::Query(QueryRequest::new(1, 2)));
    }

    #[test]
    fn malformed_requests_error() {
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"nope"}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"query","s":0}"#).is_err());
        assert!(serde_json::from_str::<Request>("[1,2]").is_err());
        assert!(serde_json::from_str::<Request>("not json").is_err());
    }

    #[test]
    fn update_request_json_parses() {
        let req: Request =
            serde_json::from_str(r#"{"cmd":"update","updates":[{"s":0,"t":1,"prob":0.5}]}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::Update(vec![EdgeProbUpdate {
                s: 0,
                t: 1,
                prob: 0.5
            }])
        );
        assert!(serde_json::from_str::<Request>(r#"{"cmd":"update"}"#).is_err());
        assert!(
            serde_json::from_str::<Request>(r#"{"cmd":"update","updates":[{"s":0}]}"#).is_err()
        );
        let req: Request = serde_json::from_str(r#"{"cmd":"reload"}"#).unwrap();
        assert_eq!(req, Request::Reload { path: None });
    }

    #[test]
    fn hit_rate_handles_empty() {
        let mut s = StatsResponse {
            queries: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            rejected: 0,
            threads: 1,
            epoch: 0,
            updates: 0,
            nodes: 0,
            edges: 0,
            resident_estimators: 0,
            resident_bytes: 0,
            packed_samples: 0,
            scalar_samples: 0,
            load_path: String::new(),
            load_micros: 0,
            uptime_micros: 0,
        };
        assert_eq!(s.hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert_eq!(s.hit_rate(), 0.75);
    }
}
