//! Blocking client for the query service.

use crate::engine::BatchResults;
use crate::protocol::{
    DistanceQueryRequest, DistanceQueryResponse, EdgeProbUpdate, LoadResponse, MaximizeRequest,
    MaximizeResponse, MetricsFormat, MetricsReport, QueryRequest, QueryResponse, ReloadResponse,
    Request, Response, StatsResponse, TopKRequest, TopKResponse, TraceRow, UpdateResponse,
    UseResponse,
};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything a request round trip can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes were not a valid response.
    Protocol(String),
    /// The server answered `{"ok":false,...}`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client holding one persistent session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server at `addr` (e.g. `"127.0.0.1:7117"`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Set a read timeout so a hung server cannot block the client forever.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request and read one response line.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let text = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("serialize: {e}")))?;
        self.writer.write_all(text.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let response: Response = serde_json::from_str(line.trim_end())
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        if let Response::Error(e) = response {
            return Err(ClientError::Server(e));
        }
        Ok(response)
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// One s-t reliability query.
    pub fn query(&mut self, query: QueryRequest) -> Result<QueryResponse, ClientError> {
        match self.request(&Request::Query(query))? {
            Response::Query(q) => Ok(q),
            other => Err(ClientError::Protocol(format!(
                "expected query answer, got {other:?}"
            ))),
        }
    }

    /// One top-k reliability search.
    pub fn topk(&mut self, request: TopKRequest) -> Result<TopKResponse, ClientError> {
        match self.request(&Request::TopK(request))? {
            Response::TopK(r) => Ok(r),
            other => Err(ClientError::Protocol(format!(
                "expected topk answer, got {other:?}"
            ))),
        }
    }

    /// One distance-constrained reliability query `R_d(s, t)`.
    pub fn dquery(
        &mut self,
        request: DistanceQueryRequest,
    ) -> Result<DistanceQueryResponse, ClientError> {
        match self.request(&Request::DQuery(request))? {
            Response::DQuery(r) => Ok(r),
            other => Err(ClientError::Protocol(format!(
                "expected dquery answer, got {other:?}"
            ))),
        }
    }

    /// One greedy reliability maximization (optionally committing the
    /// chosen upgrades when the request sets `apply`).
    pub fn maximize(&mut self, request: MaximizeRequest) -> Result<MaximizeResponse, ClientError> {
        match self.request(&Request::Maximize(request))? {
            Response::Maximize(r) => Ok(r),
            other => Err(ClientError::Protocol(format!(
                "expected maximize answer, got {other:?}"
            ))),
        }
    }

    /// A batch of queries in one round trip.
    pub fn batch(&mut self, queries: Vec<QueryRequest>) -> Result<BatchResults, ClientError> {
        match self.request(&Request::Batch(queries))? {
            Response::Batch(results) => Ok(results),
            other => Err(ClientError::Protocol(format!(
                "expected batch answer, got {other:?}"
            ))),
        }
    }

    /// Apply a batch of edge-probability updates: the server snapshots a
    /// new graph epoch and migrates its resident indexes incrementally.
    pub fn update(&mut self, updates: Vec<EdgeProbUpdate>) -> Result<UpdateResponse, ClientError> {
        match self.request(&Request::Update(updates))? {
            Response::Update(u) => Ok(u),
            other => Err(ClientError::Protocol(format!(
                "expected update answer, got {other:?}"
            ))),
        }
    }

    /// Replace the served graph from a file (`None` = the file the
    /// server was started from).
    pub fn reload(&mut self, path: Option<String>) -> Result<ReloadResponse, ClientError> {
        match self.request(&Request::Reload { path })? {
            Response::Reload(r) => Ok(r),
            other => Err(ClientError::Protocol(format!(
                "expected reload answer, got {other:?}"
            ))),
        }
    }

    /// Make a graph file resident as a named tenant on the server.
    pub fn load_graph(
        &mut self,
        name: impl Into<String>,
        path: impl Into<String>,
        quota: Option<usize>,
    ) -> Result<LoadResponse, ClientError> {
        match self.request(&Request::LoadGraph {
            name: name.into(),
            path: path.into(),
            quota,
        })? {
            Response::Loaded(l) => Ok(l),
            other => Err(ClientError::Protocol(format!(
                "expected loaded answer, got {other:?}"
            ))),
        }
    }

    /// Drop a named tenant server-wide.
    pub fn unload_graph(&mut self, name: impl Into<String>) -> Result<(), ClientError> {
        match self.request(&Request::UnloadGraph { name: name.into() })? {
            Response::Unloaded { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected unloaded answer, got {other:?}"
            ))),
        }
    }

    /// Point this connection at a different resident tenant.
    pub fn use_graph(&mut self, name: impl Into<String>) -> Result<UseResponse, ClientError> {
        match self.request(&Request::UseGraph { name: name.into() })? {
            Response::Using(u) => Ok(u),
            other => Err(ClientError::Protocol(format!(
                "expected using answer, got {other:?}"
            ))),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsResponse, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// The full metrics registry: counters, gauges, latency histograms.
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.request(&Request::Metrics {
            format: MetricsFormat::Json,
        })? {
            Response::Metrics(m) => Ok(m),
            other => Err(ClientError::Protocol(format!(
                "expected metrics, got {other:?}"
            ))),
        }
    }

    /// The metrics registry rendered as Prometheus text exposition.
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics {
            format: MetricsFormat::Prom,
        })? {
            Response::MetricsText(text) => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "expected metrics text, got {other:?}"
            ))),
        }
    }

    /// The server's most recent per-query stage traces, newest first
    /// (`None` = server default count).
    pub fn traces(&mut self, n: Option<usize>) -> Result<Vec<TraceRow>, ClientError> {
        match self.request(&Request::Trace { n })? {
            Response::Traces(traces) => Ok(traces),
            other => Err(ClientError::Protocol(format!(
                "expected traces, got {other:?}"
            ))),
        }
    }

    /// Ask the server to stop accepting connections.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected bye, got {other:?}"
            ))),
        }
    }
}
