//! Line-delimited JSON server over `std::net::TcpListener`.
//!
//! Two connection-handling models behind one API:
//!
//! - **Reactor** (Linux, the default): a single event-loop thread drives
//!   every socket through raw `epoll` (`crate::reactor`), re-assembles
//!   request lines from nonblocking reads, and hands them to a small
//!   worker pool. Thousands of idle connections cost one thread.
//! - **Threaded** (fallback everywhere, opt-in via
//!   [`ServerMode::Threaded`]): one OS thread per connection, the
//!   original model. Query answers are bit-identical across both.
//!
//! Every connection is a session against a [`TenantRegistry`] of named
//! resident graphs: it starts pointed at the `default` tenant and can
//! retarget with the `use` verb; `load`/`unload` manage the registry
//! server-wide. Shutdown is cooperative and level-triggered: a
//! `shutdown` request (or [`ShutdownHandle::shutdown`]) flips a flag
//! that both serve loops re-check on every iteration, with an eventfd
//! wakeup (reactor) or a nonblocking-listener downgrade plus poke
//! connection (threaded) so the check happens promptly even when no
//! traffic arrives.

use crate::engine::QueryEngine;
use crate::persist::{self, PersistConfig};
use crate::protocol::{
    MetricsFormat, MetricsReport, ReloadResponse, Request, Response, TraceRow, UseResponse,
};
use crate::tenants::TenantRegistry;
use relcomp_obs::{render_prometheus, MetricsSnapshot, Span, Stage, TraceBuilder};
use relcomp_ugraph::io::load_graph_auto;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How connections are multiplexed onto threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServerMode {
    /// Reactor on Linux, threaded elsewhere.
    #[default]
    Auto,
    /// The epoll event loop. Falls back to threaded off Linux (or if the
    /// reactor's wakeup fd cannot be created).
    Reactor,
    /// One OS thread per connection.
    Threaded,
}

impl ServerMode {
    /// Parse a CLI-style mode name.
    pub fn parse(name: &str) -> Result<ServerMode, String> {
        match name {
            "auto" => Ok(ServerMode::Auto),
            "reactor" | "epoll" => Ok(ServerMode::Reactor),
            "threaded" | "threads" => Ok(ServerMode::Threaded),
            other => Err(format!(
                "unknown server mode `{other}` (expected auto|reactor|threaded)"
            )),
        }
    }
}

/// Everything configurable about a server beyond its listen address.
#[derive(Clone, Debug, Default)]
pub struct ServerOptions {
    /// Connection-handling model (default: [`ServerMode::Auto`]).
    pub mode: ServerMode,
    /// Reactor worker threads (0 = derive from available parallelism).
    /// Ignored in threaded mode.
    pub workers: usize,
    /// Warm-cache persistence: when set, a background thread flushes
    /// every tenant's result cache to disk and `run` does a final flush
    /// on the way out.
    pub persist: Option<PersistConfig>,
}

/// Server-scoped gauges that no single engine can own.
#[derive(Default)]
pub(crate) struct ServerGauges {
    connections_open: AtomicU64,
}

impl ServerGauges {
    pub(crate) fn note_opened(&self) {
        self.connections_open.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn note_closed(&self, n: u64) {
        self.connections_open.fetch_sub(n, Ordering::AcqRel);
    }

    pub(crate) fn open(&self) -> u64 {
        self.connections_open.load(Ordering::Acquire)
    }
}

/// Shared server state every connection handler needs: the tenant
/// registry plus server-wide gauges.
#[derive(Clone)]
pub(crate) struct ServeCtx {
    pub(crate) tenants: Arc<TenantRegistry>,
    pub(crate) gauges: Arc<ServerGauges>,
}

impl ServeCtx {
    pub(crate) fn gauges(&self) -> &ServerGauges {
        &self.gauges
    }
}

/// Per-connection state: which tenant this session is pointed at.
pub(crate) struct Session {
    tenant: Mutex<String>,
}

impl Session {
    pub(crate) fn new() -> Session {
        Session {
            tenant: Mutex::new(crate::tenants::DEFAULT_TENANT.to_owned()),
        }
    }

    fn current(&self) -> String {
        self.tenant.lock().expect("session poisoned").clone()
    }

    fn set(&self, name: &str) {
        *self.tenant.lock().expect("session poisoned") = name.to_owned();
    }
}

/// A bound (not yet accepting) query server.
pub struct Server {
    listener: Arc<TcpListener>,
    tenants: Arc<TenantRegistry>,
    options: ServerOptions,
    shutdown: Arc<AtomicBool>,
    gauges: Arc<ServerGauges>,
    #[cfg(target_os = "linux")]
    waker: Option<Arc<crate::reactor::Waker>>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port in tests) serving
    /// one engine as the `default` tenant with default options.
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<QueryEngine>) -> std::io::Result<Server> {
        Server::bind_with(
            addr,
            Arc::new(TenantRegistry::single(engine)),
            ServerOptions::default(),
        )
    }

    /// Bind to `addr` serving a full tenant registry.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        tenants: Arc<TenantRegistry>,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: Arc::new(TcpListener::bind(addr)?),
            tenants,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
            gauges: Arc::new(ServerGauges::default()),
            #[cfg(target_os = "linux")]
            waker: crate::reactor::Waker::new().ok().map(Arc::new),
        })
    }

    /// The bound address (resolves the actual port after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The tenant registry this server serves.
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.tenants
    }

    /// A handle that makes the serve loop exit. Usable from other threads.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.listener.local_addr().ok(),
            listener: Some(Arc::clone(&self.listener)),
            #[cfg(target_os = "linux")]
            waker: self.waker.clone(),
        }
    }

    /// Serve until shutdown. Starts the warm-cache flusher when
    /// persistence is configured and does a final flush on the way out,
    /// so a restart comes back warm.
    pub fn run(self) -> std::io::Result<()> {
        let ctx = ServeCtx {
            tenants: Arc::clone(&self.tenants),
            gauges: Arc::clone(&self.gauges),
        };
        let flusher = self.options.persist.clone().map(|cfg| {
            let stop = Arc::new(AtomicBool::new(false));
            let handle =
                persist::spawn_flusher(Arc::clone(&self.tenants), cfg.clone(), Arc::clone(&stop));
            (stop, handle, cfg)
        });
        let result = self.serve(ctx);
        if let Some((stop, handle, cfg)) = flusher {
            stop.store(true, Ordering::Release);
            let _ = handle.join();
            persist::flush_all(&self.tenants, &cfg.dir);
        }
        result
    }

    fn serve(&self, ctx: ServeCtx) -> std::io::Result<()> {
        match self.options.mode {
            ServerMode::Threaded => self.run_threaded(ctx),
            ServerMode::Auto | ServerMode::Reactor => {
                #[cfg(target_os = "linux")]
                {
                    if let Some(waker) = &self.waker {
                        return crate::reactor::run(
                            Arc::clone(&self.listener),
                            ctx,
                            Arc::clone(&self.shutdown),
                            Arc::clone(waker),
                            self.resolved_workers(),
                        );
                    }
                    self.run_threaded(ctx)
                }
                #[cfg(not(target_os = "linux"))]
                {
                    self.run_threaded(ctx)
                }
            }
        }
    }

    #[cfg(target_os = "linux")]
    fn resolved_workers(&self) -> usize {
        if self.options.workers > 0 {
            self.options.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 8)
        }
    }

    /// Thread-per-connection accept loop. Level-triggered against the
    /// shutdown flag: the flag is re-checked around every accept *and*
    /// whenever accept returns `WouldBlock` (a [`ShutdownHandle`] flips
    /// the listener nonblocking on shutdown), so a poke connection that
    /// gets lost in a full backlog under accept pressure cannot leave
    /// the loop blocked with the flag already set.
    fn run_threaded(&self, ctx: ServeCtx) -> std::io::Result<()> {
        // Live connection threads plus a second handle to each socket.
        // Shutdown closes the read halves so every thread finishes its
        // in-flight request (the response still goes out), hits EOF, and
        // exits; they are all joined before this returns, so the final
        // warm-cache flush in `run` can never race a cache insert still
        // happening on a connection thread.
        let mut live: Vec<(std::thread::JoinHandle<()>, TcpStream)> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    live.retain(|(handle, _)| !handle.is_finished());
                    let reader = stream.try_clone().ok();
                    let ctx = ctx.clone();
                    let shutdown = self.shutdown_handle();
                    let handle =
                        std::thread::spawn(move || handle_connection(stream, ctx, shutdown));
                    if let Some(reader) = reader {
                        live.push((handle, reader));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Per-connection failures must not kill the server.
                Err(_) => continue,
            }
        }
        // Graceful drain: stop further reads, let in-flight requests
        // answer, and wait for every connection thread to finish.
        for (_, stream) in &live {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        for (handle, _) in live {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Start the serve loop on a background thread; returns the bound
    /// address and the thread handle. Convenience for tests and benches.
    pub fn spawn(
        self,
    ) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<std::io::Result<()>>)> {
        let addr = self.local_addr()?;
        let handle = std::thread::spawn(move || self.run());
        Ok((addr, handle))
    }
}

/// Remote control for a running server's serve loop.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
    listener: Option<Arc<TcpListener>>,
    #[cfg(target_os = "linux")]
    waker: Option<Arc<crate::reactor::Waker>>,
}

impl ShutdownHandle {
    /// Request shutdown and unblock the serve loop.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
        // Reactor mode: the eventfd interrupts epoll_wait directly.
        #[cfg(target_os = "linux")]
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        // Threaded mode: downgrade the listener to nonblocking so the
        // accept loop can never block again with the flag set (the poke
        // below can be dropped by a full backlog under accept pressure),
        // then poke it so an idle accept wakes immediately.
        if let Some(listener) = &self.listener {
            let _ = listener.set_nonblocking(true);
        }
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Serve one connection on its own thread (threaded mode): read request
/// lines, write response lines.
fn handle_connection(stream: TcpStream, ctx: ServeCtx, shutdown: ShutdownHandle) {
    ctx.gauges.note_opened();
    let session = Session::new();
    let Ok(write_half) = stream.try_clone() else {
        ctx.gauges.note_closed(1);
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (text, is_bye) = dispatch_session(&line, &ctx, &session);
        if write_line(&mut writer, &text).is_err() {
            break;
        }
        if is_bye {
            shutdown.shutdown();
            break;
        }
    }
    ctx.gauges.note_closed(1);
}

fn write_line<W: Write>(writer: &mut W, text: &str) -> std::io::Result<()> {
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn response_text(response: &Response) -> String {
    serde_json::to_string(response)
        .unwrap_or_else(|e| format!(r#"{{"ok":false,"error":"serialize: {e}"}}"#))
}

/// Traces returned by a `trace` request that does not say how many.
const DEFAULT_TRACE_COUNT: usize = 16;

/// Parse one request line and run it against the engine.
pub fn dispatch(line: &str, engine: &QueryEngine) -> Response {
    match serde_json::from_str(line) {
        Ok(request) => execute_request(request, engine),
        Err(e) => Response::Error(format!("bad request: {e}")),
    }
}

/// Serve one request line end to end against a single engine — parse,
/// execute, serialize — and return the serialized response plus whether
/// it acknowledged a shutdown. Query workloads (`query` / `topk` /
/// `dquery`) record a stage trace that additionally covers `parse` and
/// `serialize`, the two wire stages only this layer can see.
///
/// Tenancy verbs error here; connection handlers route through
/// `dispatch_session`, which resolves them against the registry.
pub fn dispatch_line(line: &str, engine: &QueryEngine) -> (String, bool) {
    let mut tb = TraceBuilder::new();
    let parsed: Result<Request, _> = {
        let _span = Span::enter(&mut tb, Stage::Parse);
        serde_json::from_str(line)
    };
    let request = match parsed {
        Ok(r) => r,
        // Malformed lines carry no workload to attribute a trace to.
        Err(e) => {
            return (
                response_text(&Response::Error(format!("bad request: {e}"))),
                false,
            )
        }
    };
    let (response, traced) = match request {
        Request::Query(q) => (
            match engine.execute_traced(&q, &mut tb) {
                Ok(resp) => Response::Query(resp),
                Err(e) => Response::Error(e),
            },
            true,
        ),
        Request::TopK(q) => (
            match engine.execute_topk_traced(&q, &mut tb) {
                Ok(resp) => Response::TopK(resp),
                Err(e) => Response::Error(e),
            },
            true,
        ),
        Request::DQuery(q) => (
            match engine.execute_dquery_traced(&q, &mut tb) {
                Ok(resp) => Response::DQuery(resp),
                Err(e) => Response::Error(e),
            },
            true,
        ),
        Request::Maximize(q) => (
            match engine.execute_maximize_traced(&q, &mut tb) {
                Ok(resp) => Response::Maximize(resp),
                Err(e) => Response::Error(e),
            },
            true,
        ),
        other => (execute_request(other, engine), false),
    };
    let is_bye = matches!(response, Response::Bye);
    let text = {
        let _span = Span::enter(&mut tb, Stage::Serialize);
        response_text(&response)
    };
    if traced {
        engine.record_trace(tb);
    }
    (text, is_bye)
}

/// Serve one request line for a connection session: tenancy verbs and
/// `metrics` resolve against the registry, everything else against the
/// session's current tenant. This is the dispatch path both connection
/// models use, so answers are identical across reactor and threaded.
pub(crate) fn dispatch_session(line: &str, ctx: &ServeCtx, session: &Session) -> (String, bool) {
    let mut tb = TraceBuilder::new();
    let parsed: Result<Request, _> = {
        let _span = Span::enter(&mut tb, Stage::Parse);
        serde_json::from_str(line)
    };
    let request = match parsed {
        Ok(r) => r,
        Err(e) => {
            return (
                response_text(&Response::Error(format!("bad request: {e}"))),
                false,
            )
        }
    };
    // Query workloads remember their engine so the trace (including the
    // serialize span below) lands in the tenant that ran the query.
    let mut trace_engine: Option<Arc<QueryEngine>> = None;
    let response = match request {
        Request::LoadGraph { name, path, quota } => match ctx.tenants.load(&name, &path, quota) {
            Ok(resp) => Response::Loaded(resp),
            Err(e) => Response::Error(e),
        },
        Request::UnloadGraph { name } => match ctx.tenants.unload(&name) {
            Ok(()) => Response::Unloaded { name },
            Err(e) => Response::Error(e),
        },
        Request::UseGraph { name } => match ctx.tenants.get(&name) {
            Some(engine) => {
                session.set(&name);
                Response::Using(UseResponse {
                    epoch: engine.epoch(),
                    nodes: engine.graph().num_nodes(),
                    edges: engine.graph().num_edges(),
                    name,
                })
            }
            None => Response::Error(format!("graph `{name}` is not loaded")),
        },
        // Metrics aggregate over every tenant (labelled per graph) plus
        // the server-scoped gauges no single engine can see.
        Request::Metrics { format } => {
            let snap = server_metrics(ctx);
            match format {
                MetricsFormat::Json => Response::Metrics(MetricsReport::from(&snap)),
                MetricsFormat::Prom => Response::MetricsText(render_prometheus(&snap)),
            }
        }
        other => {
            let tenant = session.current();
            match ctx.tenants.get(&tenant) {
                None => Response::Error(format!(
                    "graph `{tenant}` is not loaded (`load` it again or `use` another)"
                )),
                Some(engine) => match other {
                    Request::Query(q) => {
                        trace_engine = Some(Arc::clone(&engine));
                        match engine.execute_traced(&q, &mut tb) {
                            Ok(resp) => Response::Query(resp),
                            Err(e) => Response::Error(e),
                        }
                    }
                    Request::TopK(q) => {
                        trace_engine = Some(Arc::clone(&engine));
                        match engine.execute_topk_traced(&q, &mut tb) {
                            Ok(resp) => Response::TopK(resp),
                            Err(e) => Response::Error(e),
                        }
                    }
                    Request::DQuery(q) => {
                        trace_engine = Some(Arc::clone(&engine));
                        match engine.execute_dquery_traced(&q, &mut tb) {
                            Ok(resp) => Response::DQuery(resp),
                            Err(e) => Response::Error(e),
                        }
                    }
                    Request::Maximize(q) => {
                        trace_engine = Some(Arc::clone(&engine));
                        match engine.execute_maximize_traced(&q, &mut tb) {
                            Ok(resp) => Response::Maximize(resp),
                            Err(e) => Response::Error(e),
                        }
                    }
                    o => execute_request(o, &engine),
                },
            }
        }
    };
    let is_bye = matches!(response, Response::Bye);
    let text = {
        let _span = Span::enter(&mut tb, Stage::Serialize);
        response_text(&response)
    };
    if let Some(engine) = trace_engine {
        engine.record_trace(tb);
    }
    (text, is_bye)
}

/// Aggregate metrics across every tenant, labelling each sample with its
/// graph name, plus server-scoped reactor gauges.
fn server_metrics(ctx: &ServeCtx) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for (name, engine) in ctx.tenants.snapshot() {
        let snap = engine.metrics();
        for mut c in snap.counters {
            c.labels.insert(0, ("graph", name.clone()));
            merged.counters.push(c);
        }
        for mut g in snap.gauges {
            g.labels.insert(0, ("graph", name.clone()));
            merged.gauges.push(g);
        }
        for mut h in snap.histograms {
            h.labels.insert(0, ("graph", name.clone()));
            merged.histograms.push(h);
        }
    }
    merged.gauge("relcomp_tenants", Vec::new(), ctx.tenants.len() as u64);
    merged.gauge("relcomp_connections_open", Vec::new(), ctx.gauges.open());
    merged
}

/// Run one parsed request against the engine (query workloads take their
/// untraced paths; [`dispatch_line`] routes them through the traced ones).
fn execute_request(request: Request, engine: &QueryEngine) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Query(q) => match engine.execute(&q) {
            Ok(resp) => Response::Query(resp),
            Err(e) => Response::Error(e),
        },
        Request::TopK(q) => match engine.execute_topk(&q) {
            Ok(resp) => Response::TopK(resp),
            Err(e) => Response::Error(e),
        },
        Request::DQuery(q) => match engine.execute_dquery(&q) {
            Ok(resp) => Response::DQuery(resp),
            Err(e) => Response::Error(e),
        },
        Request::Maximize(q) => match engine.execute_maximize(&q) {
            Ok(resp) => Response::Maximize(resp),
            Err(e) => Response::Error(e),
        },
        Request::Batch(queries) => match engine.execute_batch(&queries) {
            Ok(results) => Response::Batch(results),
            Err(e) => Response::Error(e),
        },
        Request::Update(updates) => match engine.apply_updates(&updates) {
            Ok(resp) => Response::Update(resp),
            Err(e) => Response::Error(e),
        },
        Request::Reload { path } => match reload_from(path, engine) {
            Ok(resp) => Response::Reload(resp),
            Err(e) => Response::Error(e),
        },
        Request::Stats => Response::Stats(engine.stats()),
        Request::Metrics { format } => match format {
            MetricsFormat::Json => Response::Metrics(MetricsReport::from(&engine.metrics())),
            MetricsFormat::Prom => Response::MetricsText(render_prometheus(&engine.metrics())),
        },
        Request::Trace { n } => Response::Traces(
            engine
                .traces(n.unwrap_or(DEFAULT_TRACE_COUNT))
                .iter()
                .map(TraceRow::from)
                .collect(),
        ),
        // Tenancy verbs only make sense against a registry; a bare
        // engine dispatch (tests, embedding) has none.
        Request::LoadGraph { .. } | Request::UnloadGraph { .. } | Request::UseGraph { .. } => {
            Response::Error(
                "tenancy verbs (load/unload/use) need a server connection, not a bare engine"
                    .to_owned(),
            )
        }
        Request::Shutdown => Response::Bye,
    }
}

/// Load a graph file (format sniffed from its magic bytes — v2 binary,
/// v1 binary, or text) and swap it into the engine. Without an explicit
/// `path`, re-reads the file the server was started from. Records the
/// load path (mmap vs heap) and latency so `stats`/`metrics` reflect
/// how the served graph got into memory.
fn reload_from(path: Option<String>, engine: &QueryEngine) -> Result<ReloadResponse, String> {
    let path = path.or_else(|| engine.source()).ok_or_else(|| {
        "reload needs a `path` (this server was not started from a graph file)".to_owned()
    })?;
    let start = std::time::Instant::now();
    let (graph, report) =
        load_graph_auto(&path).map_err(|e| format!("cannot load `{path}`: {e}"))?;
    let micros = start.elapsed().as_micros() as u64;
    let resp = engine.reload_graph(std::sync::Arc::new(graph));
    engine.record_load(report.mmapped, micros);
    engine.set_source(path);
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use relcomp_ugraph::{write_graph_v2, GraphBuilder, NodeId};

    fn engine() -> Arc<QueryEngine> {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
        Arc::new(QueryEngine::new(
            Arc::new(b.build()),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        ))
    }

    fn ctx() -> ServeCtx {
        ServeCtx {
            tenants: Arc::new(TenantRegistry::single(engine())),
            gauges: Arc::new(ServerGauges::default()),
        }
    }

    #[test]
    fn dispatch_covers_update_and_reload() {
        let e = engine();
        assert!(matches!(
            dispatch(
                r#"{"cmd":"update","updates":[{"s":0,"t":1,"prob":0.4}]}"#,
                &e
            ),
            Response::Update(_)
        ));
        assert_eq!(e.epoch(), 1);
        // Unknown edge: error, no epoch bump.
        assert!(matches!(
            dispatch(
                r#"{"cmd":"update","updates":[{"s":2,"t":0,"prob":0.4}]}"#,
                &e
            ),
            Response::Error(_)
        ));
        assert_eq!(e.epoch(), 1);
        // Reload without a recorded source file fails cleanly.
        assert!(matches!(
            dispatch(r#"{"cmd":"reload"}"#, &e),
            Response::Error(_)
        ));
        // Reload from an explicit (missing) path fails cleanly too.
        assert!(matches!(
            dispatch(r#"{"cmd":"reload","path":"/nonexistent.ug"}"#, &e),
            Response::Error(_)
        ));
    }

    #[test]
    fn dispatch_covers_every_command() {
        let e = engine();
        assert_eq!(dispatch(r#"{"cmd":"ping"}"#, &e), Response::Pong);
        assert!(matches!(
            dispatch(r#"{"cmd":"query","s":0,"t":2,"samples":500,"seed":1}"#, &e),
            Response::Query(_)
        ));
        assert!(matches!(
            dispatch(
                r#"{"cmd":"batch","queries":[{"s":0,"t":1},{"s":0,"t":2}]}"#,
                &e
            ),
            Response::Batch(_)
        ));
        assert!(matches!(
            dispatch(r#"{"cmd":"topk","s":0,"k":2,"samples":500,"seed":1}"#, &e),
            Response::TopK(_)
        ));
        assert!(matches!(
            dispatch(r#"{"cmd":"dquery","s":0,"t":2,"d":2,"samples":500}"#, &e),
            Response::DQuery(_)
        ));
        // `dquery` without the required hop bound is a parse error.
        assert!(matches!(
            dispatch(r#"{"cmd":"dquery","s":0,"t":2}"#, &e),
            Response::Error(_)
        ));
        assert!(matches!(
            dispatch(r#"{"cmd":"stats"}"#, &e),
            Response::Stats(_)
        ));
        // Tenancy verbs only work through a session dispatch; a bare
        // engine answers with a pointer, not a panic.
        assert!(matches!(
            dispatch(r#"{"cmd":"use","name":"other"}"#, &e),
            Response::Error(_)
        ));
        assert!(matches!(
            dispatch(r#"{"cmd":"load","name":"g","path":"/tmp/x.ug2"}"#, &e),
            Response::Error(_)
        ));
        assert!(matches!(
            dispatch(r#"{"cmd":"unload","name":"g"}"#, &e),
            Response::Error(_)
        ));
        assert_eq!(dispatch(r#"{"cmd":"shutdown"}"#, &e), Response::Bye);
        assert!(matches!(dispatch("garbage", &e), Response::Error(_)));
        assert!(matches!(
            dispatch(r#"{"cmd":"query","s":0,"t":77}"#, &e),
            Response::Error(_)
        ));
    }

    #[test]
    fn dispatch_covers_metrics_and_trace() {
        let e = engine();
        assert!(matches!(
            dispatch(r#"{"cmd":"query","s":0,"t":2,"samples":500,"seed":1}"#, &e),
            Response::Query(_)
        ));
        let Response::Metrics(report) = dispatch(r#"{"cmd":"metrics"}"#, &e) else {
            panic!("expected metrics response");
        };
        assert_eq!(report.queries_total, 1);
        assert!(report
            .histogram("relcomp_query_latency_micros", &[("workload", "st")])
            .is_some());
        let Response::MetricsText(text) = dispatch(r#"{"cmd":"metrics","format":"prom"}"#, &e)
        else {
            panic!("expected prometheus text response");
        };
        assert!(text.contains("# TYPE relcomp_queries_total counter"));
        let Response::Traces(traces) = dispatch(r#"{"cmd":"trace","last":5}"#, &e) else {
            panic!("expected trace response");
        };
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].workload, "st");
        assert!(matches!(
            dispatch(r#"{"cmd":"metrics","format":"xml"}"#, &e),
            Response::Error(_)
        ));
    }

    #[test]
    fn dispatch_line_traces_wire_stages() {
        let e = engine();
        let (text, bye) =
            dispatch_line(r#"{"cmd":"query","s":0,"t":2,"samples":500,"seed":1}"#, &e);
        assert!(!bye);
        assert!(text.contains(r#""kind":"query""#));

        let traces = e.traces(4);
        assert_eq!(traces.len(), 1);
        let stages: Vec<&str> = traces[0].stages.iter().map(|s| s.stage.label()).collect();
        assert!(stages.contains(&"parse"));
        assert!(stages.contains(&"serialize"));
        assert!(stages.contains(&"sample"));

        // Non-query verbs serve without recording traces.
        let (text, bye) = dispatch_line(r#"{"cmd":"stats"}"#, &e);
        assert!(!bye && text.contains(r#""kind":"stats""#));
        assert_eq!(e.traces(16).len(), 1);

        let (text, bye) = dispatch_line(r#"{"cmd":"shutdown"}"#, &e);
        assert!(bye && text.contains(r#""kind":"bye""#));
        let (text, bye) = dispatch_line("garbage", &e);
        assert!(!bye && text.contains("bad request"));
    }

    #[test]
    fn session_dispatch_answers_like_engine_dispatch() {
        let c = ctx();
        let s = Session::new();
        let q = r#"{"cmd":"query","s":0,"t":2,"samples":500,"seed":1}"#;
        let (session_text, _) = dispatch_session(q, &c, &s);
        let (engine_text, _) = dispatch_line(q, &engine());
        // Bit-identical reliability regardless of dispatch path: the
        // session layer only routes, it never touches the math.
        let parse = |t: &str| -> f64 {
            match serde_json::from_str::<Response>(t).unwrap() {
                Response::Query(q) => q.reliability,
                other => panic!("expected query answer, got {other:?}"),
            }
        };
        assert_eq!(
            parse(&session_text).to_bits(),
            parse(&engine_text).to_bits()
        );
    }

    #[test]
    fn session_dispatch_runs_the_tenant_lifecycle() {
        let dir = std::env::temp_dir().join("relcomp_serve_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alt.ug2");
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        write_graph_v2(&b.build(), &path).unwrap();

        let c = ctx();
        let s = Session::new();

        // Load a second tenant, point the session at it, query it.
        let (text, _) = dispatch_session(
            &format!(
                r#"{{"cmd":"load","name":"alt","path":"{}"}}"#,
                path.display()
            ),
            &c,
            &s,
        );
        assert!(text.contains(r#""kind":"loaded""#), "{text}");
        assert_eq!(c.tenants.len(), 2);
        let (text, _) = dispatch_session(r#"{"cmd":"use","name":"alt"}"#, &c, &s);
        assert!(text.contains(r#""kind":"using""#), "{text}");
        let (text, _) = dispatch_session(
            r#"{"cmd":"query","s":0,"t":1,"samples":400,"seed":7}"#,
            &c,
            &s,
        );
        assert!(text.contains(r#""kind":"query""#), "{text}");

        // Metrics are labelled per graph and carry the server gauges.
        // (The prom text arrives JSON-escaped inside the response line.)
        let (text, _) = dispatch_session(r#"{"cmd":"metrics","format":"prom"}"#, &c, &s);
        assert!(text.contains(r#"graph=\"alt\""#), "{text}");
        assert!(text.contains(r#"graph=\"default\""#), "{text}");
        assert!(text.contains("relcomp_tenants 2"), "{text}");
        assert!(text.contains("relcomp_connections_open"), "{text}");

        // Unload the tenant the session points at: later queries error
        // with a recovery hint instead of panicking or misrouting.
        let (text, _) = dispatch_session(r#"{"cmd":"unload","name":"alt"}"#, &c, &s);
        assert!(text.contains(r#""kind":"unloaded""#), "{text}");
        let (text, _) = dispatch_session(r#"{"cmd":"query","s":0,"t":1}"#, &c, &s);
        assert!(text.contains("not loaded"), "{text}");
        // `use` back to the default tenant recovers the session.
        let (text, _) = dispatch_session(r#"{"cmd":"use","name":"default"}"#, &c, &s);
        assert!(text.contains(r#""kind":"using""#), "{text}");

        // Unknown tenants can't be used or unloaded.
        let (text, _) = dispatch_session(r#"{"cmd":"use","name":"ghost"}"#, &c, &s);
        assert!(text.contains("not loaded"), "{text}");
        let (text, _) = dispatch_session(r#"{"cmd":"unload","name":"ghost"}"#, &c, &s);
        assert!(text.contains("not loaded"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_reports_load_path_and_latency() {
        let dir = std::env::temp_dir().join("relcomp_serve_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.ug2");

        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.8).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.8).unwrap();
        relcomp_ugraph::write_graph_v2(&b.build(), &path).unwrap();

        let e = engine();
        // Nothing loaded from disk yet: stats report no load path.
        let before = e.stats();
        assert_eq!(before.load_path, "");
        assert_eq!(before.load_micros, 0);

        let req = format!(r#"{{"cmd":"reload","path":"{}"}}"#, path.display());
        assert!(matches!(dispatch(&req, &e), Response::Reload(_)));

        let after = e.stats();
        let expect = if cfg!(all(unix, target_endian = "little")) {
            "mmap"
        } else {
            "heap"
        };
        assert_eq!(after.load_path, expect);
        assert!(after.load_micros > 0);
        let metrics = e.metrics();
        assert!(metrics.gauges.iter().any(|g| {
            g.name == "relcomp_graph_load_micros"
                && g.labels.iter().any(|(k, v)| *k == "path" && v == expect)
        }));
        std::fs::remove_file(&path).ok();
    }
}
