//! Line-delimited JSON server over `std::net::TcpListener`.
//!
//! One OS thread per connection (connections are long-lived query
//! sessions, admission control bounds the *computation* concurrency in
//! the engine, so a thread-per-connection model is plenty for the closed
//! workloads this repo serves). Shutdown is cooperative: a `shutdown`
//! request flips a flag and pokes the listener so the accept loop
//! observes it.

use crate::engine::QueryEngine;
use crate::protocol::{MetricsFormat, MetricsReport, ReloadResponse, Request, Response, TraceRow};
use relcomp_obs::{render_prometheus, Span, Stage, TraceBuilder};
use relcomp_ugraph::io::load_graph_auto;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running (not yet accepting) query server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port in tests).
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<QueryEngine>) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves the actual port after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes the accept loop exit: flips the shutdown flag
    /// and unblocks the listener. Usable from other threads.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Accept connections until shutdown, spawning one handler thread per
    /// connection.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // Per-connection failures must not kill the server.
                Err(_) => continue,
            };
            let engine = Arc::clone(&self.engine);
            let shutdown = ShutdownHandle {
                flag: Arc::clone(&self.shutdown),
                addr: Some(addr),
            };
            std::thread::spawn(move || handle_connection(stream, engine, shutdown));
        }
        Ok(())
    }

    /// Start the accept loop on a background thread; returns the bound
    /// address and the thread handle. Convenience for tests and benches.
    pub fn spawn(
        self,
    ) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<std::io::Result<()>>)> {
        let addr = self.local_addr()?;
        let handle = std::thread::spawn(move || self.run());
        Ok((addr, handle))
    }
}

/// Remote control for a running server's accept loop.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: Option<SocketAddr>,
}

impl ShutdownHandle {
    /// Request shutdown and unblock the accept loop.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
        // The accept loop only re-checks the flag after an accept; poke it
        // with a throwaway connection so it wakes immediately.
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Serve one connection: read request lines, write response lines.
fn handle_connection(stream: TcpStream, engine: Arc<QueryEngine>, shutdown: ShutdownHandle) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (text, is_bye) = dispatch_line(&line, &engine);
        if write_line(&mut writer, &text).is_err() {
            break;
        }
        if is_bye {
            shutdown.shutdown();
            break;
        }
    }
}

fn write_line<W: Write>(writer: &mut W, text: &str) -> std::io::Result<()> {
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn response_text(response: &Response) -> String {
    serde_json::to_string(response)
        .unwrap_or_else(|e| format!(r#"{{"ok":false,"error":"serialize: {e}"}}"#))
}

/// Traces returned by a `trace` request that does not say how many.
const DEFAULT_TRACE_COUNT: usize = 16;

/// Parse one request line and run it against the engine.
pub fn dispatch(line: &str, engine: &QueryEngine) -> Response {
    match serde_json::from_str(line) {
        Ok(request) => execute_request(request, engine),
        Err(e) => Response::Error(format!("bad request: {e}")),
    }
}

/// Serve one request line end to end — parse, execute, serialize — and
/// return the serialized response plus whether it acknowledged a shutdown.
/// Query workloads (`query` / `topk` / `dquery`) record a stage trace that
/// additionally covers `parse` and `serialize`, the two wire stages only
/// this layer can see.
pub fn dispatch_line(line: &str, engine: &QueryEngine) -> (String, bool) {
    let mut tb = TraceBuilder::new();
    let parsed: Result<Request, _> = {
        let _span = Span::enter(&mut tb, Stage::Parse);
        serde_json::from_str(line)
    };
    let request = match parsed {
        Ok(r) => r,
        // Malformed lines carry no workload to attribute a trace to.
        Err(e) => {
            return (
                response_text(&Response::Error(format!("bad request: {e}"))),
                false,
            )
        }
    };
    let (response, traced) = match request {
        Request::Query(q) => (
            match engine.execute_traced(&q, &mut tb) {
                Ok(resp) => Response::Query(resp),
                Err(e) => Response::Error(e),
            },
            true,
        ),
        Request::TopK(q) => (
            match engine.execute_topk_traced(&q, &mut tb) {
                Ok(resp) => Response::TopK(resp),
                Err(e) => Response::Error(e),
            },
            true,
        ),
        Request::DQuery(q) => (
            match engine.execute_dquery_traced(&q, &mut tb) {
                Ok(resp) => Response::DQuery(resp),
                Err(e) => Response::Error(e),
            },
            true,
        ),
        other => (execute_request(other, engine), false),
    };
    let is_bye = matches!(response, Response::Bye);
    let text = {
        let _span = Span::enter(&mut tb, Stage::Serialize);
        response_text(&response)
    };
    if traced {
        engine.record_trace(tb);
    }
    (text, is_bye)
}

/// Run one parsed request against the engine (query workloads take their
/// untraced paths; [`dispatch_line`] routes them through the traced ones).
fn execute_request(request: Request, engine: &QueryEngine) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Query(q) => match engine.execute(&q) {
            Ok(resp) => Response::Query(resp),
            Err(e) => Response::Error(e),
        },
        Request::TopK(q) => match engine.execute_topk(&q) {
            Ok(resp) => Response::TopK(resp),
            Err(e) => Response::Error(e),
        },
        Request::DQuery(q) => match engine.execute_dquery(&q) {
            Ok(resp) => Response::DQuery(resp),
            Err(e) => Response::Error(e),
        },
        Request::Batch(queries) => match engine.execute_batch(&queries) {
            Ok(results) => Response::Batch(results),
            Err(e) => Response::Error(e),
        },
        Request::Update(updates) => match engine.apply_updates(&updates) {
            Ok(resp) => Response::Update(resp),
            Err(e) => Response::Error(e),
        },
        Request::Reload { path } => match reload_from(path, engine) {
            Ok(resp) => Response::Reload(resp),
            Err(e) => Response::Error(e),
        },
        Request::Stats => Response::Stats(engine.stats()),
        Request::Metrics { format } => match format {
            MetricsFormat::Json => Response::Metrics(MetricsReport::from(&engine.metrics())),
            MetricsFormat::Prom => Response::MetricsText(render_prometheus(&engine.metrics())),
        },
        Request::Trace { n } => Response::Traces(
            engine
                .traces(n.unwrap_or(DEFAULT_TRACE_COUNT))
                .iter()
                .map(TraceRow::from)
                .collect(),
        ),
        Request::Shutdown => Response::Bye,
    }
}

/// Load a graph file (format sniffed from its magic bytes — v2 binary,
/// v1 binary, or text) and swap it into the engine. Without an explicit
/// `path`, re-reads the file the server was started from. Records the
/// load path (mmap vs heap) and latency so `stats`/`metrics` reflect
/// how the served graph got into memory.
fn reload_from(path: Option<String>, engine: &QueryEngine) -> Result<ReloadResponse, String> {
    let path = path.or_else(|| engine.source()).ok_or_else(|| {
        "reload needs a `path` (this server was not started from a graph file)".to_owned()
    })?;
    let start = std::time::Instant::now();
    let (graph, report) =
        load_graph_auto(&path).map_err(|e| format!("cannot load `{path}`: {e}"))?;
    let micros = start.elapsed().as_micros() as u64;
    let resp = engine.reload_graph(std::sync::Arc::new(graph));
    engine.record_load(report.mmapped, micros);
    engine.set_source(path);
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use relcomp_ugraph::{GraphBuilder, NodeId};

    fn engine() -> Arc<QueryEngine> {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
        Arc::new(QueryEngine::new(
            Arc::new(b.build()),
            EngineConfig {
                threads: 2,
                ..Default::default()
            },
        ))
    }

    #[test]
    fn dispatch_covers_update_and_reload() {
        let e = engine();
        assert!(matches!(
            dispatch(
                r#"{"cmd":"update","updates":[{"s":0,"t":1,"prob":0.4}]}"#,
                &e
            ),
            Response::Update(_)
        ));
        assert_eq!(e.epoch(), 1);
        // Unknown edge: error, no epoch bump.
        assert!(matches!(
            dispatch(
                r#"{"cmd":"update","updates":[{"s":2,"t":0,"prob":0.4}]}"#,
                &e
            ),
            Response::Error(_)
        ));
        assert_eq!(e.epoch(), 1);
        // Reload without a recorded source file fails cleanly.
        assert!(matches!(
            dispatch(r#"{"cmd":"reload"}"#, &e),
            Response::Error(_)
        ));
        // Reload from an explicit (missing) path fails cleanly too.
        assert!(matches!(
            dispatch(r#"{"cmd":"reload","path":"/nonexistent.ug"}"#, &e),
            Response::Error(_)
        ));
    }

    #[test]
    fn dispatch_covers_every_command() {
        let e = engine();
        assert_eq!(dispatch(r#"{"cmd":"ping"}"#, &e), Response::Pong);
        assert!(matches!(
            dispatch(r#"{"cmd":"query","s":0,"t":2,"samples":500,"seed":1}"#, &e),
            Response::Query(_)
        ));
        assert!(matches!(
            dispatch(
                r#"{"cmd":"batch","queries":[{"s":0,"t":1},{"s":0,"t":2}]}"#,
                &e
            ),
            Response::Batch(_)
        ));
        assert!(matches!(
            dispatch(r#"{"cmd":"topk","s":0,"k":2,"samples":500,"seed":1}"#, &e),
            Response::TopK(_)
        ));
        assert!(matches!(
            dispatch(r#"{"cmd":"dquery","s":0,"t":2,"d":2,"samples":500}"#, &e),
            Response::DQuery(_)
        ));
        // `dquery` without the required hop bound is a parse error.
        assert!(matches!(
            dispatch(r#"{"cmd":"dquery","s":0,"t":2}"#, &e),
            Response::Error(_)
        ));
        assert!(matches!(
            dispatch(r#"{"cmd":"stats"}"#, &e),
            Response::Stats(_)
        ));
        assert_eq!(dispatch(r#"{"cmd":"shutdown"}"#, &e), Response::Bye);
        assert!(matches!(dispatch("garbage", &e), Response::Error(_)));
        assert!(matches!(
            dispatch(r#"{"cmd":"query","s":0,"t":77}"#, &e),
            Response::Error(_)
        ));
    }

    #[test]
    fn dispatch_covers_metrics_and_trace() {
        let e = engine();
        assert!(matches!(
            dispatch(r#"{"cmd":"query","s":0,"t":2,"samples":500,"seed":1}"#, &e),
            Response::Query(_)
        ));
        let Response::Metrics(report) = dispatch(r#"{"cmd":"metrics"}"#, &e) else {
            panic!("expected metrics response");
        };
        assert_eq!(report.queries_total, 1);
        assert!(report
            .histogram("relcomp_query_latency_micros", &[("workload", "st")])
            .is_some());
        let Response::MetricsText(text) = dispatch(r#"{"cmd":"metrics","format":"prom"}"#, &e)
        else {
            panic!("expected prometheus text response");
        };
        assert!(text.contains("# TYPE relcomp_queries_total counter"));
        let Response::Traces(traces) = dispatch(r#"{"cmd":"trace","last":5}"#, &e) else {
            panic!("expected trace response");
        };
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].workload, "st");
        assert!(matches!(
            dispatch(r#"{"cmd":"metrics","format":"xml"}"#, &e),
            Response::Error(_)
        ));
    }

    #[test]
    fn dispatch_line_traces_wire_stages() {
        let e = engine();
        let (text, bye) =
            dispatch_line(r#"{"cmd":"query","s":0,"t":2,"samples":500,"seed":1}"#, &e);
        assert!(!bye);
        assert!(text.contains(r#""kind":"query""#));

        let traces = e.traces(4);
        assert_eq!(traces.len(), 1);
        let stages: Vec<&str> = traces[0].stages.iter().map(|s| s.stage.label()).collect();
        assert!(stages.contains(&"parse"));
        assert!(stages.contains(&"serialize"));
        assert!(stages.contains(&"sample"));

        // Non-query verbs serve without recording traces.
        let (text, bye) = dispatch_line(r#"{"cmd":"stats"}"#, &e);
        assert!(!bye && text.contains(r#""kind":"stats""#));
        assert_eq!(e.traces(16).len(), 1);

        let (text, bye) = dispatch_line(r#"{"cmd":"shutdown"}"#, &e);
        assert!(bye && text.contains(r#""kind":"bye""#));
        let (text, bye) = dispatch_line("garbage", &e);
        assert!(!bye && text.contains("bad request"));
    }

    #[test]
    fn reload_reports_load_path_and_latency() {
        let dir = std::env::temp_dir().join("relcomp_serve_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.ug2");

        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.8).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.8).unwrap();
        relcomp_ugraph::write_graph_v2(&b.build(), &path).unwrap();

        let e = engine();
        // Nothing loaded from disk yet: stats report no load path.
        let before = e.stats();
        assert_eq!(before.load_path, "");
        assert_eq!(before.load_micros, 0);

        let req = format!(r#"{{"cmd":"reload","path":"{}"}}"#, path.display());
        assert!(matches!(dispatch(&req, &e), Response::Reload(_)));

        let after = e.stats();
        let expect = if cfg!(all(unix, target_endian = "little")) {
            "mmap"
        } else {
            "heap"
        };
        assert_eq!(after.load_path, expect);
        assert!(after.load_micros > 0);
        let metrics = e.metrics();
        assert!(metrics.gauges.iter().any(|g| {
            g.name == "relcomp_graph_load_micros"
                && g.labels.iter().any(|(k, v)| *k == "path" && v == expect)
        }));
        std::fs::remove_file(&path).ok();
    }
}
