//! End-to-end test of the query service over a real TCP socket:
//! server + engine + protocol + client, exercised the way `relcomp serve`
//! wires them.

use relcomp_serve::engine::{EngineConfig, QueryEngine};
use relcomp_serve::protocol::{DistanceQueryRequest, EdgeProbUpdate, QueryRequest, TopKRequest};
use relcomp_serve::{Client, PersistConfig, Server, ServerMode, ServerOptions, TenantRegistry};
use relcomp_ugraph::{write_graph_v2, Dataset, GraphBuilder, NodeId, UncertainGraph};
use std::sync::Arc;
use std::time::Duration;

fn diamond() -> UncertainGraph {
    let mut b = GraphBuilder::new(4);
    b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
    b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
    b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
    b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
    b.build()
}

fn start(graph: UncertainGraph, threads: usize) -> (std::net::SocketAddr, Arc<QueryEngine>) {
    let engine = Arc::new(QueryEngine::new(
        Arc::new(graph),
        EngineConfig {
            threads,
            ..Default::default()
        },
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let (addr, _handle) = server.spawn().expect("spawn");
    (addr, engine)
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client
}

#[test]
fn full_session_query_batch_stats_shutdown() {
    let (addr, _engine) = start(diamond(), 2);
    let mut client = connect(addr);
    client.ping().expect("ping");

    // Single query, then the identical query again: the repeat must be a
    // cache hit with a bit-identical estimate.
    let q = QueryRequest {
        estimator: Some("mc".into()),
        samples: Some(4000),
        seed: Some(7),
        ..QueryRequest::new(0, 3)
    };
    let first = client.query(q.clone()).expect("first query");
    assert!((0.0..=1.0).contains(&first.reliability));
    assert_eq!(first.samples, 4000);
    assert!(!first.cached);
    let second = client.query(q).expect("second query");
    assert!(second.cached);
    assert_eq!(first.reliability.to_bits(), second.reliability.to_bits());

    // Batch sharing a source (amortized sampling) + one failing query.
    let batch = client
        .batch(vec![
            QueryRequest::new(0, 1),
            QueryRequest::new(0, 2),
            QueryRequest::new(0, 99),
        ])
        .expect("batch");
    assert_eq!(batch.len(), 3);
    assert!(batch[0].is_ok() && batch[1].is_ok());
    assert!(batch[2].as_ref().unwrap_err().contains("out of range"));

    // Stats reflect the session.
    let stats = client.stats().expect("stats");
    assert!(stats.queries >= 4);
    assert!(stats.cache_hits >= 1);
    assert!(stats.hit_rate() > 0.0);
    assert_eq!(stats.nodes, 4);
    assert_eq!(stats.edges, 4);

    // A second concurrent connection works.
    let mut other = connect(addr);
    other.ping().expect("second connection ping");

    client.shutdown().expect("shutdown");
}

#[test]
fn adaptive_query_over_the_wire_reports_session_fields() {
    let (addr, _engine) = start(diamond(), 2);
    let mut client = connect(addr);

    // eps-targeted query: must stop early, carry a CI, and respect the
    // declared cap.
    let q = QueryRequest {
        estimator: Some("mc".into()),
        eps: Some(0.1),
        samples: Some(50_000),
        seed: Some(3),
        ..QueryRequest::new(0, 3)
    };
    let resp = client.query(q.clone()).expect("adaptive query");
    assert_eq!(resp.stop_reason, "converged");
    assert!(resp.samples < 50_000, "used {}", resp.samples);
    let hw = resp.half_width.expect("wire carries the CI");
    assert!(hw > 0.0 && hw <= 0.1 * resp.reliability + 1e-12);
    assert!(resp.variance.is_some());

    // The repeat is a cache hit replaying the same session outcome.
    let again = client.query(q).expect("repeat");
    assert!(again.cached);
    assert_eq!(again.samples, resp.samples);
    assert_eq!(again.stop_reason, "converged");

    // A time-capped query stops at the first barrier but still answers.
    let timed = client
        .query(QueryRequest {
            estimator: Some("mc".into()),
            time_budget_ms: Some(1),
            samples: Some(1_000_000),
            seed: Some(9),
            ..QueryRequest::new(0, 3)
        })
        .expect("time-capped query");
    assert!(timed.samples <= 1_000_000);
    assert!(
        timed.stop_reason == "time_limit" || timed.stop_reason == "max_samples",
        "{}",
        timed.stop_reason
    );

    client.shutdown().expect("shutdown");
}

#[test]
fn server_thread_count_does_not_change_answers() {
    // Same graph, same wire query, different engine thread counts:
    // answers must be bit-identical (the paper's reproducibility story
    // survives the serving layer).
    let reliability: Vec<u64> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let graph = Dataset::LastFm.generate_with_scale(0.02, 42);
            let (addr, _engine) = start(graph, threads);
            let mut client = connect(addr);
            let resp = client
                .query(QueryRequest {
                    estimator: Some("mc".into()),
                    samples: Some(3000),
                    seed: Some(9),
                    ..QueryRequest::new(0, 3)
                })
                .expect("query");
            client.shutdown().ok();
            resp.reliability.to_bits()
        })
        .collect();
    assert_eq!(reliability[0], reliability[1]);
}

#[test]
fn live_update_bumps_epoch_invalidates_cache_and_migrates_residents() {
    let (addr, _engine) = start(diamond(), 2);
    let mut client = connect(addr);

    // Warm the cache for the affected pair with a resident (ProbTree)
    // and a sampler-path (MC) estimator.
    let pt = QueryRequest {
        estimator: Some("probtree".into()),
        samples: Some(20_000),
        seed: Some(5),
        ..QueryRequest::new(0, 3)
    };
    let mc = QueryRequest {
        estimator: Some("mc".into()),
        ..pt.clone()
    };
    let pt_before = client.query(pt.clone()).expect("probtree warm");
    let mc_before = client.query(mc.clone()).expect("mc warm");
    assert!(client.query(pt.clone()).expect("probtree repeat").cached);
    assert!(client.query(mc.clone()).expect("mc repeat").cached);
    assert_eq!(client.stats().expect("stats").epoch, 0);

    // Throttle both paths into node 3 down to 0.05: R(0, 3) collapses
    // from ~0.41 to at most 2 * 0.05.
    let update = client
        .update(vec![
            EdgeProbUpdate {
                s: 1,
                t: 3,
                prob: 0.05,
            },
            EdgeProbUpdate {
                s: 2,
                t: 3,
                prob: 0.05,
            },
        ])
        .expect("update");
    assert_eq!(update.epoch, 1);
    assert_eq!(update.edges_updated, 2);
    // The resident ProbTree index migrated incrementally — no eviction,
    // no full rebuild on the incremental path.
    let probtree = update
        .migrated
        .iter()
        .find(|m| m.estimator == "ProbTree")
        .expect("ProbTree was resident when the update landed");
    assert_eq!(probtree.mode, "incremental");

    // Stats see the new epoch; the cached answers for (0, 3) are stale
    // (old epoch key) so both paths recompute against the new graph.
    let stats = client.stats().expect("stats after update");
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.updates, 1);
    assert!(stats.resident_estimators >= 1, "ProbTree stayed resident");
    assert!(stats.resident_bytes > 0);

    for (label, req, before) in [
        ("probtree", pt, pt_before.reliability),
        ("mc", mc, mc_before.reliability),
    ] {
        let after = client.query(req.clone()).expect(label);
        assert!(!after.cached, "{label}: epoch bump must force a recompute");
        assert!(
            after.reliability < 0.12,
            "{label}: answer {} must reflect the new probabilities (was {before})",
            after.reliability
        );
        assert!(client.query(req).expect(label).cached, "{label} re-caches");
    }

    client.shutdown().expect("shutdown");
}

#[test]
fn metrics_and_traces_reflect_a_query_burst() {
    let (addr, _engine) = start(diamond(), 2);
    let mut client = connect(addr);

    let before = client.metrics().expect("metrics before");
    assert_eq!(before.queries_total, 0);

    // Burst over every workload: three distinct st queries, one repeat
    // (cache hit), a topk, and a dquery.
    for t in [1u32, 2, 3] {
        client
            .query(QueryRequest {
                estimator: Some("mc".into()),
                samples: Some(2000),
                seed: Some(1),
                ..QueryRequest::new(0, t)
            })
            .expect("query");
    }
    let repeat = QueryRequest {
        estimator: Some("mc".into()),
        samples: Some(2000),
        seed: Some(1),
        ..QueryRequest::new(0, 3)
    };
    assert!(client.query(repeat).expect("repeat").cached);
    client
        .topk(TopKRequest {
            k: Some(2),
            samples: Some(1000),
            seed: Some(2),
            ..TopKRequest::new(0)
        })
        .expect("topk");
    client
        .dquery(DistanceQueryRequest {
            samples: Some(1000),
            seed: Some(3),
            ..DistanceQueryRequest::new(0, 3, 2)
        })
        .expect("dquery");

    let after = client.metrics().expect("metrics after burst");
    assert_eq!(after.queries_total, 6);

    // The cache hit lands under the st workload's `hit` outcome.
    let hit = after
        .counters
        .iter()
        .find(|c| {
            c.name == "relcomp_queries_total"
                && c.labels.contains(&("workload".into(), "st".into()))
                && c.labels.contains(&("outcome".into(), "hit".into()))
        })
        .expect("hit counter");
    assert_eq!(hit.value, 1);

    // Latency histograms moved, per workload and merged. Server-side
    // metrics carry the tenant's graph label.
    let st = after
        .histogram(
            "relcomp_query_latency_micros",
            &[("graph", "default"), ("workload", "st")],
        )
        .expect("st histogram");
    assert_eq!(st.count, 4);
    assert!(st.p50 > 0);
    assert!(st.p99 >= st.p50);
    for (workload, count) in [("topk", 1), ("dquery", 1), ("all", 6)] {
        let h = after
            .histogram(
                "relcomp_query_latency_micros",
                &[("graph", "default"), ("workload", workload)],
            )
            .unwrap_or_else(|| panic!("{workload} histogram"));
        assert_eq!(h.count, count, "{workload}");
    }

    // Wire traces: newest first, wire stages included, cache hit visible.
    let traces = client.traces(Some(3)).expect("traces");
    assert_eq!(traces.len(), 3);
    assert_eq!(traces[0].workload, "dquery");
    assert_eq!(traces[1].workload, "topk");
    assert_eq!(traces[2].workload, "st");
    assert!(traces[2].cached, "repeat query traced as a cache hit");
    for t in &traces {
        assert!(t.ok);
        let stages: Vec<&str> = t.stages.iter().map(|s| s.stage.as_str()).collect();
        assert!(stages.contains(&"parse"), "{stages:?}");
        assert!(stages.contains(&"serialize"), "{stages:?}");
        assert!(t.nanos > 0);
    }
    // The uncached dquery actually sampled; the cache hit did not.
    assert!(traces[0]
        .stages
        .iter()
        .any(|s| s.stage == "sample" && s.nanos > 0));
    assert!(!traces[2].stages.iter().any(|s| s.stage == "sample"));

    // Prometheus exposition over the wire: well-formed, no duplicate
    // series under the mixed workload.
    let prom = client.metrics_prom().expect("prom");
    assert!(prom.contains("# TYPE relcomp_queries_total counter"));
    assert!(prom.contains("# TYPE relcomp_query_latency_micros histogram"));
    let mut series: Vec<&str> = prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| l.rsplit_once(' ').expect("sample line").0)
        .collect();
    let total = series.len();
    series.sort_unstable();
    series.dedup();
    assert_eq!(series.len(), total, "duplicate series in prom exposition");

    // `update` bumps the epoch but must not reset counters or histograms.
    client
        .update(vec![EdgeProbUpdate {
            s: 1,
            t: 3,
            prob: 0.3,
        }])
        .expect("update");
    let post = client.metrics().expect("metrics after update");
    assert_eq!(post.queries_total, 6);
    assert_eq!(post.counter_total("relcomp_updates_total"), 1);
    let st_post = post
        .histogram(
            "relcomp_query_latency_micros",
            &[("graph", "default"), ("workload", "st")],
        )
        .expect("st histogram after update");
    assert_eq!(st_post.count, 4);
    assert_eq!(st_post.sum, st.sum);

    client.shutdown().expect("shutdown");
}

/// Spawn a server in an explicit mode over a single default-tenant
/// engine; returns the address and the serve-loop thread handle.
fn start_mode(
    graph: UncertainGraph,
    mode: ServerMode,
) -> (
    std::net::SocketAddr,
    relcomp_serve::server::ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let engine = Arc::new(QueryEngine::new(
        Arc::new(graph),
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    ));
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::new(TenantRegistry::single(engine)),
        ServerOptions {
            mode,
            ..Default::default()
        },
    )
    .expect("bind");
    let shutdown = server.shutdown_handle();
    let (addr, handle) = server.spawn().expect("spawn");
    (addr, shutdown, handle)
}

#[test]
fn reactor_and_threaded_answers_are_bit_identical() {
    // The connection model must never touch the math: the same wire
    // query against both serve loops returns the same bits, including
    // across pipelined requests on one connection.
    let answers: Vec<(u64, bool, u64)> = [ServerMode::Reactor, ServerMode::Threaded]
        .into_iter()
        .map(|mode| {
            let (addr, _shutdown, handle) = start_mode(diamond(), mode);
            let mut client = connect(addr);
            let q = QueryRequest {
                estimator: Some("mc".into()),
                samples: Some(3000),
                seed: Some(11),
                ..QueryRequest::new(0, 3)
            };
            let first = client.query(q.clone()).expect("first");
            let again = client.query(q).expect("repeat");
            let topk = client
                .topk(TopKRequest {
                    k: Some(2),
                    samples: Some(1000),
                    seed: Some(2),
                    ..TopKRequest::new(0)
                })
                .expect("topk");
            client.shutdown().expect("shutdown");
            handle.join().expect("serve thread").expect("serve result");
            (
                first.reliability.to_bits(),
                again.cached,
                topk.targets[0].reliability.to_bits(),
            )
        })
        .collect();
    assert_eq!(answers[0].0, answers[1].0, "st reliability differs");
    assert!(answers[0].1 && answers[1].1, "repeat must hit the cache");
    assert_eq!(answers[0].2, answers[1].2, "topk reliability differs");
}

#[test]
fn shutdown_lands_under_accept_pressure() {
    // Regression for the shutdown race: with a stream of connections
    // hammering accept, the poke connection can be lost in the backlog.
    // The level-triggered loops (both modes) must still exit promptly.
    for mode in [ServerMode::Reactor, ServerMode::Threaded] {
        let (addr, shutdown, handle) = start_mode(diamond(), mode);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hammers: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        // Churn: connect, maybe ping, drop.
                        let _ = std::net::TcpStream::connect(addr);
                    }
                })
            })
            .collect();
        // Let the pressure build, then pull the plug.
        std::thread::sleep(Duration::from_millis(50));
        shutdown.shutdown();

        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            tx.send(handle.join()).ok();
        });
        let joined = rx.recv_timeout(Duration::from_secs(10));
        stop.store(true, std::sync::atomic::Ordering::Release);
        for h in hammers {
            h.join().expect("hammer thread");
        }
        joined
            .unwrap_or_else(|_| panic!("{mode:?} serve loop hung after shutdown"))
            .expect("serve thread")
            .expect("serve result");
    }
}

#[test]
fn tenancy_and_warm_cache_survive_a_restart() {
    let dir = std::env::temp_dir().join(format!("relcomp_e2e_warm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("served.ug2");
    write_graph_v2(&diamond(), &graph_path).unwrap();
    let persist = PersistConfig::new(dir.join("warm"));

    let template = EngineConfig {
        threads: 2,
        ..Default::default()
    };
    let q = QueryRequest {
        estimator: Some("mc".into()),
        samples: Some(4000),
        seed: Some(21),
        ..QueryRequest::new(0, 3)
    };

    // First server lifetime: load a tenant over the wire, warm its
    // cache, shut down (which flushes the final snapshot).
    let first_reliability;
    {
        let tenants = Arc::new(TenantRegistry::new(template, Some(persist.clone())));
        let server = Server::bind_with(
            "127.0.0.1:0",
            tenants,
            ServerOptions {
                persist: Some(persist.clone()),
                ..Default::default()
            },
        )
        .expect("bind");
        let (addr, handle) = server.spawn().expect("spawn");
        let mut client = connect(addr);

        let loaded = client
            .load_graph("social", graph_path.to_str().unwrap(), Some(8))
            .expect("load");
        assert_eq!(loaded.nodes, 4);
        assert_eq!(loaded.quota, 8);
        assert_eq!(loaded.warm_entries, 0, "first boot is cold");
        let using = client.use_graph("social").expect("use");
        assert_eq!(using.nodes, 4);

        let first = client.query(q.clone()).expect("query");
        assert!(!first.cached);
        first_reliability = first.reliability;
        assert!(client.query(q.clone()).expect("repeat").cached);

        // A second tenant over the same file keeps an isolated cache:
        // the identical query misses there.
        client
            .load_graph("staging", graph_path.to_str().unwrap(), None)
            .expect("load staging");
        let mut other = connect(addr);
        other.use_graph("staging").expect("use staging");
        assert!(
            !other.query(q.clone()).expect("staging query").cached,
            "tenant caches must be isolated"
        );
        other.unload_graph("staging").expect("unload staging");
        assert!(
            other.use_graph("staging").is_err(),
            "unloaded tenant is gone"
        );

        client.shutdown().expect("shutdown");
        handle.join().expect("serve thread").expect("serve result");
    }

    // Second lifetime: same persist dir, fresh registry. Loading the
    // tenant re-admits the snapshot and the warm query is a bit-identical
    // cache hit without recomputing.
    {
        let tenants = Arc::new(TenantRegistry::new(template, Some(persist.clone())));
        let server = Server::bind_with(
            "127.0.0.1:0",
            tenants,
            ServerOptions {
                persist: Some(persist),
                ..Default::default()
            },
        )
        .expect("rebind");
        let (addr, handle) = server.spawn().expect("respawn");
        let mut client = connect(addr);

        let loaded = client
            .load_graph("social", graph_path.to_str().unwrap(), None)
            .expect("reload tenant");
        assert!(
            loaded.warm_entries >= 1,
            "snapshot must re-admit the cached answer, got {}",
            loaded.warm_entries
        );
        client.use_graph("social").expect("use");
        let warm = client.query(q).expect("warm query");
        assert!(warm.cached, "restart must serve from the warm cache");
        assert_eq!(
            warm.reliability.to_bits(),
            first_reliability.to_bits(),
            "warm answer must be bit-identical across the restart"
        );

        client.shutdown().expect("shutdown");
        handle.join().expect("serve thread").expect("serve result");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_and_unknown_requests_get_errors_not_disconnects() {
    let (addr, _engine) = start(diamond(), 1);
    let mut client = connect(addr);

    // Server-side error (bad estimator) surfaces as ClientError::Server...
    let err = client
        .query(QueryRequest {
            estimator: Some("mcmc".into()),
            ..QueryRequest::new(0, 3)
        })
        .expect_err("unknown estimator must fail");
    assert!(err.to_string().contains("unknown estimator"), "{err}");

    // ...and the connection is still usable afterwards.
    client.ping().expect("connection survives errors");
    client.shutdown().expect("shutdown");
}

#[test]
fn unload_while_in_use_yields_clean_errors_in_both_modes() {
    // Regression: a connection `use`-ing a tenant that another
    // connection unloads must get a clean `not loaded` protocol error on
    // its next query — not a panic, a hang, or a dropped connection —
    // and must be able to re-point itself at a live tenant afterwards.
    let dir = std::env::temp_dir().join(format!("relcomp_e2e_unload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("served.ug2");
    write_graph_v2(&diamond(), &graph_path).unwrap();

    for mode in [ServerMode::Reactor, ServerMode::Threaded] {
        let (addr, _shutdown, handle) = start_mode(diamond(), mode);
        let mut victim = connect(addr);
        let mut admin = connect(addr);

        admin
            .load_graph("social", graph_path.to_str().unwrap(), None)
            .expect("load");
        victim.use_graph("social").expect("use");
        assert!(!victim.query(QueryRequest::new(0, 3)).expect("query").cached);

        // The rug-pull: admin unloads the tenant the victim is using.
        admin.unload_graph("social").expect("unload");

        let err = victim
            .query(QueryRequest::new(0, 3))
            .expect_err("query against a dead tenant must fail cleanly");
        match &err {
            relcomp_serve::ClientError::Server(msg) => {
                assert!(
                    msg.contains("not loaded"),
                    "{mode:?}: unexpected error {msg}"
                )
            }
            other => panic!("{mode:?}: expected a protocol error, got {other:?}"),
        }

        // The connection survives and can re-point at a live tenant.
        victim.use_graph("default").expect("use default");
        assert!(
            victim
                .query(QueryRequest::new(0, 3))
                .expect("recovery query")
                .samples
                > 0
        );

        victim.shutdown().expect("shutdown");
        handle.join().expect("serve thread").expect("serve result");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn final_flush_covers_a_query_in_flight_at_shutdown() {
    // Regression: threaded-mode connection threads were detached, so a
    // shutdown arriving on one connection let the final warm-cache flush
    // run while another connection was still mid-query. That answer was
    // served to its client but silently missing after a clean restart.
    let dir = std::env::temp_dir().join(format!("relcomp_e2e_drain_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("served.ug2");
    // A long chain makes the fixed-budget query slow enough (hundreds of
    // milliseconds) that the shutdown reliably lands mid-query.
    let chain = {
        let n = 1500;
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 0.999)
                .unwrap();
        }
        b.build()
    };
    let last = chain.num_nodes() as u32 - 1;
    write_graph_v2(&chain, &graph_path).unwrap();
    let persist = PersistConfig::new(dir.join("warm"));
    let template = EngineConfig {
        threads: 2,
        ..Default::default()
    };
    let slow = QueryRequest {
        estimator: Some("mc".into()),
        samples: Some(400_000),
        seed: Some(9),
        ..QueryRequest::new(0, last)
    };

    let first_bits;
    {
        let tenants = Arc::new(TenantRegistry::new(template, Some(persist.clone())));
        let server = Server::bind_with(
            "127.0.0.1:0",
            tenants,
            ServerOptions {
                mode: ServerMode::Threaded,
                persist: Some(persist.clone()),
                ..Default::default()
            },
        )
        .expect("bind");
        let shutdown = server.shutdown_handle();
        let (addr, handle) = server.spawn().expect("spawn");

        let mut loader = connect(addr);
        loader
            .load_graph("social", graph_path.to_str().unwrap(), None)
            .expect("load");

        // One connection fires a slow query; another pulls the plug
        // while it is still sampling. The in-flight query must both
        // answer its client and land in the final snapshot.
        let slow_q = slow.clone();
        let worker = std::thread::spawn(move || {
            let mut b = connect(addr);
            b.use_graph("social").expect("use");
            b.query(slow_q).expect("in-flight query still answers")
        });
        std::thread::sleep(Duration::from_millis(20));
        shutdown.shutdown();
        let answer = worker.join().expect("worker thread");
        handle.join().expect("serve thread").expect("serve result");
        assert!(!answer.cached);
        first_bits = answer.reliability.to_bits();
    }

    // Restart from the same persist dir: the in-flight answer is warm.
    {
        let tenants = Arc::new(TenantRegistry::new(template, Some(persist.clone())));
        let server = Server::bind_with(
            "127.0.0.1:0",
            tenants,
            ServerOptions {
                mode: ServerMode::Threaded,
                persist: Some(persist),
                ..Default::default()
            },
        )
        .expect("rebind");
        let (addr, handle) = server.spawn().expect("respawn");
        let mut client = connect(addr);
        let loaded = client
            .load_graph("social", graph_path.to_str().unwrap(), None)
            .expect("reload tenant");
        assert!(
            loaded.warm_entries >= 1,
            "the in-flight answer was lost by the final flush, warm={}",
            loaded.warm_entries
        );
        client.use_graph("social").expect("use");
        let warm = client.query(slow).expect("warm query");
        assert!(warm.cached, "restart must serve the drained answer warm");
        assert_eq!(warm.reliability.to_bits(), first_bits);
        client.shutdown().expect("shutdown");
        handle.join().expect("serve thread").expect("serve result");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_request_line_gets_a_structured_error_before_close() {
    // Regression: the reactor used to drop a connection silently the
    // moment a request line crossed MAX_LINE_BYTES. The client must
    // instead receive one structured JSON error line, then a clean close.
    use std::io::{Read, Write};
    let (addr, shutdown, handle) = start_mode(diamond(), ServerMode::Reactor);
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    // Exactly one byte past the 16 MiB line limit, never
    // newline-terminated. Sending limit+1 bytes means the server can
    // only trip the check after reading everything, so the error line
    // cannot race a reset triggered by unread bytes.
    let chunk = vec![b'x'; 1 << 20];
    for _ in 0..16 {
        stream.write_all(&chunk).expect("write chunk");
    }
    stream.write_all(b"x").expect("write final byte");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read farewell");
    assert!(
        reply.contains(r#""ok":false"#) && reply.contains("16 MiB limit"),
        "expected a structured oversize error, got {reply:?}"
    );

    // The offender is gone but the server itself must keep serving.
    let mut client = connect(addr);
    client.ping().expect("server survives an oversized line");
    drop(client);
    shutdown.shutdown();
    handle.join().expect("serve thread").expect("serve result");
}
