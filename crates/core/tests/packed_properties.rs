//! Property tests for the packed 64-world sampling layer: sub-word fixed
//! budgets are bit-identical to scalar MC, word-sized and adaptive
//! budgets agree statistically, and the two mask-drawing strategies
//! (geometric skipping vs dense fill) draw the same distribution.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::exact::exact_reliability;
use relcomp_core::mc::McSampling;
use relcomp_core::packed::{dense_mask, geometric_mask, PackedMcSampling};
use relcomp_core::session::SampleBudget;
use relcomp_core::Estimator;
use relcomp_ugraph::{GraphBuilder, NodeId, UncertainGraph};
use std::sync::Arc;

/// Strategy: a random small digraph as (n, edge list) with valid probs.
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..9).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.05f64..1.0);
        (Just(n), proptest::collection::vec(edge, 1..14))
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> UncertainGraph {
    let mut b = GraphBuilder::new(n).duplicate_policy(relcomp_ugraph::DuplicatePolicy::CombineOr);
    for &(u, v, p) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fixed budgets below one 64-world word never engage the packed
    /// path, so the packed estimator must reproduce scalar MC bit for
    /// bit: same coin stream, same hit fraction, same sample count.
    #[test]
    fn sub_word_fixed_k_is_bit_identical_to_scalar(
        (n, edges) in small_digraph(),
        seed in 0u64..500,
        k in 1usize..64,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let mut scalar = McSampling::new(Arc::clone(&g));
        let mut packed = PackedMcSampling::new(Arc::clone(&g));
        let a = scalar.estimate(s, t, k, &mut ChaCha8Rng::seed_from_u64(seed));
        let b = packed.estimate(s, t, k, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
        prop_assert_eq!(a.samples, b.samples);
    }

    /// Word-sized fixed budgets run the packed kernel; the worlds differ
    /// from scalar MC's but the estimate concentrates on the same truth.
    /// 2.5 / sqrt(k) is five Bernoulli standard deviations at the
    /// worst-case variance p = 1/2.
    #[test]
    fn packed_fixed_k_concentrates_near_exact(
        (n, edges) in small_digraph(),
        seed in 0u64..500,
        words in 2usize..24,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let exact = exact_reliability(&g, s, t);
        let k = words * 64;
        let mut packed = PackedMcSampling::new(Arc::clone(&g));
        let est = packed.estimate(s, t, k, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(est.samples, k);
        prop_assert!(
            (est.reliability - exact).abs() <= 2.5 / (k as f64).sqrt(),
            "packed {} vs exact {} at k = {k}", est.reliability, exact,
        );
    }

    /// Under adaptive budgets the packed session stops on its Wilson
    /// interval; the reported estimate must sit within a small multiple
    /// of that half-width of the exact reliability (slack covers runs
    /// that hit the hard cap before converging).
    #[test]
    fn packed_adaptive_tracks_exact_within_half_width(
        (n, edges) in small_digraph(),
        seed in 0u64..500,
        eps in 0.05f64..0.4,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let exact = exact_reliability(&g, s, t);
        let mut packed = PackedMcSampling::new(Arc::clone(&g));
        let budget = SampleBudget::adaptive(eps, 20_000);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let est = packed.estimate_with(s, t, &budget, &mut rng);
        prop_assert!(est.is_valid());
        prop_assert!(est.samples <= 20_000);
        let hw = est.half_width.expect("bernoulli CI");
        prop_assert!(
            (est.reliability - exact).abs() <= 3.0 * hw + 0.02,
            "packed {} vs exact {} (half-width {hw})", est.reliability, exact,
        );
    }
}

/// The per-edge mask strategies must be interchangeable: a geometric-jump
/// word and a dense-fill word at the same `p` are both 64 independent
/// Bernoulli(p) bits. Compare overall hit frequency and every bit
/// position's frequency across many draws of each.
#[test]
fn geometric_and_dense_masks_are_identically_distributed() {
    // Below GEOMETRIC_THRESHOLD, so the production dispatch would pick
    // the geometric path and the dense fill is the cross-check.
    let p = 0.015;
    let draws = 200_000usize;
    let mut per_bit = [[0u32; 64]; 2];
    let mut totals = [0u64; 2];
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for _ in 0..draws {
        let words = [geometric_mask(&mut rng, p), dense_mask(&mut rng, p)];
        for (strategy, &w) in words.iter().enumerate() {
            totals[strategy] += u64::from(w.count_ones());
            let mut bits = w;
            while bits != 0 {
                per_bit[strategy][bits.trailing_zeros() as usize] += 1;
                bits &= bits - 1;
            }
        }
    }
    let expected_total = draws as f64 * 64.0 * p;
    for (name, total) in [("geometric", totals[0]), ("dense", totals[1])] {
        let err = (total as f64 - expected_total).abs() / expected_total;
        assert!(
            err < 0.02,
            "{name} total {total} vs expected {expected_total}"
        );
    }
    // Each bit position: expected 3000 hits, ±15% is > 8 standard
    // deviations — a positional bias (e.g. a low-bits-only bug in the
    // geometric jump) would blow far past it.
    let expected_bit = draws as f64 * p;
    for (strategy, counts) in per_bit.iter().enumerate() {
        for (bit, &count) in counts.iter().enumerate() {
            let err = (f64::from(count) - expected_bit).abs() / expected_bit;
            assert!(
                err < 0.15,
                "strategy {strategy} bit {bit}: {count} vs expected {expected_bit}",
            );
        }
    }
}
