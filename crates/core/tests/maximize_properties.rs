//! Property tests for the greedy reliability maximizer: on small random
//! digraphs the greedy pick is sandwiched between the unmodified graph
//! and the exhaustive oracle's exact optimum, its estimates track the
//! exact reliability of whatever it picked, and the whole result is
//! bit-identical across sampler thread counts.

use proptest::prelude::*;
use relcomp_core::exact::{exact_best_upgrade_set, exact_reliability};
use relcomp_core::maximize::{maximize, MaximizeOptions};
use relcomp_core::session::SampleBudget;
use relcomp_ugraph::{EdgeUpdate, GraphBuilder, NodeId, UncertainGraph};
use std::sync::Arc;

/// Strategy: a random small digraph as (n, edge list) with valid probs.
/// Edge counts stay single-digit so the exhaustive oracle (per-subset
/// `2^m` world enumeration) stays cheap.
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..11).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.05f64..1.0);
        (Just(n), proptest::collection::vec(edge, 1..10))
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> UncertainGraph {
    let mut b = GraphBuilder::new(n).duplicate_policy(relcomp_ugraph::DuplicatePolicy::CombineOr);
    for &(u, v, p) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
    }
    b.build()
}

/// The full upgrade pool the greedy ranks from: every edge with headroom
/// below `boost`, as an oracle-ready update list.
fn headroom_pool(graph: &UncertainGraph, boost: f64) -> Vec<EdgeUpdate> {
    graph
        .edges()
        .filter(|(_, _, _, p)| p.value() < boost)
        .map(|(e, _, _, _)| EdgeUpdate::new(e, boost).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exact reliability of the greedy's chosen set can never beat
    /// the oracle's exact optimum, never falls below the unmodified
    /// graph (upgrades are monotone), and the greedy's own sampled
    /// estimates stay within Monte Carlo tolerance of the exact value
    /// of what it actually picked.
    #[test]
    fn greedy_is_sandwiched_and_tracks_its_own_pick(
        (n, edges) in small_digraph(),
        seed in 0u64..200,
        k in 1usize..4,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let boost = 0.9;

        let mut opts = MaximizeOptions::new(k, boost, SampleBudget::adaptive(0.05, 20_000));
        opts.seed = seed;
        let result = maximize(&g, s, t, &opts).expect("valid inputs");

        let base_exact = exact_reliability(&g, s, t);
        let updates: Vec<EdgeUpdate> = result
            .chosen
            .iter()
            .map(|c| EdgeUpdate::new(c.edge, c.new_prob).unwrap())
            .collect();
        let chosen_exact = if updates.is_empty() {
            base_exact
        } else {
            exact_reliability(&g.with_updated_probs(&updates), s, t)
        };

        // Sandwich against the exhaustive oracle over the same pool.
        let pool = headroom_pool(&g, boost);
        let (_, oracle_rel) = exact_best_upgrade_set(&g, s, t, &pool, k);
        prop_assert!(chosen_exact <= oracle_rel + 1e-9,
            "greedy's true value {chosen_exact} beats the oracle {oracle_rel}");
        prop_assert!(chosen_exact >= base_exact - 1e-9,
            "upgrades are monotone but {chosen_exact} < base {base_exact}");

        // The estimates describe the pick: five worst-case Bernoulli
        // standard deviations at the adaptive cap, plus slack for the
        // final short confirmation rounds.
        let tol = 0.06;
        prop_assert!((result.base_reliability - base_exact).abs() <= tol,
            "base estimate {} vs exact {base_exact}", result.base_reliability);
        prop_assert!((result.reliability - chosen_exact).abs() <= tol,
            "final estimate {} vs exact of pick {chosen_exact}", result.reliability);
        prop_assert!((result.gain - (result.reliability - result.base_reliability)).abs() <= 1e-12);

        // Structural invariants of the pick itself.
        prop_assert!(result.chosen.len() <= k.min(pool.len()));
        let mut seen = std::collections::HashSet::new();
        for c in &result.chosen {
            prop_assert!(seen.insert(c.edge), "edge {:?} picked twice", c.edge);
            prop_assert!(c.old_prob < boost && (c.new_prob - boost).abs() < 1e-15);
        }
    }

    /// The entire greedy result — estimates, pick order, evaluation and
    /// sample counts — is bit-identical for 1, 2, and 4 sampler threads.
    #[test]
    fn greedy_is_bit_identical_across_thread_counts(
        (n, edges) in small_digraph(),
        seed in 0u64..200,
        k in 1usize..4,
    ) {
        let g = Arc::new(build(n, &edges));
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let runs: Vec<_> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                let mut opts =
                    MaximizeOptions::new(k, 0.9, SampleBudget::adaptive(0.05, 20_000));
                opts.seed = seed;
                opts.threads = threads;
                maximize(&g, s, t, &opts).expect("valid inputs")
            })
            .collect();
        for other in &runs[1..] {
            prop_assert_eq!(runs[0].base_reliability.to_bits(), other.base_reliability.to_bits());
            prop_assert_eq!(runs[0].reliability.to_bits(), other.reliability.to_bits());
            prop_assert_eq!(runs[0].gain.to_bits(), other.gain.to_bits());
            prop_assert_eq!(&runs[0].chosen, &other.chosen);
            prop_assert_eq!(runs[0].candidates, other.candidates);
            prop_assert_eq!(runs[0].evaluations, other.evaluations);
            prop_assert_eq!(runs[0].samples, other.samples);
            prop_assert_eq!(runs[0].separated_rounds, other.separated_rounds);
        }
    }
}
