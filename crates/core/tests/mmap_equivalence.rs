//! An mmap-backed graph must be indistinguishable from the heap-built
//! graph it was serialized from: bit-identical MC, top-k, and R_d
//! estimates under the same seed and budget, `same_topology` across the
//! CoW prob overlay, and working update-then-query epochs on the mmap
//! base. Property-tested over random digraphs so no fixed example hides
//! an endianness, alignment, or ordering bug in the v2 round trip.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use relcomp_core::distance_constrained::distance_constrained_with;
use relcomp_core::mc::McSampling;
use relcomp_core::session::SampleBudget;
use relcomp_core::Estimator;
use relcomp_ugraph::{
    load_graph_v2, write_graph_v2, EdgeId, EdgeUpdate, GraphBuilder, NodeId, UncertainGraph,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Strategy: a random small digraph as (n, edge list) with valid probs.
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..10).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.05f64..1.0);
        (Just(n), proptest::collection::vec(edge, 1..16))
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> UncertainGraph {
    let mut b = GraphBuilder::new(n).duplicate_policy(relcomp_ugraph::DuplicatePolicy::CombineOr);
    for &(u, v, p) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v), p).unwrap();
        }
    }
    b.build()
}

/// Write `graph` to a fresh v2 file and load it back, returning the
/// loaded graph and whether the load was zero-copy.
fn round_trip(graph: &UncertainGraph, tag: u64) -> (UncertainGraph, bool) {
    let dir = std::env::temp_dir().join("relcomp_mmap_equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(format!("case_{tag}_{}.ug2", std::process::id()));
    write_graph_v2(graph, &path).unwrap();
    let loaded = load_graph_v2(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (loaded.graph, loaded.mmapped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same seed and fixed budget must produce bit-identical MC,
    /// top-k, and R_d answers on the heap original and its mmap-loaded
    /// round trip — the storage backend must be invisible to sampling.
    #[test]
    fn estimates_are_bit_identical_across_storage(
        (n, edges) in small_digraph(),
        seed in 0u64..200,
        k in 32usize..256,
    ) {
        let heap = Arc::new(build(n, &edges));
        let (mapped, mmapped) = round_trip(&heap, seed);
        if cfg!(all(unix, target_endian = "little")) {
            prop_assert!(mmapped, "expected the zero-copy path on unix LE");
            prop_assert!(mapped.is_mapped());
        }
        let mapped = Arc::new(mapped);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));

        let a = McSampling::new(Arc::clone(&heap))
            .estimate(s, t, k, &mut ChaCha8Rng::seed_from_u64(seed));
        let b = McSampling::new(Arc::clone(&mapped))
            .estimate(s, t, k, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
        prop_assert_eq!(a.samples, b.samples);

        let budget = SampleBudget::fixed(k);
        let a = relcomp_core::topk::top_k_targets_with(
            &heap, s, 3, &budget, &mut ChaCha8Rng::seed_from_u64(seed));
        let b = relcomp_core::topk::top_k_targets_with(
            &mapped, s, 3, &budget, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(a.samples, b.samples);
        prop_assert_eq!(a.scores.len(), b.scores.len());
        for (x, y) in a.scores.iter().zip(&b.scores) {
            prop_assert_eq!(x.node, y.node);
            prop_assert_eq!(x.reliability.to_bits(), y.reliability.to_bits());
        }

        let a = distance_constrained_with(
            &heap, s, t, 3, &budget, &mut ChaCha8Rng::seed_from_u64(seed));
        let b = distance_constrained_with(
            &mapped, s, t, 3, &budget, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
        prop_assert_eq!(a.samples, b.samples);
    }

    /// The CoW prob overlay works on an mmap base exactly as on heap:
    /// the updated epoch shares topology with (and only re-probs) the
    /// mapped graph, queries against it use the new probability, and the
    /// mapped base itself is untouched.
    #[test]
    fn update_then_query_works_on_mmap_base(
        (n, edges) in small_digraph(),
        seed in 0u64..200,
    ) {
        // Guarantee at least one real edge so EdgeId(0) exists (the
        // strategy may generate only self-loops, which build() drops).
        let mut edges = edges;
        edges.push((0, 1, 0.5));
        let heap = Arc::new(build(n, &edges));
        let (mapped, _) = round_trip(&heap, 1_000_000 + seed);
        let mapped = Arc::new(mapped);
        let base_prob = mapped.prob(EdgeId(0)).value();
        let new_prob = if base_prob < 0.5 { 0.9 } else { 0.1 };

        let updated = mapped.with_updated_probs(
            &[EdgeUpdate::new(EdgeId(0), new_prob).unwrap()]);
        prop_assert!(updated.same_topology(&mapped));
        prop_assert!(!mapped.same_topology(&heap),
            "independent loads must not report shared topology");
        prop_assert_eq!(updated.prob(EdgeId(0)).value(), new_prob);
        // The mapped base is immutable: the overlay must not leak back.
        prop_assert_eq!(mapped.prob(EdgeId(0)).value(), base_prob);

        // The updated epoch answers queries like a heap graph with the
        // same probs — same coin stream, same answer.
        let reference = build(n, &edges)
            .with_updated_probs(&[EdgeUpdate::new(EdgeId(0), new_prob).unwrap()]);
        let (s, t) = (NodeId(0), NodeId((n - 1) as u32));
        let a = McSampling::new(reference)
            .estimate(s, t, 128, &mut ChaCha8Rng::seed_from_u64(seed));
        let b = McSampling::new(updated)
            .estimate(s, t, 128, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(a.reliability.to_bits(), b.reliability.to_bits());
    }
}
