//! Reliability maximization: greedy edge upgrades under a budget.
//!
//! The serving-side companion problem to estimation (Ke et al.,
//! arXiv:1903.08587): given a source `s`, a target `t`, and a budget of
//! `k` upgrades, pick the `k` edges whose existence probabilities should
//! be boosted to maximize `R(s, t)`. Exact maximization inherits the
//! `#P`-hardness of reliability itself, so this module implements the
//! standard sampling-based greedy:
//!
//! 1. **Candidate pool** — every edge with headroom below the boost
//!    target, ranked by headroom and capped at
//!    [`MaximizeOptions::max_candidates`].
//! 2. **Greedy rounds** — each round scores candidates by *marginal*
//!    estimated gain: the candidate's upgrade is applied on a
//!    copy-on-write [`UncertainGraph::with_updated_probs`] snapshot (the
//!    same epoch machinery the serve layer's `update` verb uses) and
//!    `R(s, t)` is re-estimated on it with the thread-count-invariant
//!    [`ParallelSampler`].
//! 3. **Lazy-forward re-evaluation** — gains only shrink as upgrades
//!    accumulate (diminishing returns), so each round re-scores
//!    candidates in stale-gain order and stops as soon as the best
//!    fresh gain dominates every stale bound, instead of rescoring the
//!    full pool.
//! 4. **CI separation** — a round accepts its winner once the winner's
//!    confidence interval separates from the runner-up's; while they
//!    overlap, both are re-scored under an escalated budget (doubled
//!    cap, halved `eps`), up to [`MaximizeOptions::max_escalations`]
//!    times.
//!
//! Every estimate seed is derived deterministically from `(master seed,
//! round, edge, escalation)`, and the sampler is bit-identical across
//! thread counts, so the chosen upgrade set — and every reported
//! estimate — is reproducible for any `threads` value (budgets with a
//! wall-time limit excepted, since their stopping point is clock-driven).

use crate::parallel::ParallelSampler;
use crate::session::SampleBudget;
use relcomp_ugraph::{EdgeId, EdgeUpdate, NodeId, UncertainGraph};
use std::fmt;
use std::sync::Arc;

/// Default candidate-pool cap: the `max_candidates` used when callers
/// pass zero.
pub const DEFAULT_MAX_CANDIDATES: usize = 64;

/// Default number of CI-separation budget escalations per greedy round.
pub const DEFAULT_MAX_ESCALATIONS: u32 = 3;

/// Knobs for one [`maximize`] run.
#[derive(Clone, Debug)]
pub struct MaximizeOptions {
    /// Number of edge upgrades to pick (clamped to the pool size).
    pub k: usize,
    /// Probability each chosen edge is upgraded to, in `(0, 1]`. Edges
    /// already at or above the boost are not candidates.
    pub boost: f64,
    /// Per-evaluation sampling budget (fixed or adaptive); escalated
    /// rounds derive doubled-cap/halved-eps variants from it.
    pub budget: SampleBudget,
    /// Sampler worker threads (result is identical for any value).
    pub threads: usize,
    /// Master seed; every evaluation derives its own stream from it.
    pub seed: u64,
    /// Candidate-pool cap: edges are ranked by upgrade headroom
    /// (`boost - p`, ties to the lower edge id) and the top
    /// `max_candidates` form the pool. Zero means
    /// [`DEFAULT_MAX_CANDIDATES`].
    pub max_candidates: usize,
    /// How many times a round may escalate the budget chasing CI
    /// separation before accepting the current leader.
    pub max_escalations: u32,
}

impl MaximizeOptions {
    /// Options for `k` upgrades to probability `boost` under `budget`.
    pub fn new(k: usize, boost: f64, budget: SampleBudget) -> Self {
        MaximizeOptions {
            k,
            boost,
            budget,
            threads: 1,
            seed: 42,
            max_candidates: DEFAULT_MAX_CANDIDATES,
            max_escalations: DEFAULT_MAX_ESCALATIONS,
        }
    }
}

/// One upgrade the greedy picked, in pick order.
#[derive(Clone, Debug, PartialEq)]
pub struct ChosenUpgrade {
    /// The upgraded edge.
    pub edge: EdgeId,
    /// Source endpoint of the edge.
    pub from: NodeId,
    /// Target endpoint of the edge.
    pub to: NodeId,
    /// The edge's probability before the upgrade.
    pub old_prob: f64,
    /// The probability the edge was boosted to.
    pub new_prob: f64,
    /// Estimated marginal reliability gain at pick time.
    pub gain: f64,
    /// Estimated `R(s, t)` after this upgrade is applied.
    pub reliability: f64,
}

/// The result of one greedy [`maximize`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct MaximizeResult {
    /// Estimated `R(s, t)` before any upgrade.
    pub base_reliability: f64,
    /// Estimated `R(s, t)` with every chosen upgrade applied.
    pub reliability: f64,
    /// `reliability - base_reliability`.
    pub gain: f64,
    /// The picked upgrades, in greedy order.
    pub chosen: Vec<ChosenUpgrade>,
    /// Candidate-pool size after ranking and capping.
    pub candidates: usize,
    /// Candidate evaluations performed (the lazy-forward saving shows
    /// as `evaluations` well below `candidates * chosen.len()`).
    pub evaluations: usize,
    /// Total worlds sampled across all evaluations (including the base
    /// estimate).
    pub samples: usize,
    /// Rounds whose winner separated from the runner-up within the
    /// escalation allowance (the rest accepted an overlapping leader).
    pub separated_rounds: usize,
}

/// Why a [`maximize`] call was rejected before any sampling.
#[derive(Clone, Debug, PartialEq)]
pub enum MaximizeError {
    /// `s` or `t` is out of range for the graph.
    NodeOutOfRange {
        /// `"source"` or `"target"`.
        what: &'static str,
        /// The offending node id.
        node: u32,
        /// The graph's node count.
        nodes: usize,
    },
    /// `k` was zero.
    ZeroK,
    /// The boost target was outside `(0, 1]`.
    BadBoost(f64),
}

impl fmt::Display for MaximizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaximizeError::NodeOutOfRange { what, node, nodes } => {
                write!(
                    f,
                    "{what} node {node} out of range (graph has {nodes} nodes)"
                )
            }
            MaximizeError::ZeroK => write!(f, "k must be positive"),
            MaximizeError::BadBoost(b) => {
                write!(f, "boost must be a probability in (0, 1], got {b}")
            }
        }
    }
}

impl std::error::Error for MaximizeError {}

/// SplitMix64 finalizer: the per-evaluation seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed for evaluating `edge` in `round` at escalation level `esc`.
/// Distinct `(round, edge, esc)` triples get distinct streams, so
/// escalated re-evaluations draw fresh worlds instead of replaying the
/// same noise.
fn eval_seed(master: u64, round: usize, edge: EdgeId, esc: u32) -> u64 {
    mix(master ^ mix(((round as u64) << 40) ^ ((esc as u64) << 32) ^ edge.0 as u64))
}

/// Derive the escalation-level-`esc` budget: cap doubled per level and,
/// for adaptive budgets, `eps` halved per level so the session actually
/// buys narrower intervals instead of stopping at the old target.
fn escalated(base: &SampleBudget, esc: u32) -> SampleBudget {
    if esc == 0 {
        return *base;
    }
    let factor = 1usize << esc.min(16);
    let cap = base.max_samples().saturating_mul(factor);
    let mut b = match base.eps() {
        Some(e) => SampleBudget::adaptive(e / factor as f64, cap),
        None => SampleBudget::fixed(cap),
    }
    .with_confidence(base.confidence())
    .with_batch(base.batch());
    if let Some(limit) = base.time_limit() {
        b = b.with_time_limit(limit);
    }
    b
}

/// One candidate's freshest evaluation this round.
#[derive(Clone, Copy)]
struct Eval {
    gain: f64,
    reliability: f64,
    half_width: f64,
}

struct Candidate {
    edge: EdgeId,
    update: EdgeUpdate,
    /// Stale gain bound from the last round that evaluated this
    /// candidate (`f64::INFINITY` before the first): under diminishing
    /// returns, an upper bound on its current marginal gain.
    bound: f64,
    /// This round's evaluation, if any.
    fresh: Option<Eval>,
    taken: bool,
}

impl Candidate {
    /// The lazy-greedy priority: fresh gain when evaluated this round,
    /// the stale bound otherwise.
    fn value(&self) -> f64 {
        self.fresh.map_or(self.bound, |e| e.gain)
    }
}

/// Greedily pick up to `opts.k` edge upgrades maximizing estimated
/// `R(s, t)` — see the module docs for the algorithm. Deterministic in
/// `(graph, s, t, opts)` for any `opts.threads` as long as the budget
/// carries no wall-time limit.
pub fn maximize(
    graph: &Arc<UncertainGraph>,
    s: NodeId,
    t: NodeId,
    opts: &MaximizeOptions,
) -> Result<MaximizeResult, MaximizeError> {
    for (what, node) in [("source", s), ("target", t)] {
        if !graph.contains_node(node) {
            return Err(MaximizeError::NodeOutOfRange {
                what,
                node: node.0,
                nodes: graph.num_nodes(),
            });
        }
    }
    if opts.k == 0 {
        return Err(MaximizeError::ZeroK);
    }
    if !(opts.boost.is_finite() && opts.boost > 0.0 && opts.boost <= 1.0) {
        return Err(MaximizeError::BadBoost(opts.boost));
    }

    // Rank candidates by upgrade headroom, ties to the lower edge id,
    // and cap the pool.
    let cap = if opts.max_candidates == 0 {
        DEFAULT_MAX_CANDIDATES
    } else {
        opts.max_candidates
    };
    let mut ranked: Vec<(f64, EdgeId)> = graph
        .edges()
        .filter_map(|(e, _, _, p)| {
            let headroom = opts.boost - p.value();
            (headroom > 0.0).then_some((headroom, e))
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    ranked.truncate(cap);
    // Evaluation order within equal priorities follows edge id, so the
    // pool order itself must be deterministic — it is, by the sort above.
    let mut pool: Vec<Candidate> = ranked
        .into_iter()
        .map(|(_, edge)| Candidate {
            edge,
            update: EdgeUpdate::new(edge, opts.boost).expect("boost validated above"),
            bound: f64::INFINITY,
            fresh: None,
            taken: false,
        })
        .collect();
    let candidates = pool.len();

    let mut samples = 0usize;
    let mut evaluations = 0usize;
    let mut separated_rounds = 0usize;

    let base_est = ParallelSampler::new(Arc::clone(graph), opts.threads).estimate_mc_with(
        s,
        t,
        &opts.budget,
        eval_seed(opts.seed, usize::MAX, EdgeId(u32::MAX), 0),
    );
    samples += base_est.samples;
    let base_reliability = base_est.reliability;

    let mut current: Arc<UncertainGraph> = Arc::new((**graph).clone());
    let mut current_rel = base_reliability;
    let mut chosen = Vec::new();

    let rounds = opts.k.min(candidates);
    for round in 0..rounds {
        for c in pool.iter_mut() {
            c.fresh = None;
        }
        // Evaluate `edge`'s upgrade on a CoW snapshot of the current
        // graph; gains compare estimates from the same budget family, so
        // the ranking is thread-count invariant.
        let evaluate = |c: &mut Candidate, esc: u32, samples: &mut usize, evals: &mut usize| {
            let snap = current.with_updated_probs(std::slice::from_ref(&c.update));
            let est = ParallelSampler::new(snap, opts.threads).estimate_mc_with(
                s,
                t,
                &escalated(&opts.budget, esc),
                eval_seed(opts.seed, round, c.edge, esc),
            );
            *samples += est.samples;
            *evals += 1;
            c.fresh = Some(Eval {
                gain: est.reliability - current_rel,
                reliability: est.reliability,
                half_width: est.half_width.unwrap_or(0.0),
            });
            c.bound = est.reliability - current_rel;
        };

        // Index of the open candidate with the highest priority (fresh
        // gain or stale bound), ties to the lower edge id — `pool` is in
        // ranking order, but ids decide, so scan explicitly.
        let top_index = |pool: &[Candidate]| {
            let mut best: Option<usize> = None;
            for (i, c) in pool.iter().enumerate() {
                if c.taken {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(j) => {
                        let (a, b) = (c.value(), pool[j].value());
                        if a > b || (a == b && c.edge < pool[j].edge) {
                            Some(i)
                        } else {
                            Some(j)
                        }
                    }
                };
            }
            best
        };

        let mut esc = 0u32;
        let winner = loop {
            // Lazy-forward: chase the priority queue until the leader's
            // value is a fresh (this-round) gain.
            loop {
                let i = top_index(&pool).expect("rounds <= pool size");
                if pool[i].fresh.is_some() {
                    break;
                }
                evaluate(&mut pool[i], esc, &mut samples, &mut evaluations);
            }
            let leader = top_index(&pool).expect("rounds <= pool size");
            // Runner-up: best value among the rest (fresh or stale).
            let runner = pool
                .iter()
                .enumerate()
                .filter(|(i, c)| *i != leader && !c.taken)
                .max_by(|(_, a), (_, b)| {
                    a.value()
                        .partial_cmp(&b.value())
                        .unwrap()
                        .then(b.edge.cmp(&a.edge))
                })
                .map(|(i, _)| i);
            let Some(runner) = runner else {
                // Only one candidate left: trivially separated.
                separated_rounds += 1;
                break leader;
            };
            let lead = pool[leader].fresh.expect("leader is fresh");
            // A gain difference is a reliability difference (the shared
            // baseline cancels), so separation only needs the two
            // reliability half-widths.
            let separated = match pool[runner].fresh {
                Some(r) => lead.gain - lead.half_width > r.gain + r.half_width,
                // Stale runner: its bound is already an upper bound on
                // its gain, no interval to add.
                None => lead.gain - lead.half_width > pool[runner].bound,
            };
            if separated {
                separated_rounds += 1;
                break leader;
            }
            if esc >= opts.max_escalations {
                // Out of escalations: accept the current leader (ties
                // this close are a coin flip either way, and the choice
                // is still deterministic).
                break leader;
            }
            // Re-score the overlapping pair under a bigger budget; the
            // leader may swap, so loop back through the lazy pass.
            esc += 1;
            evaluate(&mut pool[leader], esc, &mut samples, &mut evaluations);
            evaluate(&mut pool[runner], esc, &mut samples, &mut evaluations);
        };

        let win_eval = pool[winner].fresh.expect("winner is fresh");
        let (from, to) = graph.endpoints(pool[winner].edge);
        chosen.push(ChosenUpgrade {
            edge: pool[winner].edge,
            from,
            to,
            old_prob: current.prob(pool[winner].edge).value(),
            new_prob: opts.boost,
            gain: win_eval.gain,
            reliability: win_eval.reliability,
        });
        current = current.with_updated_probs(std::slice::from_ref(&pool[winner].update));
        current_rel = win_eval.reliability;
        pool[winner].taken = true;
    }

    Ok(MaximizeResult {
        base_reliability,
        reliability: current_rel,
        gain: current_rel - base_reliability,
        chosen,
        candidates,
        evaluations,
        samples,
        separated_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_best_upgrade_set, exact_reliability};
    use relcomp_ugraph::GraphBuilder;

    fn opts(k: usize, boost: f64) -> MaximizeOptions {
        MaximizeOptions {
            threads: 2,
            seed: 7,
            ..MaximizeOptions::new(k, boost, SampleBudget::adaptive(0.02, 40_000))
        }
    }

    /// Two parallel 2-hop paths, one much weaker than the other.
    fn two_paths() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.2).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.1).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.1).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn picks_the_bottleneck_edge() {
        let g = two_paths();
        let r = maximize(&g, NodeId(0), NodeId(3), &opts(1, 1.0)).unwrap();
        assert_eq!(r.chosen.len(), 1);
        // Upgrading 1 -> 3 to certainty yields R ~ 0.9 + spare; every
        // other single upgrade stays under 0.5.
        assert_eq!(
            (r.chosen[0].from, r.chosen[0].to),
            (NodeId(1), NodeId(3)),
            "greedy must fix the strong path's bottleneck"
        );
        assert!(r.gain > 0.5, "gain {} too small", r.gain);
        assert!(r.samples > 0 && r.evaluations >= r.candidates);
    }

    #[test]
    fn matches_exact_oracle_on_small_instances() {
        let g = two_paths();
        for k in 1..=3 {
            let got = maximize(&g, NodeId(0), NodeId(3), &opts(k, 1.0)).unwrap();
            let cands: Vec<EdgeUpdate> = g
                .edges()
                .map(|(e, _, _, _)| EdgeUpdate::new(e, 1.0).unwrap())
                .collect();
            let (best_set, best_rel) = exact_best_upgrade_set(&g, NodeId(0), NodeId(3), &cands, k);
            assert_eq!(best_set.len(), k);
            // Evaluate the greedy's chosen set exactly and compare gains.
            let ups: Vec<EdgeUpdate> = got
                .chosen
                .iter()
                .map(|c| EdgeUpdate::new(c.edge, c.new_prob).unwrap())
                .collect();
            let greedy_exact = exact_reliability(&g.with_updated_probs(&ups), NodeId(0), NodeId(3));
            assert!(
                (greedy_exact - best_rel).abs() < 1e-9,
                "k={k}: greedy exact {greedy_exact} vs oracle {best_rel}"
            );
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let g = two_paths();
        let runs: Vec<MaximizeResult> = [1, 2, 4]
            .iter()
            .map(|&threads| {
                let o = MaximizeOptions {
                    threads,
                    ..opts(2, 0.95)
                };
                maximize(&g, NodeId(0), NodeId(3), &o).unwrap()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn k_clamps_to_pool_and_skips_full_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5).unwrap();
        let g = Arc::new(b.build());
        let r = maximize(&g, NodeId(0), NodeId(2), &opts(5, 1.0)).unwrap();
        // Only the 0.5 edge has headroom.
        assert_eq!(r.candidates, 1);
        assert_eq!(r.chosen.len(), 1);
        assert_eq!(r.chosen[0].old_prob, 0.5);
        assert_eq!(r.chosen[0].new_prob, 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = two_paths();
        assert!(matches!(
            maximize(&g, NodeId(9), NodeId(3), &opts(1, 1.0)),
            Err(MaximizeError::NodeOutOfRange { what: "source", .. })
        ));
        assert!(matches!(
            maximize(&g, NodeId(0), NodeId(3), &opts(0, 1.0)),
            Err(MaximizeError::ZeroK)
        ));
        assert!(matches!(
            maximize(&g, NodeId(0), NodeId(3), &opts(1, 1.5)),
            Err(MaximizeError::BadBoost(_))
        ));
    }
}
