//! Random-variate helpers shared by the samplers.

use rand::Rng;

/// Bernoulli trial with probability `p`.
#[inline]
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Geometric variate: the number of *failures* before the first success of
/// a Bernoulli(p) process — i.e. `P(X = k) = (1-p)^k p` for `k >= 0`.
///
/// This is the distribution Lazy Propagation (§2.6) attaches to each edge:
/// `X(nbr)` counts how many future probes of the edge will fail before it
/// exists again. `p = 1` always yields 0.
#[inline]
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0, "geometric parameter out of range: {p}");
    if p >= 1.0 {
        return 0;
    }
    // Inverse-CDF: X = floor(ln(U) / ln(1-p)) with U ~ Uniform(0, 1].
    let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
    let x = (u.ln() / (1.0 - p).ln()).floor();
    // Guard against numeric blow-up for tiny p.
    if x.is_finite() && x >= 0.0 {
        x as u64
    } else {
        u64::MAX / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn geometric_of_certain_edge_is_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(geometric(&mut rng, 1.0), 0);
        }
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = 0.25;
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| geometric(&mut rng, p)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p) / p; // 3.0
        assert!((mean - expect).abs() < 0.05, "mean {mean} vs {expect}");
    }

    #[test]
    fn geometric_zero_probability_mass_at_zero_is_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = 0.7;
        let n = 100_000;
        let zeros = (0..n).filter(|_| geometric(&mut rng, p) == 0).count();
        let freq = zeros as f64 / n as f64;
        assert!((freq - p).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn coin_matches_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| coin(&mut rng, 0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01);
    }
}
