//! BFS Sharing: offline possible-world index + shared online BFS
//! (§2.3, Algorithms 2–3 of the paper).
//!
//! Offline, `L` possible worlds are sampled and stored compactly: each edge
//! carries an `L`-bit vector whose i-th bit says whether the edge exists in
//! world `i` (Fig. 3 of the paper). Online, a single BFS-ordered fixpoint
//! propagates per-node reachability bit vectors `I_v` — equivalent to `K`
//! parallel BFS traversals, 64 worlds per machine word.
//!
//! Two paper-documented properties are deliberately preserved:
//!
//! * **No early termination.** Cascading updates (Algorithm 3) mean the
//!   traversal cannot stop when `t` is first reached, which is why BFS
//!   Sharing is often *slower* than plain MC despite the offline sampling.
//! * **O(K(m+n)) online complexity, not K-independent.** The original
//!   ICDM'15 paper claimed query time independent of `K`; the comparison
//!   paper corrects this (each node/edge can be revisited up to `K` times
//!   through cascading updates). Our fixpoint exhibits the same behavior.
//!
//! Between successive queries the index must be **re-sampled** to keep
//! queries independent (Table 15 measures this per-query refresh cost);
//! see [`Estimator::refresh`].

use crate::estimator::{validate_query, Estimate, Estimator, UpdateOutcome};
use crate::memory::MemoryTracker;
use crate::session::{EstimationSession, SampleBudget};
use rand::RngCore;
use relcomp_ugraph::{EdgeId, EdgeUpdate, NodeId, UncertainGraph};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The offline bit-vector index: `L` pre-sampled worlds, one bit-slice per
/// edge.
pub struct BfsSharingIndex {
    /// Number of pre-sampled worlds (the paper uses a safe bound L = 1500).
    l: usize,
    /// Words per edge slice.
    words_per_edge: usize,
    /// Flattened `m * words_per_edge` matrix.
    bits: Vec<u64>,
}

impl BfsSharingIndex {
    /// Sample `l` worlds of `graph` into a fresh index.
    pub fn build(graph: &UncertainGraph, l: usize, rng: &mut dyn RngCore) -> Self {
        assert!(l > 0, "index must cover at least one world");
        let words_per_edge = l.div_ceil(64);
        let mut index = BfsSharingIndex {
            l,
            words_per_edge,
            bits: vec![0u64; graph.num_edges() * words_per_edge],
        };
        index.resample(graph, rng);
        index
    }

    /// Re-draw every edge's world bits (per-query refresh, Table 15).
    ///
    /// Uses geometric skipping: instead of `L` Bernoulli draws per edge,
    /// jump directly between set bits (expected work `L * p(e)` — the same
    /// trick Lazy Propagation applies online). Statistically identical to
    /// per-world sampling.
    pub fn resample(&mut self, graph: &UncertainGraph, rng: &mut dyn RngCore) {
        assert_eq!(
            self.bits.len(),
            graph.num_edges() * self.words_per_edge,
            "index was built for a different graph"
        );
        self.bits.fill(0);
        for (e, _, _, p) in graph.edges() {
            let p = p.value();
            let base = e.index() * self.words_per_edge;
            let mut i = crate::sampler::geometric(rng, p) as usize;
            while i < self.l {
                self.bits[base + i / 64] |= 1 << (i % 64);
                i += 1 + crate::sampler::geometric(rng, p) as usize;
            }
        }
    }

    /// Re-draw the bit slices of `edges` only, against `graph`'s (new)
    /// probabilities — the incremental half of an edge-probability
    /// update: untouched edges keep their sampled worlds, touched edges
    /// get fresh Bernoulli draws at the new rate. The cascading effect on
    /// reachability is recomputed by the next query's shared-BFS fixpoint
    /// (Alg. 2's cascading updates), which reads these slices.
    pub fn resample_edges(
        &mut self,
        graph: &UncertainGraph,
        edges: &[EdgeId],
        rng: &mut dyn RngCore,
    ) {
        assert_eq!(
            self.bits.len(),
            graph.num_edges() * self.words_per_edge,
            "index was built for a different graph"
        );
        for &e in edges {
            let p = graph.prob(e).value();
            let base = e.index() * self.words_per_edge;
            self.bits[base..base + self.words_per_edge].fill(0);
            let mut i = crate::sampler::geometric(rng, p) as usize;
            while i < self.l {
                self.bits[base + i / 64] |= 1 << (i % 64);
                i += 1 + crate::sampler::geometric(rng, p) as usize;
            }
        }
    }

    /// Bit-slice of edge `e`.
    #[inline]
    pub fn edge_words(&self, e: EdgeId) -> &[u64] {
        let base = e.index() * self.words_per_edge;
        &self.bits[base..base + self.words_per_edge]
    }

    /// Number of pre-sampled worlds `L`.
    pub fn num_worlds(&self) -> usize {
        self.l
    }

    /// Index size in bytes (what must be loaded in memory for queries).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// The BFS-Sharing estimator: index + shared-BFS query.
pub struct BfsSharing {
    graph: Arc<UncertainGraph>,
    index: BfsSharingIndex,
    build_time: Duration,
    /// Per-node reachability vectors, allocated once and reused.
    node_bits: Vec<u64>,
    node_epoch: Vec<u32>,
    epoch: u32,
    /// Worklist + membership marks, allocated once and reused across
    /// windows (adaptive sessions run one fixpoint per batch; per-window
    /// allocation would churn O(n) per 256 worlds). Both invariants hold
    /// between windows: the queue drains empty, and every `in_queue`
    /// mark is cleared when its node is popped.
    queue: VecDeque<NodeId>,
    in_queue: Vec<bool>,
}

impl BfsSharing {
    /// Build the index with the paper's safe bound `L = 1500`.
    pub const DEFAULT_WORLDS: usize = 1500;

    /// Build an estimator with `l` pre-sampled worlds.
    pub fn new(graph: Arc<UncertainGraph>, l: usize, rng: &mut dyn RngCore) -> Self {
        let start = Instant::now();
        let index = BfsSharingIndex::build(&graph, l, rng);
        let build_time = start.elapsed();
        let n = graph.num_nodes();
        let wpe = index.words_per_edge;
        BfsSharing {
            graph,
            index,
            build_time,
            node_bits: vec![0u64; n * wpe],
            node_epoch: vec![0; n],
            epoch: 0,
            queue: VecDeque::new(),
            in_queue: vec![false; n],
        }
    }

    /// Time spent building (sampling) the index.
    pub fn index_build_time(&self) -> Duration {
        self.build_time
    }

    /// The underlying index.
    pub fn index(&self) -> &BfsSharingIndex {
        &self.index
    }

    /// Count the worlds in `[lo, lo + n)` of the index where `t` is
    /// reachable from `s`, via the shared-BFS worklist fixpoint restricted
    /// to that window's words. Worlds are independent columns, so a
    /// window's count is exactly the popcount the full fixpoint would
    /// produce over those bits — batching partitions the work without
    /// changing any answer.
    fn count_window(&mut self, s: NodeId, t: NodeId, lo: usize, n: usize) -> usize {
        debug_assert!(lo + n <= self.index.l);
        debug_assert!(self.queue.is_empty());
        let wpe = self.index.words_per_edge;
        let w_lo = lo / 64;
        let w_hi = (lo + n).div_ceil(64);
        let first_mask: u64 = !0 << (lo % 64);
        let last_mask: u64 = if (lo + n) % 64 == 0 {
            !0
        } else {
            (1u64 << ((lo + n) % 64)) - 1
        };
        let window_mask = |w: usize| -> u64 {
            let mut m = !0u64;
            if w == w_lo {
                m &= first_mask;
            }
            if w + 1 == w_hi {
                m &= last_mask;
            }
            m
        };

        // Lazy per-window reset of node vectors via epochs.
        self.epoch = self.epoch.wrapping_add(1).max(1);
        let epoch = self.epoch;

        // I_s = all ones over the window.
        {
            let base = s.index() * wpe;
            for w in w_lo..w_hi {
                self.node_bits[base + w] = window_mask(w);
            }
            self.node_epoch[s.index()] = epoch;
        }

        // Worklist fixpoint: when I_v gains bits, re-examine v's out-edges.
        // This subsumes Algorithm 3's cascading updates.
        self.queue.push_back(s);
        self.in_queue[s.index()] = true;

        while let Some(v) = self.queue.pop_front() {
            self.in_queue[v.index()] = false;
            let v_base = v.index() * wpe;
            for (e, w) in self.graph.out_edges(v) {
                let w_base = w.index() * wpe;
                if self.node_epoch[w.index()] != epoch {
                    self.node_bits[w_base + w_lo..w_base + w_hi].fill(0);
                    self.node_epoch[w.index()] = epoch;
                }
                let edge_words = self.index.edge_words(e);
                let mut changed = false;
                #[allow(clippy::needless_range_loop)] // three slices share the window index
                for i in w_lo..w_hi {
                    let add = self.node_bits[v_base + i] & edge_words[i];
                    let cur = self.node_bits[w_base + i];
                    let new = cur | add;
                    if new != cur {
                        self.node_bits[w_base + i] = new;
                        changed = true;
                    }
                }
                if changed && !self.in_queue[w.index()] {
                    self.in_queue[w.index()] = true;
                    self.queue.push_back(w);
                }
            }
        }

        if self.node_epoch[t.index()] != epoch {
            return 0;
        }
        let t_base = t.index() * wpe;
        self.node_bits[t_base + w_lo..t_base + w_hi]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

impl Estimator for BfsSharing {
    fn name(&self) -> &'static str {
        "BFS Sharing"
    }

    fn estimate_with(
        &mut self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        rng: &mut dyn RngCore,
    ) -> Estimate {
        let _ = rng; // all randomness is in the pre-built index
        validate_query(&self.graph, s, t);
        if budget.is_fixed() {
            let k = budget.max_samples();
            assert!(
                k <= self.index.l,
                "requested K = {k} samples but the index holds only L = {} worlds",
                self.index.l
            );
        }
        // The index bounds the drawable worlds: adaptive budgets clamp.
        let budget = budget.clamp_max(self.index.l);
        let mut session = EstimationSession::begin(&budget);
        let mut mem = MemoryTracker::new();
        // The loaded edge index plus the online node vectors (the paper's
        // corrected accounting: O(Km) index + O(Kn) node bit vectors).
        mem.baseline(self.index.size_bytes());
        mem.alloc(self.node_bits.len() * 8 + self.node_epoch.len() * 4 + self.in_queue.len());

        if s == t {
            return session.finish_exact(1.0, &mem);
        }

        if budget.is_fixed() {
            // One window over all K worlds — the historical single
            // fixpoint, bit for bit (no per-batch traversal overhead).
            let k = budget.max_samples();
            let ones = self.count_window(s, t, 0, k);
            session.record_hits(ones, k);
            return session.finish(ones as f64 / k as f64, &mem);
        }

        let mut ones_total = 0usize;
        loop {
            let n = session.next_batch();
            if n == 0 {
                break;
            }
            let lo = session.samples();
            let ones = self.count_window(s, t, lo, n);
            ones_total += ones;
            session.record_hits(ones, n);
        }
        session.finish(ones_total as f64 / session.samples() as f64, &mem)
    }

    fn resident_bytes(&self) -> usize {
        self.index.size_bytes()
            + self.node_bits.len() * 8
            + self.node_epoch.len() * 4
            + self.in_queue.len()
    }

    /// Re-sample the edge index so the next query sees fresh worlds
    /// (required for inter-query independence; Table 15).
    fn refresh(&mut self, rng: &mut dyn RngCore) {
        self.index.resample(&self.graph, rng);
    }

    /// Incremental index maintenance: re-flip only the touched edges'
    /// sampled bits at their new probabilities; every other edge's `L`
    /// pre-sampled worlds survive the epoch swap.
    fn apply_updates(
        &mut self,
        graph: &Arc<UncertainGraph>,
        updates: &[EdgeUpdate],
        rng: &mut dyn RngCore,
    ) -> UpdateOutcome {
        if !graph.same_topology(&self.graph) {
            // Edge ids were reassigned (insert/delete rebuild): the whole
            // bit matrix is stale.
            return UpdateOutcome::Rebuild;
        }
        self.graph = Arc::clone(graph);
        let touched: Vec<EdgeId> = updates.iter().map(|u| u.edge).collect();
        self.index.resample_edges(&self.graph, &touched, rng);
        UpdateOutcome::Incremental {
            touched: touched.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn converges_to_exact() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut bs = BfsSharing::new(Arc::clone(&g), 60_000, &mut rng);
        let est = bs.estimate(NodeId(0), NodeId(3), 60_000, &mut rng);
        assert!(
            (est.reliability - exact).abs() < 0.01,
            "{} vs {exact}",
            est.reliability
        );
    }

    #[test]
    fn handles_cycles_with_cascading_updates() {
        // 0 -> 1 -> 2 -> 1 (cycle) and 2 -> 3: the BFS-order dependence the
        // cascading-update machinery exists for.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
        b.add_edge(NodeId(2), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.9).unwrap();
        let g = Arc::new(b.build());
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let mut bs = BfsSharing::new(Arc::clone(&g), 40_000, &mut rng);
        let est = bs.estimate(NodeId(0), NodeId(3), 40_000, &mut rng);
        assert!(
            (est.reliability - exact).abs() < 0.01,
            "{} vs {exact}",
            est.reliability
        );
    }

    #[test]
    fn k_larger_than_l_is_rejected() {
        let g = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let mut bs = BfsSharing::new(g, 100, &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bs.estimate(NodeId(0), NodeId(3), 200, &mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn k_smaller_than_l_uses_prefix_of_worlds() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let mut bs = BfsSharing::new(Arc::clone(&g), 70_000, &mut rng);
        let est = bs.estimate(NodeId(0), NodeId(3), 65_000, &mut rng);
        assert!((est.reliability - exact).abs() < 0.02);
    }

    #[test]
    fn refresh_changes_worlds() {
        let g = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let mut bs = BfsSharing::new(Arc::clone(&g), 256, &mut rng);
        let before = bs.index.bits.clone();
        bs.refresh(&mut rng);
        assert_ne!(before, bs.index.bits);
    }

    #[test]
    fn unreachable_target_zero() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        let g = Arc::new(b.build());
        let mut rng = ChaCha8Rng::seed_from_u64(36);
        let mut bs = BfsSharing::new(g, 128, &mut rng);
        assert_eq!(
            bs.estimate(NodeId(0), NodeId(2), 128, &mut rng).reliability,
            0.0
        );
    }

    #[test]
    fn s_equals_t_is_one() {
        let g = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(37);
        let mut bs = BfsSharing::new(g, 64, &mut rng);
        assert_eq!(
            bs.estimate(NodeId(1), NodeId(1), 64, &mut rng).reliability,
            1.0
        );
    }

    #[test]
    fn index_size_scales_with_l_and_m() {
        let g = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(38);
        let small = BfsSharing::new(Arc::clone(&g), 64, &mut rng);
        let large = BfsSharing::new(g, 6400, &mut rng);
        assert!(large.index().size_bytes() >= 100 * small.index().size_bytes() / 2);
        assert!(small.resident_bytes() > 0);
    }

    #[test]
    fn apply_updates_refreshes_only_touched_edges() {
        let g = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let mut bs = BfsSharing::new(Arc::clone(&g), 1024, &mut rng);
        let before = bs.index.bits.clone();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let updated = g.with_updated_probs(&[EdgeUpdate::new(e, 0.05).unwrap()]);
        let outcome = bs.apply_updates(&updated, &[EdgeUpdate::new(e, 0.05).unwrap()], &mut rng);
        assert_eq!(outcome, UpdateOutcome::Incremental { touched: 1 });
        let wpe = bs.index.words_per_edge;
        for other in 0..g.num_edges() {
            let base = other * wpe;
            let slice = &bs.index.bits[base..base + wpe];
            if other == e.index() {
                // 0.5 -> 0.05: the popcount collapses.
                let ones: u32 = slice.iter().map(|w| w.count_ones()).sum();
                assert!(ones < 200, "expected ~51 set bits, got {ones}");
            } else {
                assert_eq!(slice, &before[base..base + wpe], "edge {other} touched");
            }
        }
    }

    #[test]
    fn apply_updates_converges_to_new_exact() {
        let g = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mut bs = BfsSharing::new(Arc::clone(&g), 60_000, &mut rng);
        let e = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let up = EdgeUpdate::new(e, 0.05).unwrap();
        let updated = g.with_updated_probs(&[up]);
        bs.apply_updates(&updated, &[up], &mut rng);
        let exact = exact_reliability(&updated, NodeId(0), NodeId(3));
        let est = bs.estimate(NodeId(0), NodeId(3), 60_000, &mut rng);
        assert!(
            (est.reliability - exact).abs() < 0.01,
            "{} vs {exact}",
            est.reliability
        );
    }

    #[test]
    fn apply_updates_demands_shared_topology() {
        let g = diamond();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut bs = BfsSharing::new(Arc::clone(&g), 128, &mut rng);
        // A structurally identical but independently built graph must
        // force a rebuild (edge ids are only trustworthy via snapshots).
        let rebuilt = Arc::new(g.with_edits(&[], &[]).unwrap());
        let outcome = bs.apply_updates(&rebuilt, &[], &mut rng);
        assert_eq!(outcome, UpdateOutcome::Rebuild);
    }

    #[test]
    fn estimates_match_index_bits_exactly_for_single_edge() {
        // For a single-edge graph, reliability must equal popcount/K of
        // that edge's slice.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.37).unwrap();
        let g = Arc::new(b.build());
        let mut rng = ChaCha8Rng::seed_from_u64(39);
        let mut bs = BfsSharing::new(Arc::clone(&g), 1000, &mut rng);
        let ones: u32 = bs
            .index()
            .edge_words(EdgeId(0))
            .iter()
            .map(|w| w.count_ones())
            .sum();
        let est = bs.estimate(NodeId(0), NodeId(1), 1000, &mut rng);
        assert!((est.reliability - ones as f64 / 1000.0).abs() < 1e-12);
    }
}
