//! Core-side observability plumbing: every finished estimation session is
//! folded into the process-global probes in [`relcomp_obs::sampler`] and
//! mirrored to two local channels:
//!
//! - an **injectable sink** ([`install_session_sink`]) for embedders that
//!   want a live tap on session completions (tests, custom exporters);
//! - a **thread-local accumulator** ([`take_thread_session_stats`]) that the
//!   serve engine drains around a query to split its trace into `sample` vs
//!   `convergence_check` time. This works because every estimation path —
//!   resident estimators, the parallel sampler's `run_adaptive` (which
//!   evaluates the stopping rule at round barriers on the caller thread),
//!   and the fixed paths — funnels through [`crate::session::finish_estimate`]
//!   on the thread that issued the query.
//!
//! Time spent inside the convergence stopping rule is measured by
//! `should_stop` itself into a thread-local tally and drained into the next
//! session observation, so "sampling time" vs "deciding-to-stop time" are
//! separable without threading timers through every estimator.

use std::cell::Cell;
use std::sync::RwLock;

pub use relcomp_obs::SessionObservation;

/// A live tap on finished estimation sessions. Implementations must be cheap
/// and non-blocking — the sink runs inline in the estimation epilogue.
pub trait SessionSink: Send + Sync {
    /// Observe one finished estimation session.
    fn record(&self, obs: &SessionObservation);
}

static SINK: RwLock<Option<Box<dyn SessionSink>>> = RwLock::new(None);

/// Install a process-wide session sink, replacing any previous one.
pub fn install_session_sink(sink: Box<dyn SessionSink>) {
    *SINK.write().unwrap() = Some(sink);
}

/// Remove the installed session sink, if any.
pub fn clear_session_sink() {
    *SINK.write().unwrap() = None;
}

/// Sessions finished on this thread since the last
/// [`take_thread_session_stats`], summed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadSessionStats {
    /// Sessions finished on this thread.
    pub sessions: u64,
    /// Worlds sampled across those sessions.
    pub samples: u64,
    /// Sampling batches taken across those sessions.
    pub batches: u64,
    /// Summed session wall time, microseconds.
    pub micros: u64,
    /// Summed time inside the convergence stopping rule, nanoseconds.
    pub convergence_nanos: u64,
}

thread_local! {
    static CONVERGENCE_NANOS: Cell<u64> = const { Cell::new(0) };
    static THREAD_STATS: Cell<ThreadSessionStats> = const { Cell::new(ThreadSessionStats {
        sessions: 0,
        samples: 0,
        batches: 0,
        micros: 0,
        convergence_nanos: 0,
    }) };
}

/// Tally nanoseconds spent inside the convergence stopping rule on this
/// thread (drained into the next session observation).
pub(crate) fn note_convergence_nanos(nanos: u64) {
    CONVERGENCE_NANOS.with(|c| c.set(c.get().saturating_add(nanos)));
}

pub(crate) fn take_convergence_nanos() -> u64 {
    CONVERGENCE_NANOS.with(|c| c.replace(0))
}

/// Record one finished estimation session: global sampler probes, the
/// optional sink, and this thread's accumulator.
pub(crate) fn emit_session(obs: SessionObservation) {
    relcomp_obs::note_session(&obs);
    if let Ok(guard) = SINK.read() {
        if let Some(sink) = guard.as_ref() {
            sink.record(&obs);
        }
    }
    THREAD_STATS.with(|c| {
        let mut s = c.get();
        s.sessions += 1;
        s.samples += obs.samples;
        s.batches += obs.batches;
        s.micros += obs.micros;
        s.convergence_nanos += obs.convergence_nanos;
        c.set(s);
    });
}

/// Drain the session stats accumulated on the calling thread. The serve
/// engine calls this before and after `compute` to attribute a query's
/// estimation work (covering multi-session queries like top-k) to the
/// `sample` / `convergence_check` trace stages.
pub fn take_thread_session_stats() -> ThreadSessionStats {
    THREAD_STATS.with(|c| c.replace(ThreadSessionStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn emit_updates_thread_stats_and_sink() {
        struct CountingSink(Arc<AtomicU64>);
        impl SessionSink for CountingSink {
            fn record(&self, obs: &SessionObservation) {
                self.0.fetch_add(obs.samples, Ordering::Relaxed);
            }
        }

        let seen = Arc::new(AtomicU64::new(0));
        install_session_sink(Box::new(CountingSink(seen.clone())));
        let _ = take_thread_session_stats();

        note_convergence_nanos(40);
        let conv = take_convergence_nanos();
        assert_eq!(conv, 40);
        assert_eq!(take_convergence_nanos(), 0);

        emit_session(SessionObservation {
            samples: 128,
            batches: 2,
            micros: 10,
            convergence_nanos: conv,
            stop_reason: "converged",
        });
        emit_session(SessionObservation {
            samples: 64,
            batches: 1,
            micros: 5,
            convergence_nanos: 0,
            stop_reason: "fixed_k",
        });

        let stats = take_thread_session_stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.samples, 192);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.micros, 15);
        assert_eq!(stats.convergence_nanos, 40);
        assert_eq!(take_thread_session_stats(), ThreadSessionStats::default());
        assert_eq!(seen.load(Ordering::Relaxed), 192);
        clear_session_sink();
    }
}
