//! Most-reliable-path queries — the "simplified version of the
//! reliability problem" branch of the paper's Figure 2 spectrum
//! (Chen et al. [9], Kimura & Saito [26]).
//!
//! The *most reliable path* from `s` to `t` is the path maximizing the
//! product of its edge probabilities. Maximizing `prod p(e)` equals
//! minimizing `sum -ln p(e)`, so a Dijkstra run over non-negative weights
//! `-ln p(e)` solves it exactly. Its probability is also a cheap *lower
//! bound* on `R(s, t)` (the event "this one path exists" implies
//! reachability), which is how [`crate::bounds`] uses it.

use relcomp_ugraph::{EdgeId, NodeId, UncertainGraph};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A path with its existence probability.
#[derive(Clone, Debug, PartialEq)]
pub struct ReliablePath {
    /// Edges along the path, in order from `s` to `t`.
    pub edges: Vec<EdgeId>,
    /// Nodes along the path (`edges.len() + 1` entries), `s` first.
    pub nodes: Vec<NodeId>,
    /// Product of the edge probabilities.
    pub probability: f64,
}

/// Max-heap entry ordered by path probability (log-space).
struct HeapEntry {
    neg_log: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.neg_log == other.neg_log
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest -log (most
        // probable) first.
        other
            .neg_log
            .partial_cmp(&self.neg_log)
            .unwrap_or(Ordering::Equal)
    }
}

/// Find the most reliable `s`-`t` path, if any (Dijkstra over `-ln p`).
///
/// Returns `None` when `t` is unreachable. For `s == t` returns the empty
/// path with probability 1.
pub fn most_reliable_path(graph: &UncertainGraph, s: NodeId, t: NodeId) -> Option<ReliablePath> {
    assert!(
        graph.contains_node(s) && graph.contains_node(t),
        "query nodes out of range"
    );
    if s == t {
        return Some(ReliablePath {
            edges: vec![],
            nodes: vec![s],
            probability: 1.0,
        });
    }
    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[s.index()] = 0.0;
    heap.push(HeapEntry {
        neg_log: 0.0,
        node: s,
    });

    while let Some(HeapEntry { neg_log, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == t {
            break;
        }
        for (e, w) in graph.out_edges(node) {
            if done[w.index()] {
                continue;
            }
            let weight = -graph.prob(e).value().ln(); // >= 0 since p <= 1
            let cand = neg_log + weight;
            if cand < dist[w.index()] {
                dist[w.index()] = cand;
                pred[w.index()] = Some(e);
                heap.push(HeapEntry {
                    neg_log: cand,
                    node: w,
                });
            }
        }
    }

    if dist[t.index()].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut edges = Vec::new();
    let mut cur = t;
    while cur != s {
        let e = pred[cur.index()].expect("predecessor chain reaches s");
        edges.push(e);
        cur = graph.source(e);
    }
    edges.reverse();
    let mut nodes = vec![s];
    nodes.extend(edges.iter().map(|&e| graph.target(e)));
    let probability = edges.iter().map(|&e| graph.prob(e).value()).product();
    Some(ReliablePath {
        edges,
        nodes,
        probability,
    })
}

/// Probability that *all* edges of `path` exist (independent product) —
/// a convenience for externally-supplied paths.
pub fn path_probability(graph: &UncertainGraph, edges: &[EdgeId]) -> f64 {
    edges.iter().map(|&e| graph.prob(e).value()).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> UncertainGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.9).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.99).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        b.build()
    }

    #[test]
    fn picks_the_higher_probability_route() {
        let g = diamond();
        let p = most_reliable_path(&g, NodeId(0), NodeId(3)).unwrap();
        // 0.9 * 0.9 = 0.81 beats 0.99 * 0.5 = 0.495.
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert!((p.probability - 0.81).abs() < 1e-12);
    }

    #[test]
    fn s_equals_t_is_the_empty_path() {
        let g = diamond();
        let p = most_reliable_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(p.probability, 1.0);
    }

    #[test]
    fn unreachable_is_none() {
        let g = diamond();
        assert!(most_reliable_path(&g, NodeId(3), NodeId(0)).is_none());
    }

    #[test]
    fn longer_but_stronger_path_wins() {
        // Direct edge 0 -> 2 (0.3) vs chain 0 -> 1 -> 2 (0.9 * 0.9).
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(2), 0.3).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
        let g = b.build();
        let p = most_reliable_path(&g, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.edges.len(), 2);
        assert!((p.probability - 0.81).abs() < 1e-12);
    }

    #[test]
    fn path_probability_is_product() {
        let g = diamond();
        let p = most_reliable_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert!((path_probability(&g, &p.edges) - p.probability).abs() < 1e-12);
    }

    #[test]
    fn path_is_lower_bound_on_exact_reliability() {
        let g = diamond();
        let p = most_reliable_path(&g, NodeId(0), NodeId(3)).unwrap();
        let exact = crate::exact::exact_reliability(&g, NodeId(0), NodeId(3));
        assert!(p.probability <= exact + 1e-12);
    }
}
