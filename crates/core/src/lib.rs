//! # relcomp-core — six s-t reliability estimators over uncertain graphs
//!
//! From-scratch Rust implementations of the six state-of-the-art
//! estimators compared in *"An In-Depth Comparison of s-t Reliability
//! Algorithms over Uncertain Graphs"* (VLDB 2019), in one code base with a
//! common interface, identical measurement hooks, and the paper's
//! corrections applied:
//!
//! | Estimator | Module | Paper § |
//! |---|---|---|
//! | Monte Carlo sampling | [`mc`] | 2.2 |
//! | BFS Sharing (bit-vector index) | [`bfs_sharing`] | 2.3 |
//! | Recursive sampling (RHH) | [`recursive::rhh`] | 2.4 |
//! | Recursive stratified sampling (RSS) | [`recursive::rss`] | 2.5 |
//! | Lazy propagation (LP and corrected LP+) | [`lazy`] | 2.6 |
//! | ProbTree FWD index (+ estimator couplings) | [`probtree`] | 2.7, 3.8 |
//!
//! Plus an exact possible-world-enumeration oracle ([`exact`]) used to
//! validate every estimator in tests.
//!
//! ```
//! use relcomp_core::{Estimator, mc::McSampling};
//! use relcomp_ugraph::{GraphBuilder, NodeId};
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 0.9).unwrap();
//! let g = Arc::new(b.build());
//!
//! let mut mc = McSampling::new(g);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let est = mc.estimate(NodeId(0), NodeId(2), 10_000, &mut rng);
//! assert!((est.reliability - 0.81).abs() < 0.02);
//! ```

#![warn(missing_docs)]

pub mod bfs_sharing;
pub mod bounds;
pub mod distance_constrained;
pub mod estimator;
pub mod exact;
pub mod lazy;
pub mod maximize;
pub mod mc;
pub mod memory;
pub mod metrics;
pub mod packed;
pub mod parallel;
pub mod paths;
pub mod probtree;
pub mod recursive;
pub mod reduce;
pub mod representative;
pub mod sampler;
pub mod session;
pub mod suite;
pub mod topk;

pub use estimator::{Estimate, Estimator, UpdateOutcome};
pub use maximize::{maximize, MaximizeOptions, MaximizeResult};
pub use packed::{PackedMcSampling, PackedWorkspace};
pub use parallel::ParallelSampler;
pub use session::{Convergence, EstimationSession, SampleBudget, StopReason};
pub use suite::{build_estimator, EstimatorKind, SuiteParams};
