//! Lazy Propagation sampling (§2.6, Algorithm 6 of the paper).
//!
//! Instead of probing every encountered edge in every sample, each edge
//! draws a *geometric* random variate that says after how many future
//! probes it will exist again. Low-probability edges are thus touched
//! `1/p(e)` times less often in expectation, with no statistical difference
//! from plain MC.
//!
//! ## The correction (LP vs LP+)
//!
//! The original paper re-arms an activated edge with key `X' + c_v`
//! (line 24). The comparison paper proves this wrong (Example 1): the new
//! variate counts failures *starting from the next round*, so the key must
//! be `X' + c_v + 1`. With the original keying, a re-drawn `X' > 0`
//! activates one round early (overestimation — the common case) and
//! `X' = 0` leaves a stale top-of-heap entry that permanently blocks the
//! node (underestimation). [`LazyVariant::Original`] reproduces the buggy
//! behavior (for Fig. 5); [`LazyVariant::Corrected`] is LP+.
//!
//! Note on the Original variant: the SIGMOD'17 pseudocode pops heap entries
//! while `top == c_v` yet re-arms at `X' + c_v`, which under a literal
//! reading either re-pops the same entry in the same round (`X' = 0`) or
//! leaves a stale entry permanently blocking the node. We resolve the
//! ambiguity by popping entries with `key <= c_v`: every re-armed edge then
//! activates one round *early*, which is the dominant overestimation error
//! the comparison paper describes (Example 1, case 1) and reproduces
//! Fig. 5's "LP estimates much higher reliability than MC".

use crate::estimator::{validate_query, Estimate, Estimator, UpdateOutcome};
use crate::memory::MemoryTracker;
use crate::sampler::geometric;
use crate::session::{EstimationSession, SampleBudget};
use rand::RngCore;
use relcomp_ugraph::traversal::VisitSet;
use relcomp_ugraph::{EdgeUpdate, NodeId, UncertainGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Which re-arm keying to use (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LazyVariant {
    /// The original SIGMOD'17 keying `X' + c_v` — biased; kept to
    /// reproduce the paper's Fig. 5.
    Original,
    /// The comparison paper's corrected keying `X' + c_v + 1` (LP+).
    Corrected,
}

/// Heap entry: (activation round of node's counter, neighbor, via-edge-prob).
type HeapEntry = Reverse<(u64, u32)>;

/// Per-node lazy state: expansion counter and activation heap.
struct NodeState {
    /// How many times this node has been expanded (the paper's `c_v`).
    counter: u64,
    /// Min-heap of (activation count, out-neighbor node id).
    heap: BinaryHeap<HeapEntry>,
    /// Query epoch in which this state was initialized.
    epoch: u32,
}

/// Lazy-propagation estimator (LP or LP+ depending on the variant).
pub struct LazyPropagation {
    graph: Arc<UncertainGraph>,
    variant: LazyVariant,
    states: Vec<NodeState>,
    visited: VisitSet,
    epoch: u32,
}

impl LazyPropagation {
    /// Create an LP estimator over `graph` with the chosen variant.
    pub fn new(graph: Arc<UncertainGraph>, variant: LazyVariant) -> Self {
        let n = graph.num_nodes();
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(NodeState {
                counter: 0,
                heap: BinaryHeap::new(),
                epoch: 0,
            });
        }
        LazyPropagation {
            graph,
            variant,
            states,
            visited: VisitSet::new(n),
            epoch: 0,
        }
    }

    /// Convenience constructor for the corrected LP+.
    pub fn corrected(graph: Arc<UncertainGraph>) -> Self {
        Self::new(graph, LazyVariant::Corrected)
    }

    /// Convenience constructor for the original (buggy) LP.
    pub fn original(graph: Arc<UncertainGraph>) -> Self {
        Self::new(graph, LazyVariant::Original)
    }

    /// The variant in use.
    pub fn variant(&self) -> LazyVariant {
        self.variant
    }
}

impl Estimator for LazyPropagation {
    fn name(&self) -> &'static str {
        match self.variant {
            LazyVariant::Original => "LP",
            LazyVariant::Corrected => "LP+",
        }
    }

    fn estimate_with(
        &mut self,
        s: NodeId,
        t: NodeId,
        budget: &SampleBudget,
        rng: &mut dyn RngCore,
    ) -> Estimate {
        validate_query(&self.graph, s, t);
        let mut session = EstimationSession::begin(budget);
        let mut mem = MemoryTracker::new();
        mem.baseline(self.visited.resident_bytes() + self.states.len() * 16);

        // Per-query re-initialization (Algorithm 6 line 1): bump the epoch
        // so node states lazily reset on first touch.
        self.epoch = self.epoch.wrapping_add(1).max(1);
        let epoch = self.epoch;

        let graph = Arc::clone(&self.graph);
        let mut hits = 0usize;
        let mut frontier: Vec<NodeId> = Vec::new();
        // Deferred re-pushes within one expansion (avoids the original
        // variant's same-round infinite pop loop; see module docs).
        let mut reinsert: Vec<(u64, u32)> = Vec::new();

        loop {
            let batch = session.next_batch();
            if batch == 0 {
                break;
            }
            let mut batch_hits = 0usize;
            for _ in 0..batch {
                if s == t {
                    batch_hits += 1;
                    continue;
                }
                self.visited.reset();
                frontier.clear();
                frontier.push(s);
                self.visited.insert(s);
                let mut hit = false;

                while let Some(v) = frontier.pop() {
                    let st = &mut self.states[v.index()];
                    if st.epoch != epoch {
                        // First expansion of v in this query (lines 12-18).
                        st.epoch = epoch;
                        st.counter = 0;
                        st.heap.clear();
                        for (e, nbr) in graph.out_edges(v) {
                            let x = geometric(rng, graph.prob(e).value());
                            st.heap.push(Reverse((x, nbr.0)));
                        }
                        mem.alloc(st.heap.len() * std::mem::size_of::<HeapEntry>());
                    }
                    let c = st.counter;
                    reinsert.clear();
                    // Pop every edge activated in this round (lines 19-29).
                    // Corrected (LP+): exact-match keys only. Original (LP):
                    // stale keys also activate (see module docs).
                    while let Some(&Reverse((key, nbr))) = st.heap.peek() {
                        let activated = match self.variant {
                            LazyVariant::Corrected => key == c,
                            LazyVariant::Original => key <= c,
                        };
                        if !activated {
                            break;
                        }
                        st.heap.pop();
                        let nbr_node = NodeId(nbr);
                        // Re-arm: find the edge probability (v -> nbr).
                        let e = graph.find_edge(v, nbr_node).expect("edge exists in heap");
                        let x = geometric(rng, graph.prob(e).value());
                        let new_key = match self.variant {
                            LazyVariant::Corrected => x + c + 1,
                            LazyVariant::Original => x + c,
                        };
                        reinsert.push((new_key, nbr));

                        if !hit {
                            if nbr_node == t {
                                hit = true;
                            } else if self.visited.insert(nbr_node) {
                                frontier.push(nbr_node);
                            }
                        }
                    }
                    for &(key, nbr) in &reinsert {
                        st.heap.push(Reverse((key, nbr)));
                    }
                    st.counter += 1;
                    if hit {
                        break;
                    }
                }
                if hit {
                    batch_hits += 1;
                }
            }
            hits += batch_hits;
            session.record_hits(batch_hits, batch);
        }

        session.finish(hits as f64 / session.samples() as f64, &mem)
    }

    fn resident_bytes(&self) -> usize {
        // Counter + heap headers per node (heaps are cleared per query but
        // their buffers persist).
        self.states.len() * std::mem::size_of::<NodeState>()
            + self
                .states
                .iter()
                .map(|s| s.heap.len() * std::mem::size_of::<HeapEntry>())
                .sum::<usize>()
            + self.visited.resident_bytes()
    }

    fn apply_updates(
        &mut self,
        graph: &Arc<UncertainGraph>,
        _updates: &[EdgeUpdate],
        _rng: &mut dyn RngCore,
    ) -> UpdateOutcome {
        // The per-node workspaces are keyed by node count only; edge
        // probabilities are read from the graph at query time.
        if graph.num_nodes() != self.graph.num_nodes() {
            return UpdateOutcome::Rebuild;
        }
        self.graph = Arc::clone(graph);
        UpdateOutcome::Rebound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use relcomp_ugraph::GraphBuilder;

    fn diamond() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.7).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.4).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn lp_plus_converges_to_exact() {
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut lp = LazyPropagation::corrected(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let est = lp.estimate(NodeId(0), NodeId(3), 100_000, &mut rng);
        assert!(
            (est.reliability - exact).abs() < 0.01,
            "LP+ {} vs exact {exact}",
            est.reliability
        );
    }

    #[test]
    fn lp_original_overestimates_low_probability_chain() {
        // Example 1 of the paper: a chain with modest probabilities. The
        // buggy re-arm activates edges one round early, inflating
        // reliability.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.3).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.3).unwrap();
        let g = Arc::new(b.build());
        let exact = exact_reliability(&g, NodeId(0), NodeId(2)); // 0.09

        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut lp = LazyPropagation::original(Arc::clone(&g));
        let lp_est = lp
            .estimate(NodeId(0), NodeId(2), 60_000, &mut rng)
            .reliability;

        let mut lpp = LazyPropagation::corrected(Arc::clone(&g));
        let lpp_est = lpp
            .estimate(NodeId(0), NodeId(2), 60_000, &mut rng)
            .reliability;

        assert!((lpp_est - exact).abs() < 0.01, "LP+ {lpp_est} vs {exact}");
        assert!(
            lp_est > exact + 0.03,
            "LP should overestimate: {lp_est} vs exact {exact}"
        );
    }

    #[test]
    fn s_equals_t_counts_every_sample() {
        let g = diamond();
        let mut lp = LazyPropagation::corrected(g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = lp.estimate(NodeId(2), NodeId(2), 50, &mut rng);
        assert_eq!(est.reliability, 1.0);
    }

    #[test]
    fn queries_are_independent_across_calls() {
        // Two identical queries with different RNG states should both be
        // near-exact: per-query epoch reset must not leak heap state.
        let g = diamond();
        let exact = exact_reliability(&g, NodeId(0), NodeId(3));
        let mut lp = LazyPropagation::corrected(Arc::clone(&g));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..3 {
            let est = lp.estimate(NodeId(0), NodeId(3), 40_000, &mut rng);
            assert!((est.reliability - exact).abs() < 0.02);
        }
    }

    #[test]
    fn reports_memory_and_name() {
        let g = diamond();
        let mut lp = LazyPropagation::corrected(Arc::clone(&g));
        assert_eq!(lp.name(), "LP+");
        assert_eq!(LazyPropagation::original(g).name(), "LP");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let est = lp.estimate(NodeId(0), NodeId(3), 100, &mut rng);
        assert!(est.aux_bytes > 0);
        assert!(lp.resident_bytes() > 0);
    }

    #[test]
    fn disconnected_target_is_zero() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.9).unwrap();
        let g = Arc::new(b.build());
        let mut lp = LazyPropagation::corrected(g);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(
            lp.estimate(NodeId(0), NodeId(2), 300, &mut rng).reliability,
            0.0
        );
    }
}
