//! Adaptive estimation sessions: budgets, convergence tracking, and the
//! shared estimation epilogue.
//!
//! The paper's Fig. 8 shows the six estimators converge at wildly
//! different rates, and its headline guidance ("MC with ~1000 samples")
//! is really a *stopping rule*, not a constant. This module turns the
//! fixed-`k` interface into a streaming one:
//!
//! * [`SampleBudget`] describes *when to stop*: a fixed sample count, a
//!   max-sample cap combined with a relative-half-width target, a
//!   wall-time cap, or any composition of the three.
//! * [`Convergence`] tracks the running mean, sample variance, and a
//!   confidence-interval half-width (Wilson for Bernoulli samples,
//!   normal otherwise) as batches stream in.
//! * [`EstimationSession`] drives the batch loop every estimator's
//!   [`Estimator::estimate_with`](crate::Estimator::estimate_with)
//!   implements: ask for the next batch size, record the batch, repeat
//!   until the budget says stop, then package the [`Estimate`].
//!
//! Fixed budgets ([`SampleBudget::fixed`]) draw exactly `k` samples with
//! no convergence checks, so `estimate(s, t, k, rng)` — now a thin
//! wrapper — stays bit-identical to the historical fixed-`k` API.

use crate::estimator::Estimate;
use crate::memory::MemoryTracker;
use std::time::{Duration, Instant};

/// Default samples drawn between convergence checks. A multiple of 64 so
/// estimators that batch 64 worlds per machine word (see
/// [`crate::packed`]) fill whole words between checks with no scalar
/// tail.
pub const DEFAULT_BATCH: usize = 256;
const _: () = assert!(
    DEFAULT_BATCH % 64 == 0,
    "session batches must pack whole 64-world words"
);

/// Default confidence level for half-width targets.
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// Default sample cap for adaptive budgets when the caller names a
/// target but no cap (shared by the CLI and the serve engine so their
/// defaults cannot drift).
pub const DEFAULT_ADAPTIVE_CAP: usize = 50_000;

/// Minimum continuous observations (batch means) before a half-width is
/// reported: below this, even the t-corrected interval is too fragile
/// to stop on.
const MIN_CONTINUOUS_OBS: u64 = 3;

/// Why an estimation session stopped drawing samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// A fixed budget was consumed exactly (the historical behavior).
    FixedK,
    /// The relative half-width target was met before the sample cap.
    Converged,
    /// The sample cap was reached without meeting the accuracy target.
    MaxSamples,
    /// The wall-time cap expired.
    TimeLimit,
}

impl StopReason {
    /// Wire/operator label (`fixed_k`, `converged`, `max_samples`,
    /// `time_limit`).
    pub fn label(self) -> &'static str {
        match self {
            StopReason::FixedK => "fixed_k",
            StopReason::Converged => "converged",
            StopReason::MaxSamples => "max_samples",
            StopReason::TimeLimit => "time_limit",
        }
    }

    /// Parse a [`StopReason::label`] back (wire protocol round trips).
    pub fn parse(label: &str) -> Option<StopReason> {
        Some(match label {
            "fixed_k" => StopReason::FixedK,
            "converged" => StopReason::Converged,
            "max_samples" => StopReason::MaxSamples,
            "time_limit" => StopReason::TimeLimit,
            _ => return None,
        })
    }
}

/// When to stop drawing samples. Composable: a fixed count, a cap plus a
/// relative-half-width target, a wall-time limit, or any mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleBudget {
    max_samples: usize,
    eps: Option<f64>,
    confidence: f64,
    time_limit: Option<Duration>,
    batch: usize,
}

impl SampleBudget {
    /// Exactly `k` samples, no early stopping — bit-identical to the
    /// historical `estimate(s, t, k, rng)` API.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn fixed(k: usize) -> Self {
        assert!(k > 0, "sample count must be positive");
        SampleBudget {
            max_samples: k,
            eps: None,
            confidence: DEFAULT_CONFIDENCE,
            time_limit: None,
            batch: DEFAULT_BATCH,
        }
    }

    /// Stop once the CI half-width drops below `eps * mean` (at the
    /// default 95% confidence), or after `max_samples`, whichever first.
    ///
    /// # Panics
    /// Panics unless `eps > 0` and `max_samples > 0`.
    pub fn adaptive(eps: f64, max_samples: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(max_samples > 0, "sample cap must be positive");
        SampleBudget {
            max_samples,
            eps: Some(eps),
            confidence: DEFAULT_CONFIDENCE,
            time_limit: None,
            batch: DEFAULT_BATCH,
        }
    }

    /// Override the confidence level of the half-width target.
    ///
    /// # Panics
    /// Panics unless `0 < confidence < 1`.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        self.confidence = confidence;
        self
    }

    /// Add a wall-time cap: stop at the first batch barrier past `limit`
    /// (at least one batch is always drawn).
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Override the per-batch sample count (default [`DEFAULT_BATCH`]).
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        self.batch = batch;
        self
    }

    /// Assemble a budget from resolved user-facing fields: `samples` is
    /// the exact count when no adaptive field is present, the cap
    /// otherwise. The one constructor the CLI and the serve planner
    /// share, so their budget semantics cannot drift.
    pub fn assemble(
        samples: usize,
        eps: Option<f64>,
        confidence: f64,
        time_budget_ms: Option<u64>,
    ) -> Self {
        let mut b = match eps {
            Some(e) => SampleBudget::adaptive(e, samples),
            None => SampleBudget::fixed(samples),
        }
        .with_confidence(confidence);
        if let Some(ms) = time_budget_ms {
            b = b.with_time_limit(Duration::from_millis(ms));
        }
        b
    }

    /// Lower the sample cap to `cap` (used by estimators whose index
    /// bounds the drawable worlds, e.g. BFS-Sharing's `L`).
    pub fn clamp_max(mut self, cap: usize) -> Self {
        assert!(cap > 0, "cap must be positive");
        self.max_samples = self.max_samples.min(cap);
        self
    }

    /// The hard sample cap.
    pub fn max_samples(&self) -> usize {
        self.max_samples
    }

    /// The relative-half-width target, if any.
    pub fn eps(&self) -> Option<f64> {
        self.eps
    }

    /// The confidence level of the half-width target.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The wall-time cap, if any.
    pub fn time_limit(&self) -> Option<Duration> {
        self.time_limit
    }

    /// Samples drawn between convergence checks.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Whether this is a pure fixed-`k` budget (no early stopping): the
    /// session then runs with zero convergence overhead and historical
    /// bit-for-bit behavior.
    pub fn is_fixed(&self) -> bool {
        self.eps.is_none() && self.time_limit.is_none()
    }
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 over (0, 1)).
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The two-sided z-value for a confidence level (e.g. 0.95 → 1.959964).
pub fn z_value(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    inverse_normal_cdf((1.0 + confidence) / 2.0)
}

/// Student-t quantile from the normal quantile via the Peiser/Fisher
/// asymptotic expansion in `1/df`. Within ~3% of the exact value for
/// `df >= 2` (e.g. df = 2: 4.18 vs 4.30; df = 3: 3.16 vs 3.18 at 95%)
/// — the correction that keeps few-batch CIs honest where a raw `z`
/// would be several times too narrow.
fn t_value(z: f64, df: u64) -> f64 {
    let d = df as f64;
    let (z3, z5, z7) = (z.powi(3), z.powi(5), z.powi(7));
    z + (z3 + z) / (4.0 * d)
        + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * d * d)
        + (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * d * d * d)
}

/// Streaming mean/variance/half-width tracker.
///
/// Two kinds of observations are supported, and the half-width adapts:
///
/// * [`Convergence::observe_hits`] — Bernoulli batches (MC-style hit
///   counts): the half-width is the Wilson score interval's, which stays
///   honest near 0 and 1.
/// * [`Convergence::observe`] — one continuous observation (a recursive
///   estimator's per-batch estimate): the half-width is the normal CI of
///   the mean of observations.
#[derive(Clone, Copy, Debug)]
pub struct Convergence {
    z: f64,
    count: u64,
    mean: f64,
    m2: f64,
    bernoulli: bool,
    batches: u64,
}

impl Convergence {
    /// Fresh tracker at `confidence` (see [`z_value`]).
    pub fn new(confidence: f64) -> Self {
        Convergence {
            z: z_value(confidence),
            count: 0,
            mean: 0.0,
            m2: 0.0,
            bernoulli: true,
            batches: 0,
        }
    }

    /// Record one continuous observation (Welford update). Switches the
    /// half-width to the normal CI over observations.
    pub fn observe(&mut self, x: f64) {
        self.bernoulli = false;
        self.batches += 1;
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Record a Bernoulli batch: `hits` successes out of `n` draws.
    /// Exact merge (Chan et al.): for 0/1 data the batch's centered sum
    /// of squares is `h - h²/n`.
    pub fn observe_hits(&mut self, hits: usize, n: usize) {
        if n == 0 {
            return;
        }
        assert!(hits <= n, "hits cannot exceed draws");
        self.batches += 1;
        let (h, n_b) = (hits as f64, n as f64);
        let mean_b = h / n_b;
        let m2_b = h - h * h / n_b;
        let n_a = self.count as f64;
        let delta = mean_b - self.mean;
        let total = n_a + n_b;
        self.mean += delta * n_b / total;
        self.m2 += m2_b + delta * delta * n_a * n_b / total;
        self.count += n as u64;
    }

    /// Observations recorded so far (samples for Bernoulli batches,
    /// batches for continuous observations).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Batches recorded so far (one per `observe`/`observe_hits` call) —
    /// the "batches to convergence" observability probe.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Running mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance of the observations (`n - 1` denominator); 0 until
    /// two observations exist.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Estimated variance of the *reported mean* (sample variance / n).
    pub fn estimator_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_variance() / self.count as f64
        }
    }

    /// CI half-width at the tracker's confidence: Wilson for Bernoulli
    /// observations, Student-t over the batch means otherwise (the t
    /// correction matters exactly where adaptive recursion stops — a
    /// handful of batches). Infinite until the tracker has enough
    /// observations to say anything (one Bernoulli batch, or
    /// [`MIN_CONTINUOUS_OBS`] continuous observations).
    pub fn half_width(&self) -> f64 {
        if self.bernoulli {
            if self.count == 0 {
                return f64::INFINITY;
            }
            let n = self.count as f64;
            let p = self.mean;
            let z2 = self.z * self.z;
            self.z / (1.0 + z2 / n) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt()
        } else {
            if self.count < MIN_CONTINUOUS_OBS {
                return f64::INFINITY;
            }
            t_value(self.z, self.count - 1) * self.estimator_variance().sqrt()
        }
    }

    /// Half-width relative to the mean. A zero mean with zero half-width
    /// (a fully determined answer) counts as 0; a zero mean with spread
    /// is infinite — mirroring the paper's index-of-dispersion handling.
    pub fn relative_half_width(&self) -> f64 {
        let hw = self.half_width();
        if self.mean <= 0.0 {
            if hw <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            hw / self.mean
        }
    }

    /// Whether the observations are Bernoulli so far.
    pub fn is_bernoulli(&self) -> bool {
        self.bernoulli
    }

    /// The z-value in use.
    pub fn z(&self) -> f64 {
        self.z
    }
}

/// One in-flight estimation: the batch loop every estimator drives.
///
/// ```text
/// let mut session = EstimationSession::begin(budget);
/// loop {
///     let n = session.next_batch();
///     if n == 0 { break; }
///     let hits = ...draw n samples...;
///     session.record_hits(hits, n);
/// }
/// session.finish(reliability, &mem)
/// ```
pub struct EstimationSession {
    budget: SampleBudget,
    tracker: Convergence,
    start: Instant,
    samples: usize,
    stop: Option<StopReason>,
}

impl EstimationSession {
    /// Start a session (stamps the wall clock).
    pub fn begin(budget: &SampleBudget) -> Self {
        EstimationSession {
            budget: *budget,
            tracker: Convergence::new(budget.confidence()),
            start: Instant::now(),
            samples: 0,
            stop: None,
        }
    }

    /// Samples to draw next, or 0 when the budget says stop (the stop
    /// reason is then fixed). At least one batch is always granted, so
    /// every session produces a defined estimate.
    pub fn next_batch(&mut self) -> usize {
        if self.stop.is_some() {
            return 0;
        }
        if let Some(stop) = should_stop(&self.budget, &self.tracker, self.samples, self.start) {
            self.stop = Some(stop);
            return 0;
        }
        self.budget
            .batch
            .min(self.budget.max_samples - self.samples)
    }

    /// Record a Bernoulli batch of `n` draws with `hits` successes.
    pub fn record_hits(&mut self, hits: usize, n: usize) {
        self.tracker.observe_hits(hits, n);
        self.samples += n;
    }

    /// Record one continuous batch estimate that consumed `n` samples
    /// (recursive estimators: one recursion per batch).
    pub fn record_value(&mut self, estimate: f64, n: usize) {
        self.tracker.observe(estimate);
        self.samples += n;
    }

    /// Samples consumed so far.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The convergence tracker.
    pub fn tracker(&self) -> &Convergence {
        &self.tracker
    }

    /// The session's start instant (for callers timing sub-steps).
    pub fn started_at(&self) -> Instant {
        self.start
    }

    /// The stop reason, defaulting sensibly if the caller broke out of
    /// the loop early.
    fn stop_reason(&self) -> StopReason {
        self.stop.unwrap_or(if self.budget.is_fixed() {
            StopReason::FixedK
        } else {
            StopReason::MaxSamples
        })
    }

    /// Package the estimate: the common `Instant::now()/aux_bytes`
    /// epilogue every estimator used to hand-roll.
    pub fn finish(&self, reliability: f64, mem: &MemoryTracker) -> Estimate {
        finish_estimate(
            reliability,
            self.samples,
            self.start,
            mem,
            Some(&self.tracker),
            self.stop_reason(),
        )
    }

    /// Package a deterministic answer (`s == t`, or `t` provably
    /// unreachable) without drawing: zero variance and half-width. Under
    /// a fixed budget the full `k` is reported as consumed, preserving
    /// the historical `samples` accounting bit for bit.
    pub fn finish_exact(&self, reliability: f64, mem: &MemoryTracker) -> Estimate {
        let (samples, stop) = if self.budget.is_fixed() {
            (self.budget.max_samples, StopReason::FixedK)
        } else {
            (self.samples, StopReason::Converged)
        };
        Estimate {
            reliability,
            samples,
            elapsed: self.start.elapsed(),
            aux_bytes: mem.peak(),
            variance: Some(0.0),
            half_width: Some(0.0),
            stop_reason: stop,
        }
    }
}

/// Accounting for a deterministic answer that needs no sampling at all
/// (`s == t`, an empty top-k ranking): fixed budgets report the full
/// budget consumed — preserving the historical fixed-`k` `samples`
/// accounting bit for bit — while adaptive budgets report zero samples
/// and a converged stop. One home for the rule the single-threaded
/// sessions ([`EstimationSession::finish_exact`]) and the parallel
/// sampler's no-draw paths must agree on.
pub fn exact_answer_accounting(budget: &SampleBudget) -> (usize, StopReason) {
    if budget.is_fixed() {
        (budget.max_samples(), StopReason::FixedK)
    } else {
        (0, StopReason::Converged)
    }
}

/// The one stopping rule every session-driving loop consults — the
/// single-threaded [`EstimationSession`] and the parallel sampler's
/// shard-group barriers must agree on it or their answers drift.
/// `None` means keep drawing.
pub fn should_stop(
    budget: &SampleBudget,
    tracker: &Convergence,
    samples: usize,
    start: Instant,
) -> Option<StopReason> {
    let rule_start = Instant::now();
    let decision = should_stop_inner(budget, tracker, samples, start);
    crate::metrics::note_convergence_nanos(rule_start.elapsed().as_nanos() as u64);
    decision
}

fn should_stop_inner(
    budget: &SampleBudget,
    tracker: &Convergence,
    samples: usize,
    start: Instant,
) -> Option<StopReason> {
    if samples >= budget.max_samples() {
        return Some(if budget.is_fixed() {
            StopReason::FixedK
        } else {
            StopReason::MaxSamples
        });
    }
    if samples > 0 && !budget.is_fixed() {
        if let Some(eps) = budget.eps() {
            if tracker.relative_half_width() <= eps {
                return Some(StopReason::Converged);
            }
        }
        if let Some(limit) = budget.time_limit() {
            if start.elapsed() >= limit {
                return Some(StopReason::TimeLimit);
            }
        }
    }
    None
}

/// Restate a Bernoulli estimate's CI at `confidence`: the hit count is
/// exactly recoverable from the hit fraction, so this is a pure
/// re-report, never a re-run. Only valid for estimates whose
/// `reliability` is `hits / samples` over Bernoulli draws (MC-style
/// sampling paths) — the one place grouped/batched answers and single
/// answers must agree on.
pub fn restate_bernoulli_confidence(est: Estimate, confidence: f64) -> Estimate {
    let hits = (est.reliability * est.samples as f64).round() as usize;
    let mut tracker = Convergence::new(confidence);
    tracker.observe_hits(hits, est.samples);
    Estimate {
        variance: Some(tracker.estimator_variance()),
        half_width: Some(tracker.half_width()),
        ..est
    }
}

/// Validate user-supplied adaptive-budget fields (wire protocol, CLI
/// flags). One home for the boundary rules so the serve planner and the
/// CLI cannot drift apart.
pub fn validate_budget_fields(
    eps: Option<f64>,
    confidence: Option<f64>,
    time_budget_ms: Option<u64>,
) -> Result<(), String> {
    if let Some(e) = eps {
        if !(e > 0.0 && e.is_finite()) {
            return Err(format!("eps must be a positive finite number, got {e}"));
        }
    }
    if let Some(c) = confidence {
        if !(c > 0.0 && c < 1.0) {
            return Err(format!("confidence must be in (0, 1), got {c}"));
        }
    }
    if time_budget_ms == Some(0) {
        return Err("time_budget_ms must be positive".into());
    }
    Ok(())
}

/// The shared estimation epilogue: stamp elapsed time from `start`, peak
/// auxiliary bytes from `mem`, and the tracker's variance/half-width
/// (omitted when the tracker cannot estimate them — e.g. a single
/// fixed-`k` recursion has no replication to measure spread from).
pub fn finish_estimate(
    reliability: f64,
    samples: usize,
    start: Instant,
    mem: &MemoryTracker,
    tracker: Option<&Convergence>,
    stop_reason: StopReason,
) -> Estimate {
    let (variance, half_width) = match tracker {
        Some(t) if t.half_width().is_finite() => {
            (Some(t.estimator_variance()), Some(t.half_width()))
        }
        _ => (None, None),
    };
    let elapsed = start.elapsed();
    crate::metrics::emit_session(crate::metrics::SessionObservation {
        samples: samples as u64,
        batches: tracker.map(|t| t.batches()).unwrap_or(0),
        micros: elapsed.as_micros() as u64,
        convergence_nanos: crate::metrics::take_convergence_nanos(),
        stop_reason: stop_reason.label(),
    });
    Estimate {
        reliability,
        samples,
        elapsed,
        aux_bytes: mem.peak(),
        variance,
        half_width,
        stop_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values_match_tables() {
        assert!((z_value(0.95) - 1.959_964).abs() < 1e-4);
        assert!((z_value(0.99) - 2.575_829).abs() < 1e-4);
        assert!((z_value(0.90) - 1.644_854).abs() < 1e-4);
    }

    #[test]
    fn fixed_budget_runs_to_exactly_k() {
        let b = SampleBudget::fixed(1000);
        assert!(b.is_fixed());
        let mut s = EstimationSession::begin(&b);
        let mut total = 0;
        loop {
            let n = s.next_batch();
            if n == 0 {
                break;
            }
            // Extreme spread must not stop a fixed session early.
            s.record_hits(n / 2, n);
            total += n;
        }
        assert_eq!(total, 1000);
        assert_eq!(s.samples(), 1000);
        let est = s.finish(0.5, &MemoryTracker::new());
        assert_eq!(est.stop_reason, StopReason::FixedK);
        assert_eq!(est.samples, 1000);
        assert!(est.half_width.unwrap() > 0.0);
    }

    #[test]
    fn adaptive_stops_when_converged() {
        // All-hits batches: mean 1.0, Wilson half-width shrinks fast.
        let b = SampleBudget::adaptive(0.05, 100_000);
        let mut s = EstimationSession::begin(&b);
        loop {
            let n = s.next_batch();
            if n == 0 {
                break;
            }
            s.record_hits(n, n);
        }
        let est = s.finish(1.0, &MemoryTracker::new());
        assert_eq!(est.stop_reason, StopReason::Converged);
        assert!(est.samples < 100_000, "converged early: {}", est.samples);
        assert!(est.half_width.unwrap() <= 0.05);
    }

    #[test]
    fn adaptive_caps_at_max_samples() {
        // Maximal spread never converges at a tight eps.
        let b = SampleBudget::adaptive(1e-6, 2048);
        let mut s = EstimationSession::begin(&b);
        loop {
            let n = s.next_batch();
            if n == 0 {
                break;
            }
            s.record_hits(n / 2, n);
        }
        let est = s.finish(0.5, &MemoryTracker::new());
        assert_eq!(est.stop_reason, StopReason::MaxSamples);
        assert_eq!(est.samples, 2048);
    }

    #[test]
    fn time_cap_grants_at_least_one_batch() {
        let b = SampleBudget::fixed(100_000).with_time_limit(Duration::ZERO);
        assert!(!b.is_fixed());
        let mut s = EstimationSession::begin(&b);
        let n = s.next_batch();
        assert_eq!(n, DEFAULT_BATCH);
        s.record_hits(0, n);
        assert_eq!(s.next_batch(), 0);
        let est = s.finish(0.0, &MemoryTracker::new());
        assert_eq!(est.stop_reason, StopReason::TimeLimit);
        assert_eq!(est.samples, DEFAULT_BATCH);
    }

    #[test]
    fn bernoulli_merge_matches_closed_form() {
        let mut t = Convergence::new(0.95);
        t.observe_hits(30, 100);
        t.observe_hits(45, 150);
        // 75 hits / 250 draws.
        assert!((t.mean() - 0.3).abs() < 1e-12);
        // Sample variance of 0/1 data: n/(n-1) * p(1-p).
        let p = 0.3;
        let expect = 250.0 / 249.0 * p * (1.0 - p);
        assert!((t.sample_variance() - expect).abs() < 1e-12);
        assert!(t.is_bernoulli());
        // Wilson half-width is finite and sane.
        let hw = t.half_width();
        assert!(hw > 0.0 && hw < 0.1, "hw {hw}");
    }

    #[test]
    fn continuous_observations_use_t_ci() {
        let mut t = Convergence::new(0.95);
        assert!(t.half_width().is_infinite());
        t.observe(0.4);
        t.observe(0.6);
        assert!(
            t.half_width().is_infinite(),
            "two obs are too fragile to stop on"
        );
        t.observe(0.5);
        assert!(!t.is_bernoulli());
        assert!((t.mean() - 0.5).abs() < 1e-12);
        // df = 2: the t quantile (~4.2 via the expansion, 4.30 exact) is
        // well above z = 1.96 — the small-sample widening in action.
        let hw = t.half_width();
        let z_hw = t.z() * (t.sample_variance() / 3.0).sqrt();
        assert!(hw > 2.0 * z_hw, "t CI must widen: {hw} vs z {z_hw}");
        for _ in 0..200 {
            t.observe(0.5);
        }
        // Large df: t collapses onto z.
        let hw = t.half_width();
        let z_hw = t.z() * t.estimator_variance().sqrt();
        assert!((hw - z_hw).abs() < 0.02 * z_hw, "{hw} vs {z_hw}");
    }

    #[test]
    fn relative_half_width_edge_cases() {
        let t = Convergence::new(0.95);
        assert!(t.relative_half_width().is_infinite());
        let mut zero = Convergence::new(0.95);
        zero.observe_hits(0, 10_000);
        // Wilson at p=0 still has width, so a zero mean stays infinite
        // (never spuriously "converged" on an unreachable target).
        assert!(zero.relative_half_width().is_infinite());
    }

    #[test]
    fn stop_reason_labels_round_trip() {
        for r in [
            StopReason::FixedK,
            StopReason::Converged,
            StopReason::MaxSamples,
            StopReason::TimeLimit,
        ] {
            assert_eq!(StopReason::parse(r.label()), Some(r));
        }
        assert_eq!(StopReason::parse("bogus"), None);
    }

    #[test]
    fn clamp_max_lowers_cap_only() {
        let b = SampleBudget::adaptive(0.01, 10_000).clamp_max(500);
        assert_eq!(b.max_samples(), 500);
        assert_eq!(SampleBudget::fixed(100).clamp_max(500).max_samples(), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fixed_budget_rejected() {
        let _ = SampleBudget::fixed(0);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn zero_eps_rejected() {
        let _ = SampleBudget::adaptive(0.0, 100);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_rejected() {
        let _ = SampleBudget::fixed(10).with_confidence(1.0);
    }
}
